//! Multi-tenant churn: open-loop tenant arrivals, per-tenant SLO accounting
//! and pluggable admission control over the secure cluster.
//!
//! The paper pitches IRONHIDE as a substrate for *interactive* secure
//! applications, which in a cloud setting means tenants arriving and leaving
//! continuously — every admission and departure is a potential cluster
//! reconfiguration, so the stall sequence PR 7 made O(moved state) becomes
//! the common case rather than a corner. This module turns that churn into a
//! deterministic production-style workload:
//!
//! * [`ArrivalGenerator`] draws an open-loop, Poisson-style arrival stream
//!   (exponential inter-arrival and service draws through the vendored
//!   `rand`) — one tenant is one attested secure-cluster allocation, attested
//!   through the [`SecureKernel`] before any
//!   cores are granted.
//! * [`TenancyStorm`] replays the stream against one simulated machine under
//!   an [`AdmissionPolicy`], resizing the secure cluster through
//!   [`ClusterManager::reconfigure`] as tenants come and go and charging
//!   every stall to the tenants frozen behind it.
//! * [`SloAccount`] keeps **exact sorted samples** (not approximate
//!   histograms) so the reported p50/p99/p999 completion latencies and
//!   reconfiguration-stall tails are byte-identical across thread counts and
//!   processes.
//! * [`TenancyGrid`] / [`TenancyMatrix`] sweep {policy × load} through
//!   [`SweepRunner`](crate::sweep::SweepRunner) under the same determinism
//!   contract as the performance and attack grids.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use ironhide_mesh::NodeId;
use ironhide_sim::machine::Machine;
use ironhide_sim::process::SecurityClass;

use crate::cluster::{ClusterError, ClusterManager, ReconfigError};
use crate::faults::{FaultArch, FaultKind, FaultSchedule};
use crate::kernel::{AppDomain, SecureKernel};
use crate::sweep::{derive_seed, json_fields, json_string};

/// The enclave author key tenants sign their images with (the tenancy
/// counterpart of the attack harness's victim key).
const TENANT_AUTHOR_KEY: u64 = 0x7E4A_47C0_FFEE_D00D;

/// The resource shape of one tenant class: how many secure cores it asks for
/// and how much service (in core·cycles) a mean-sized instance needs before
/// it departs. The workloads crate maps each paper application to a profile,
/// so a storm mixes heterogeneous tenant shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantProfile {
    /// Display label (shows up in nothing checksummed; purely diagnostic).
    pub label: String,
    /// Secure cores the tenant requests.
    pub demand_cores: usize,
    /// Mean service requirement, in core·cycles.
    pub service_units: u64,
}

impl TenantProfile {
    /// Creates a profile.
    pub fn new(label: impl Into<String>, demand_cores: usize, service_units: u64) -> Self {
        TenantProfile { label: label.into(), demand_cores: demand_cores.max(1), service_units }
    }
}

/// What the admission controller does when a tenant's demand does not fit
/// the free secure capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdmissionPolicy {
    /// Reject the tenant outright.
    Deny,
    /// Park the tenant in a FIFO queue; it is admitted when departures free
    /// enough cores.
    Queue,
    /// Shrink the grants of already-admitted tenants (proportionally, floor
    /// one core each) to make room; deny only if even that cannot fit the
    /// newcomer. Shrunk tenants are **not** re-expanded later — the paper's
    /// security argument budgets one reconfiguration per interaction, so the
    /// controller avoids speculative regrowth.
    ShrinkNeighbours,
}

impl AdmissionPolicy {
    /// All policies, in the order the tenancy grid sweeps them.
    pub const ALL: [AdmissionPolicy; 3] =
        [AdmissionPolicy::Deny, AdmissionPolicy::Queue, AdmissionPolicy::ShrinkNeighbours];

    /// Stable display label (feeds seed derivation — never change).
    pub fn label(self) -> &'static str {
        match self {
            AdmissionPolicy::Deny => "deny",
            AdmissionPolicy::Queue => "queue",
            AdmissionPolicy::ShrinkNeighbours => "shrink-neighbours",
        }
    }
}

impl fmt::Display for AdmissionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One pre-drawn tenant arrival.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Tenant index in arrival order (also its attestation identity).
    pub tenant: u64,
    /// Absolute arrival cycle.
    pub at_cycle: u64,
    /// Index into the storm's profile list.
    pub profile: usize,
    /// Secure cores requested (the profile's demand, possibly clamped to
    /// capacity by the storm).
    pub demand_cores: usize,
    /// Exact service requirement drawn for this instance, in core·cycles.
    pub service_units: u64,
}

/// Seed-deterministic open-loop arrival generator: exponential inter-arrival
/// gaps and service requirements (the standard Poisson-process construction)
/// drawn from the vendored [`StdRng`], with the tenant's profile picked
/// uniformly per arrival. The stream depends only on the seed and the
/// parameters — never on thread count or wall clock.
#[derive(Debug, Clone)]
pub struct ArrivalGenerator {
    mean_interarrival_cycles: u64,
    mean_service_scale: u64,
    profiles: Vec<TenantProfile>,
}

impl ArrivalGenerator {
    /// Creates a generator with the given mean inter-arrival gap and a
    /// service-scale multiplier applied to every profile's mean service.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn new(
        mean_interarrival_cycles: u64,
        mean_service_scale: u64,
        profiles: Vec<TenantProfile>,
    ) -> Self {
        assert!(!profiles.is_empty(), "arrival generator needs at least one tenant profile");
        ArrivalGenerator {
            mean_interarrival_cycles: mean_interarrival_cycles.max(1),
            mean_service_scale: mean_service_scale.max(1),
            profiles,
        }
    }

    /// The profiles arrivals draw from.
    pub fn profiles(&self) -> &[TenantProfile] {
        &self.profiles
    }

    /// Draws `count` arrivals from `seed`.
    pub fn draw(&self, seed: u64, count: usize) -> Vec<Arrival> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut now = 0u64;
        let mut out = Vec::with_capacity(count);
        for tenant in 0..count as u64 {
            now = now.saturating_add(exponential(&mut rng, self.mean_interarrival_cycles));
            let profile = (rng.next_u64() % self.profiles.len() as u64) as usize;
            let p = &self.profiles[profile];
            let mean_service = p.service_units.saturating_mul(self.mean_service_scale).max(1);
            let service_units = exponential(&mut rng, mean_service);
            out.push(Arrival {
                tenant,
                at_cycle: now,
                profile,
                demand_cores: p.demand_cores,
                service_units,
            });
        }
        out
    }
}

/// One exponential draw with the given mean, rounded to at least one cycle.
/// Inverse-CDF over the vendored generator's 53-bit uniform: deterministic
/// for a given seed.
fn exponential(rng: &mut StdRng, mean: u64) -> u64 {
    let u: f64 = rng.gen();
    let draw = -(mean as f64) * f64::ln(1.0 - u);
    (draw.round() as u64).max(1)
}

/// Exact-sample SLO accounting: every completion latency and every
/// reconfiguration stall is kept verbatim and percentiles are read from the
/// sorted samples by the nearest-rank rule — no histogram buckets, so two
/// runs that simulate the same events report byte-identical tails.
#[derive(Debug, Clone, Default)]
pub struct SloAccount {
    completion_cycles: Vec<u64>,
    stall_cycles: Vec<u64>,
}

impl SloAccount {
    /// Creates an empty account.
    pub fn new() -> Self {
        SloAccount::default()
    }

    /// Records one tenant's completion latency (admission-to-departure,
    /// stalls included).
    pub fn record_completion(&mut self, cycles: u64) {
        self.completion_cycles.push(cycles);
    }

    /// Records one reconfiguration stall.
    pub fn record_stall(&mut self, cycles: u64) {
        self.stall_cycles.push(cycles);
    }

    /// Number of completions recorded.
    pub fn completions(&self) -> usize {
        self.completion_cycles.len()
    }

    /// Number of stalls recorded.
    pub fn stalls(&self) -> usize {
        self.stall_cycles.len()
    }

    /// The completion-latency percentile `num/den` (e.g. 999/1000 for p999)
    /// by the nearest-rank rule, or 0 with no samples.
    pub fn completion_percentile(&self, num: u64, den: u64) -> u64 {
        percentile(&self.completion_cycles, num, den)
    }

    /// The stall percentile `num/den` by the nearest-rank rule, or 0 with no
    /// samples.
    pub fn stall_percentile(&self, num: u64, den: u64) -> u64 {
        percentile(&self.stall_cycles, num, den)
    }

    /// The largest stall observed, or 0.
    pub fn stall_max(&self) -> u64 {
        self.stall_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Sum of all stall cycles.
    ///
    /// # Panics
    ///
    /// Panics if the total would overflow `u64` — a wrapped stall total would
    /// silently corrupt the checksummed SLO report, so the overflow is loud
    /// (same discipline as the `Region` address arithmetic).
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_cycles.iter().fold(0u64, |a, s| {
            a.checked_add(*s)
                .unwrap_or_else(|| panic!("SLO stall total overflowed u64 ({a} + {s})"))
        })
    }

    /// FNV-1a over the completion samples then the stall samples (in
    /// recording order) — the byte-stable checksum CI pins.
    pub fn checksum(&self) -> u64 {
        let mut c: u64 = 0xcbf2_9ce4_8422_2325;
        for s in self.completion_cycles.iter().chain(&self.stall_cycles) {
            for byte in s.to_le_bytes() {
                c ^= byte as u64;
                c = c.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        c
    }
}

/// Nearest-rank percentile over a copy of `samples` sorted ascending:
/// rank ⌈n·num/den⌉, clamped to the sample count. Exact integer arithmetic
/// throughout.
fn percentile(samples: &[u64], num: u64, den: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let rank = n.saturating_mul(num).div_ceil(den).clamp(1, n);
    sorted[(rank - 1) as usize]
}

/// Storm parameters: how many tenants arrive, how fast, how much service
/// they need, and how much of the machine the insecure host keeps.
#[derive(Debug, Clone)]
pub struct StormConfig {
    /// Number of tenant arrivals to generate.
    pub tenants: usize,
    /// Mean inter-arrival gap, in cycles.
    pub mean_interarrival_cycles: u64,
    /// Multiplier on every profile's mean service requirement.
    pub mean_service_scale: u64,
    /// Cores reserved for the insecure host cluster (the secure cluster can
    /// never grow into these).
    pub host_reserve_cores: usize,
    /// Tenant classes arrivals draw from.
    pub profiles: Vec<TenantProfile>,
}

/// One admitted tenant's live state inside the storm.
#[derive(Debug, Clone)]
struct ActiveTenant {
    tenant: u64,
    /// Arrival cycle — completion latency is measured from here, so queueing
    /// delay and reconfiguration stalls both surface in the SLO tails.
    arrived_at: u64,
    granted: usize,
    remaining_units: u64,
}

/// The outcome of one tenancy storm: conservation counts, SLO tails and the
/// reconfiguration bill.
#[derive(Debug, Clone)]
pub struct StormReport {
    /// Tenants that arrived.
    pub arrived: u64,
    /// Tenants ever admitted (directly, from the queue, or after shrinking
    /// neighbours).
    pub admitted: u64,
    /// Tenants rejected.
    pub denied: u64,
    /// Tenants still waiting in the queue when the storm ended (always 0
    /// after a full drain; kept for the conservation identity).
    pub queued: u64,
    /// Tenants attested by the secure kernel (always equals `arrived`:
    /// attestation precedes admission control).
    pub attested: u64,
    /// Exact-sample SLO account (completion latencies + stalls).
    pub slo: SloAccount,
    /// Cluster reconfigurations performed.
    pub reconfigurations: u64,
    /// Pages re-homed across all reconfigurations.
    pub pages_rehomed: u64,
    /// The cycle the last event completed at.
    pub final_cycle: u64,
    /// Tenants that lost their tile to an injected fault and were re-admitted
    /// through the admission machinery (0 on every fault-free run).
    pub failed_recovered: u64,
    /// Injected fault events that fired during the storm.
    pub faults_injected: u64,
    /// Tiles quarantined in response to tile failures.
    pub quarantined_tiles: u64,
    /// Bounded-exponential-backoff retries charged against degraded capacity.
    pub backoff_retries: u64,
    /// Dropped scrub packets the audit detected (audited discipline only).
    pub dropped_scrubs_detected: u64,
    /// Dropped scrub packets replayed back to a clean state.
    pub dropped_scrubs_recovered: u64,
    /// Dropped scrub packets never recovered (unaudited discipline: the storm
    /// fails open and this count is the attack surface it leaves behind).
    pub dropped_scrubs_unrecovered: u64,
}

impl StormReport {
    /// The conservation identity every policy must satisfy, extended for
    /// fault injection: admitted + denied + queued + failed-recovered ==
    /// arrived. On fault-free runs `failed_recovered` is zero and this is the
    /// original three-bucket identity.
    pub fn conserves_tenants(&self) -> bool {
        self.admitted + self.denied + self.queued + self.failed_recovered == self.arrived
    }
}

/// Replays an arrival stream against one machine: admission control, cluster
/// resizing, exact service accounting and SLO collection. Purely
/// single-threaded per storm — all parallelism lives in the grid above it.
#[derive(Debug)]
pub struct TenancyStorm<'a> {
    config: &'a StormConfig,
    policy: AdmissionPolicy,
    faults: Option<(&'a FaultSchedule, FaultArch)>,
}

impl<'a> TenancyStorm<'a> {
    /// Creates a storm for one (policy, config) combination.
    pub fn new(config: &'a StormConfig, policy: AdmissionPolicy) -> Self {
        TenancyStorm { config, policy, faults: None }
    }

    /// Creates a storm that replays `schedule` against the tenant stream,
    /// responding with `arch`'s degradation discipline. An empty schedule is
    /// inert: the storm is byte-identical to a fault-free [`TenancyStorm::new`]
    /// run with the same seed.
    pub fn with_faults(
        config: &'a StormConfig,
        policy: AdmissionPolicy,
        schedule: &'a FaultSchedule,
        arch: FaultArch,
    ) -> Self {
        TenancyStorm { config, policy, faults: Some((schedule, arch)) }
    }

    /// Runs the storm on `machine` (recycled to pristine first) with the
    /// given seed. Every event — arrival order, admission decisions, service
    /// completion, reconfiguration stalls — is a pure function of the seed
    /// and parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ClusterError`] if a cluster shape is rejected (cannot
    /// happen for row-quantised shapes on the shipped geometries).
    ///
    /// # Panics
    ///
    /// Panics if the machine is too small to host one secure row plus the
    /// host reserve.
    pub fn run(&self, machine: &mut Machine, seed: u64) -> Result<StormReport, ClusterError> {
        machine.reset_pristine();
        let total = machine.config().cores();
        let width = machine.config().mesh_width;
        let reserve = self.config.host_reserve_cores.max(width);
        assert!(
            total > reserve + width,
            "machine of {total} cores cannot host a secure row plus a {reserve}-core reserve"
        );
        // The secure cluster is quantised to whole mesh rows so every shape
        // keeps its memory-controller attachment points inside the cluster
        // (the containment rule `ClusterMap` verifies).
        let capacity = total - reserve;
        let min_shape = width;
        let max_shape = capacity - capacity % width;

        let secure = machine.create_process("tenants", SecurityClass::Secure);
        let host = machine.create_process("host", SecurityClass::Insecure);
        let mut kernel = SecureKernel::new();
        let (mut manager, _) = ClusterManager::form(machine, secure, host, min_shape)?;
        let mut shape = min_shape;

        let generator = ArrivalGenerator::new(
            self.config.mean_interarrival_cycles,
            self.config.mean_service_scale,
            self.config.profiles.clone(),
        );
        let arrivals = generator.draw(seed, self.config.tenants);

        let mut now = 0u64;
        let mut next_arrival = 0usize;
        let mut active: Vec<ActiveTenant> = Vec::new();
        let mut fifo: Vec<Arrival> = Vec::new();
        let mut slo = SloAccount::new();
        let mut admitted = 0u64;
        let mut denied = 0u64;
        let mut attested = 0u64;

        // Fault-injection state. All of it is inert (and costs nothing on the
        // hot path) when the storm runs without a schedule or the schedule is
        // empty, which is what keeps fault-free storms byte-identical to the
        // pinned golden checksums.
        let audited = self.faults.is_none_or(|(_, arch)| arch.audited());
        let mut fault_cursor = 0usize;
        let mut effective_capacity = capacity;
        let mut failed_recovered = 0u64;
        let mut faults_injected = 0u64;
        let mut quarantined_tiles = 0u64;
        let mut backoff_retries = 0u64;
        let mut dropped_detected = 0u64;
        let mut dropped_recovered = 0u64;
        // Tenants evicted by a tile failure and parked in the FIFO: their
        // eventual admission counts as a recovery, not a fresh admission.
        let mut evicted_ids: Vec<u64> = Vec::new();
        let drop_fault_installed = match self.faults {
            Some((schedule, _))
                if schedule.config().kind == FaultKind::DroppedScrub
                    && schedule.config().rate_per_mille > 0 =>
            {
                machine.set_scrub_drop_fault(schedule.seed(), schedule.config().rate_per_mille);
                true
            }
            _ => false,
        };

        loop {
            // Earliest completion among active tenants; ties broken by
            // arrival order for determinism.
            let completion = active
                .iter()
                .enumerate()
                .map(|(i, t)| (now + t.remaining_units.div_ceil(t.granted as u64), t.tenant, i))
                .min();
            let arrival_cycle = arrivals.get(next_arrival).map(|a| a.at_cycle.max(now));
            let (event_cycle, is_completion) = match (&completion, arrival_cycle) {
                (Some((finish, _, _)), Some(at)) => {
                    // A completion at the same cycle as an arrival settles
                    // first, so the departing tenant's cores are free for
                    // the admission decision.
                    if *finish <= at {
                        (*finish, true)
                    } else {
                        (at, false)
                    }
                }
                (Some((finish, _, _)), None) => (*finish, true),
                (None, Some(at)) => (at, false),
                (None, None) => break,
            };

            // Advance exact service accounting to the event cycle.
            let dt = event_cycle - now;
            if dt > 0 {
                for t in &mut active {
                    let progress = (t.granted as u64).saturating_mul(dt);
                    t.remaining_units = t.remaining_units.saturating_sub(progress);
                }
                now = event_cycle;
            }

            if is_completion {
                let idx = completion.expect("completion event has a tenant").2;
                let done = active.remove(idx);
                slo.record_completion(now.saturating_sub(done.arrived_at));
                // Departures admit queued tenants strictly FIFO.
                while let Some(front) = fifo.first() {
                    let used: usize = active.iter().map(|t| t.granted).sum();
                    if used + front.demand_cores > effective_capacity {
                        break;
                    }
                    let a = fifo.remove(0);
                    if let Some(pos) = evicted_ids.iter().position(|t| *t == a.tenant) {
                        evicted_ids.swap_remove(pos);
                        failed_recovered += 1;
                    } else {
                        admitted += 1;
                    }
                    self.admit(machine, secure, &a, &mut active);
                }
            } else {
                let a = arrivals[next_arrival].clone();
                next_arrival += 1;

                // Fire every scheduled fault pinned to this arrival index.
                // All fault handling is a pure function of the cell seed, so
                // the storm stays replayable at any thread count.
                if let Some((schedule, arch)) = self.faults {
                    let events = schedule.events();
                    while fault_cursor < events.len()
                        && events[fault_cursor].at_event < next_arrival as u64
                    {
                        let ev = events[fault_cursor];
                        fault_cursor += 1;
                        match schedule.config().kind {
                            FaultKind::TileFailure => {
                                faults_injected += 1;
                                let node = NodeId(ev.target % total);
                                // A quarantine that would exhaust a cluster is
                                // refused and the tile limps on in service.
                                if let Ok(stall) = manager.quarantine(machine, secure, host, node) {
                                    if stall > 0 {
                                        quarantined_tiles += 1;
                                        effective_capacity = effective_capacity.saturating_sub(1);
                                        slo.record_stall(stall);
                                        now = now.saturating_add(stall);
                                        // The repair window this failure
                                        // opens; re-admission retries back
                                        // off until it closes.
                                        let degraded_until =
                                            now.saturating_add(schedule.config().repair_cycles);
                                        if !active.is_empty() {
                                            let idx = ev.target % active.len();
                                            let victim = active.remove(idx);
                                            admitted -= 1;
                                            if arch.audited() {
                                                // Retry against degraded
                                                // capacity with bounded
                                                // exponential backoff, charged
                                                // as simulated stall cycles.
                                                let backoff = schedule.config().backoff;
                                                let mut attempt = 0u32;
                                                while now < degraded_until
                                                    && attempt < backoff.max_attempts
                                                {
                                                    let delay = backoff.delay(attempt);
                                                    attempt += 1;
                                                    backoff_retries += 1;
                                                    slo.record_stall(delay);
                                                    now = now.saturating_add(delay);
                                                }
                                                let used: usize =
                                                    active.iter().map(|t| t.granted).sum();
                                                if now >= degraded_until
                                                    && used + victim.granted <= effective_capacity
                                                {
                                                    failed_recovered += 1;
                                                    active.push(victim);
                                                } else {
                                                    match self.policy {
                                                        AdmissionPolicy::Deny => denied += 1,
                                                        AdmissionPolicy::Queue => {
                                                            evicted_ids.push(victim.tenant);
                                                            fifo.push(Arrival {
                                                                tenant: victim.tenant,
                                                                at_cycle: victim.arrived_at,
                                                                profile: 0,
                                                                demand_cores: victim.granted,
                                                                service_units: victim
                                                                    .remaining_units
                                                                    .max(1),
                                                            });
                                                        }
                                                        AdmissionPolicy::ShrinkNeighbours => {
                                                            if shrink_neighbours(
                                                                &mut active,
                                                                victim.granted,
                                                                effective_capacity,
                                                            ) {
                                                                failed_recovered += 1;
                                                                active.push(victim);
                                                            } else {
                                                                denied += 1;
                                                            }
                                                        }
                                                    }
                                                }
                                            } else {
                                                // Unaudited discipline fails
                                                // open: the tenant vanishes
                                                // and is billed as denied so
                                                // conservation still holds.
                                                denied += 1;
                                            }
                                        }
                                    }
                                }
                            }
                            FaultKind::LinkDegradation => {
                                faults_injected += 1;
                                let from = ev.target % total;
                                let to = if from % width + 1 < width {
                                    from + 1
                                } else {
                                    from.saturating_sub(1)
                                };
                                if from != to {
                                    let penalty = schedule.config().magnitude;
                                    machine.set_link_fault(NodeId(from), NodeId(to), penalty);
                                    machine.set_link_fault(NodeId(to), NodeId(from), penalty);
                                }
                            }
                            FaultKind::ControllerStall => {
                                faults_injected += 1;
                                let controllers = machine.config().controllers;
                                machine.set_controller_fault_stall(
                                    ev.target % controllers.max(1),
                                    schedule.config().magnitude,
                                );
                            }
                            // Continuous fault: installed before the loop,
                            // audited after every reconfiguration below.
                            FaultKind::DroppedScrub => {}
                        }
                    }
                }

                // One tenant = one attested allocation: measurement-based
                // attestation happens before any admission decision.
                let image =
                    format!("tenant:{}:{}", a.tenant, self.config.profiles[a.profile].label);
                let signature = SecureKernel::sign(image.as_bytes(), TENANT_AUTHOR_KEY);
                let pid = ironhide_sim::process::ProcessId(1000 + a.tenant as usize);
                kernel
                    .register(
                        pid,
                        image.as_bytes(),
                        signature,
                        TENANT_AUTHOR_KEY,
                        AppDomain(a.tenant),
                    )
                    .expect("tenant image signature verifies");
                kernel.admit(pid, image.as_bytes()).expect("tenant measurement is stable");
                attested += 1;

                let demand = a.demand_cores.min(effective_capacity);
                let used: usize = active.iter().map(|t| t.granted).sum();
                if used + demand <= effective_capacity {
                    admitted += 1;
                    self.admit(machine, secure, &a, &mut active);
                } else {
                    match self.policy {
                        AdmissionPolicy::Deny => denied += 1,
                        AdmissionPolicy::Queue => fifo.push(a),
                        AdmissionPolicy::ShrinkNeighbours => {
                            if shrink_neighbours(&mut active, demand, effective_capacity) {
                                admitted += 1;
                                self.admit(machine, secure, &a, &mut active);
                            } else {
                                denied += 1;
                            }
                        }
                    }
                }
            }

            // Resize the secure cluster to the new row-quantised shape; the
            // stall freezes every tenant (their service clocks do not
            // advance while the machine is stalled, so stalls surface in the
            // completion tails).
            let used: usize = active.iter().map(|t| t.granted).sum();
            let new_shape = (used.max(1).div_ceil(width) * width).clamp(min_shape, max_shape);
            if new_shape != shape {
                if let Some((schedule, _)) = self.faults {
                    // Degraded-capacity reconfiguration: shrink the request
                    // toward what the healthy tiles can host, with bounded
                    // exponential backoff between attempts. Exhausting the
                    // attempts keeps the previous shape.
                    let backoff = schedule.config().backoff;
                    let mut attempt = 0u32;
                    let mut request = new_shape;
                    loop {
                        match manager.reconfigure_degraded(machine, secure, host, request) {
                            Ok(stall) => {
                                shape = request;
                                slo.record_stall(stall);
                                now = now.saturating_add(stall);
                                break;
                            }
                            Err(ReconfigError::Cluster(error)) => return Err(error),
                            Err(_) if attempt < backoff.max_attempts => {
                                let delay = backoff.delay(attempt);
                                attempt += 1;
                                backoff_retries += 1;
                                slo.record_stall(delay);
                                now = now.saturating_add(delay);
                                let healthy = total - manager.quarantined().len();
                                let healthy_shape =
                                    (healthy.saturating_sub(1) / width * width).max(min_shape);
                                request = request.min(healthy_shape);
                            }
                            Err(_) => break,
                        }
                    }
                } else {
                    let stall = manager.reconfigure(machine, secure, host, new_shape)?;
                    shape = new_shape;
                    slo.record_stall(stall);
                    now = now.saturating_add(stall);
                }
            }

            // Scrub audit: detect dropped purge traffic and replay it to a
            // clean state before any tenant can observe the residue. The
            // unaudited discipline skips this — that is exactly the negative
            // control the fault-window attack pins OPEN.
            if drop_fault_installed && audited {
                let detected =
                    (machine.dropped_scrub_log().len() + machine.dropped_purge_log().len()) as u64;
                if detected > 0 {
                    dropped_detected += detected;
                    let recovered = machine.recover_dropped_scrubs();
                    dropped_recovered += recovered;
                    let cost = recovered.saturating_mul(machine.config().latency.rehome_page);
                    slo.record_stall(cost);
                    now = now.saturating_add(cost);
                }
            }
        }

        let mut dropped_unrecovered = 0u64;
        if drop_fault_installed {
            if audited {
                let detected =
                    (machine.dropped_scrub_log().len() + machine.dropped_purge_log().len()) as u64;
                if detected > 0 {
                    dropped_detected += detected;
                    dropped_recovered += machine.recover_dropped_scrubs();
                }
            }
            dropped_unrecovered = machine.clear_scrub_drop_fault() as u64;
        }

        Ok(StormReport {
            arrived: arrivals.len() as u64,
            admitted,
            denied,
            queued: fifo.len() as u64,
            attested,
            slo,
            reconfigurations: manager.reconfigurations(),
            pages_rehomed: machine.stats().pages_rehomed,
            final_cycle: now,
            failed_recovered,
            faults_injected,
            quarantined_tiles,
            backoff_retries,
            dropped_scrubs_detected: dropped_detected,
            dropped_scrubs_recovered: dropped_recovered,
            dropped_scrubs_unrecovered: dropped_unrecovered,
        })
    }

    /// Grants the arrival its cores and touches its working set through the
    /// shared secure process (four pages per granted core, at a
    /// tenant-unique base), so reconfigurations have real pages to re-home.
    fn admit(
        &self,
        machine: &mut Machine,
        secure: ironhide_sim::process::ProcessId,
        arrival: &Arrival,
        active: &mut Vec<ActiveTenant>,
    ) {
        let granted = arrival.demand_cores;
        let base = (arrival.tenant + 1) << 26;
        let page = machine.page_bytes();
        for p in 0..(granted as u64 * 4) {
            machine.access(NodeId(0), secure, base + p * page, p % 2 == 0);
        }
        active.push(ActiveTenant {
            tenant: arrival.tenant,
            arrived_at: arrival.at_cycle,
            granted,
            remaining_units: arrival.service_units,
        });
    }
}

/// Shrinks active tenants' grants (proportionally over their shrinkable
/// surplus, floor one core each, deterministic remainder in list order) so a
/// newcomer demanding `demand` cores fits into `capacity`. Returns whether
/// the shrink succeeded; on failure nothing is modified.
fn shrink_neighbours(active: &mut [ActiveTenant], demand: usize, capacity: usize) -> bool {
    let used: usize = active.iter().map(|t| t.granted).sum();
    let free = capacity.saturating_sub(used);
    let need = demand.saturating_sub(free);
    if need == 0 {
        return true;
    }
    let shrinkable: usize = active.iter().map(|t| t.granted - 1).sum();
    if shrinkable < need {
        return false;
    }
    // Proportional floor share of the need, then hand out the remainder one
    // core at a time in list (admission) order.
    let mut taken = 0usize;
    for t in active.iter_mut() {
        let cut = need * (t.granted - 1) / shrinkable;
        t.granted -= cut;
        taken += cut;
    }
    let mut i = 0usize;
    while taken < need {
        if active[i].granted > 1 {
            active[i].granted -= 1;
            taken += 1;
        }
        i = (i + 1) % active.len();
    }
    true
}

// ---------------------------------------------------------------------------
// Tenancy grid and matrix
// ---------------------------------------------------------------------------

/// One load point of the tenancy grid: a label (feeds seed derivation) plus
/// the storm parameters it runs with.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    label: String,
    /// Storm parameters for this load.
    pub config: StormConfig,
}

impl LoadPoint {
    /// Creates a load point.
    pub fn new(label: impl Into<String>, config: StormConfig) -> Self {
        LoadPoint { label: label.into(), config }
    }

    /// The load's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// The {policy × load} tenancy grid swept by
/// [`SweepRunner::run_tenancy`](crate::sweep::SweepRunner::run_tenancy).
#[derive(Debug, Clone, Default)]
pub struct TenancyGrid {
    /// Admission policies to sweep.
    pub policies: Vec<AdmissionPolicy>,
    /// Load points to sweep.
    pub loads: Vec<LoadPoint>,
}

impl TenancyGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        TenancyGrid::default()
    }

    /// Adds an admission policy.
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policies.push(policy);
        self
    }

    /// Adds a load point.
    pub fn with_load(mut self, load: LoadPoint) -> Self {
        self.loads.push(load);
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.policies.len() * self.loads.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical cell expansion: load-major, then policy (mirrors the
    /// other grids' single source of truth for ordering).
    pub(crate) fn expanded(&self) -> Vec<(TenancyCellKey, &LoadPoint, AdmissionPolicy)> {
        let mut cells = Vec::with_capacity(self.len());
        for load in &self.loads {
            for policy in &self.policies {
                let key = TenancyCellKey { policy: *policy, load: load.label.clone() };
                cells.push((key, load, *policy));
            }
        }
        cells
    }

    /// The cell keys in canonical order.
    pub fn keys(&self) -> Vec<TenancyCellKey> {
        self.expanded().into_iter().map(|(k, _, _)| k).collect()
    }
}

/// Identity of one tenancy cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenancyCellKey {
    /// Admission policy.
    pub policy: AdmissionPolicy,
    /// Load-point label.
    pub load: String,
}

impl fmt::Display for TenancyCellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The "tenancy" prefix namespaces tenancy-cell seeds away from the
        // performance and attack grids'.
        write!(f, "tenancy | {} | {}", self.policy, self.load)
    }
}

/// A tenancy-sweep failure: the failing cell plus the cluster error.
#[derive(Debug, Clone)]
pub struct TenancySweepError {
    /// The cell that failed.
    pub cell: TenancyCellKey,
    /// Why it failed.
    pub error: ClusterError,
}

impl fmt::Display for TenancySweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenancy cell [{}] failed: {}", self.cell, self.error)
    }
}

impl std::error::Error for TenancySweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One completed tenancy cell.
#[derive(Debug, Clone)]
pub struct TenancyCell {
    /// The cell's identity.
    pub key: TenancyCellKey,
    /// The seed the storm ran with.
    pub seed: u64,
    /// The storm's outcome.
    pub report: StormReport,
}

/// The completed tenancy grid, in canonical order, with a deterministic JSON
/// rendering (same byte-stability contract as the other matrices).
#[derive(Debug, Clone)]
pub struct TenancyMatrix {
    /// The master seed the sweep ran with.
    pub master_seed: u64,
    /// Completed cells in grid order (load-major, then policy).
    pub cells: Vec<TenancyCell>,
}

impl TenancyMatrix {
    /// Looks up one cell.
    pub fn get(&self, policy: AdmissionPolicy, load: &str) -> Option<&TenancyCell> {
        self.cells.iter().find(|c| c.key.policy == policy && c.key.load == load)
    }

    /// FNV-1a over every cell's SLO checksum, in grid order — the single
    /// number CI pins for the whole matrix.
    pub fn checksum(&self) -> u64 {
        let mut c: u64 = 0xcbf2_9ce4_8422_2325;
        for cell in &self.cells {
            for byte in cell.report.slo.checksum().to_le_bytes() {
                c ^= byte as u64;
                c = c.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        c
    }

    /// Renders the matrix as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.cells.len() * 512);
        out.push_str("{\n  \"master_seed\": ");
        out.push_str(&self.master_seed.to_string());
        out.push_str(",\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            tenancy_cell_json(&mut out, cell);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn tenancy_cell_json(out: &mut String, cell: &TenancyCell) {
    let r = &cell.report;
    json_fields!(out, {
        "policy": json_string(out, cell.key.policy.label()),
        "load": json_string(out, &cell.key.load),
        "seed": out.push_str(&cell.seed.to_string()),
        "arrived": out.push_str(&r.arrived.to_string()),
        "admitted": out.push_str(&r.admitted.to_string()),
        "denied": out.push_str(&r.denied.to_string()),
        "queued": out.push_str(&r.queued.to_string()),
        "attested": out.push_str(&r.attested.to_string()),
        "completions": out.push_str(&r.slo.completions().to_string()),
        "completion_p50_cycles": out.push_str(&r.slo.completion_percentile(1, 2).to_string()),
        "completion_p99_cycles": out.push_str(&r.slo.completion_percentile(99, 100).to_string()),
        "completion_p999_cycles": out.push_str(&r.slo.completion_percentile(999, 1000).to_string()),
        "stall_p50_cycles": out.push_str(&r.slo.stall_percentile(1, 2).to_string()),
        "stall_p99_cycles": out.push_str(&r.slo.stall_percentile(99, 100).to_string()),
        "stall_p999_cycles": out.push_str(&r.slo.stall_percentile(999, 1000).to_string()),
        "stall_max_cycles": out.push_str(&r.slo.stall_max().to_string()),
        "total_stall_cycles": out.push_str(&r.slo.total_stall_cycles().to_string()),
        "reconfigurations": out.push_str(&r.reconfigurations.to_string()),
        "pages_rehomed": out.push_str(&r.pages_rehomed.to_string()),
        "final_cycle": out.push_str(&r.final_cycle.to_string()),
        "slo_checksum": out.push_str(&r.slo.checksum().to_string()),
    });
}

impl crate::sweep::SweepRunner {
    /// The seed a given tenancy cell would run with.
    pub fn tenancy_cell_seed(&self, key: &TenancyCellKey) -> u64 {
        derive_seed(self.master_seed(), &key.to_string())
    }

    /// Runs every cell of the tenancy `grid` in parallel and collects the
    /// reports in grid order, under the same determinism contract as the
    /// performance and attack sweeps: the serialised [`TenancyMatrix`] is
    /// byte-identical at any thread count because each cell's storm depends
    /// only on its derived seed.
    ///
    /// # Errors
    ///
    /// Returns the first (in grid order) [`TenancySweepError`] if any cell
    /// fails; partial results are discarded.
    pub fn run_tenancy(&self, grid: &TenancyGrid) -> Result<TenancyMatrix, TenancySweepError> {
        let cells = grid.expanded();
        let pool = ThreadPoolBuilder::new()
            .num_threads(self.threads())
            .build()
            .expect("tenancy thread pool builds");
        let machine_pools = crate::sweep::WorkerPools::new(pool.current_num_threads());
        let results: Vec<Result<TenancyCell, TenancySweepError>> = pool.install(|| {
            cells
                .par_iter()
                .map(|(key, load, policy)| {
                    let seed = self.tenancy_cell_seed(key);
                    let mut machine = machine_pools
                        .take()
                        .unwrap_or_else(|| Machine::new(self.machine_config().clone()));
                    let storm = TenancyStorm::new(&load.config, *policy);
                    let result = storm.run(&mut machine, seed);
                    machine_pools.give(machine);
                    let report =
                        result.map_err(|error| TenancySweepError { cell: key.clone(), error })?;
                    Ok(TenancyCell { key: key.clone(), seed, report })
                })
                .collect()
        });
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            out.push(result?);
        }
        Ok(TenancyMatrix { master_seed: self.master_seed(), cells: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepRunner;
    use ironhide_sim::config::MachineConfig;

    fn test_profiles() -> Vec<TenantProfile> {
        vec![
            TenantProfile::new("small", 4, 40_000),
            TenantProfile::new("medium", 12, 120_000),
            TenantProfile::new("large", 24, 250_000),
        ]
    }

    fn test_config() -> StormConfig {
        StormConfig {
            tenants: 40,
            mean_interarrival_cycles: 30_000,
            mean_service_scale: 1,
            host_reserve_cores: 8,
            profiles: test_profiles(),
        }
    }

    fn test_grid() -> TenancyGrid {
        let mut grid = TenancyGrid::new().with_load(LoadPoint::new("Smoke", test_config()));
        for policy in AdmissionPolicy::ALL {
            grid = grid.with_policy(policy);
        }
        grid
    }

    #[test]
    fn arrival_stream_is_seed_deterministic_and_monotonic() {
        let generator = ArrivalGenerator::new(10_000, 1, test_profiles());
        let a = generator.draw(7, 100);
        let b = generator.draw(7, 100);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        assert!(a.iter().all(|x| x.service_units >= 1));
        let c = generator.draw(8, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn percentiles_follow_the_nearest_rank_rule() {
        let mut slo = SloAccount::new();
        for v in [50u64, 10, 40, 30, 20] {
            slo.record_completion(v);
        }
        assert_eq!(slo.completion_percentile(1, 2), 30);
        assert_eq!(slo.completion_percentile(99, 100), 50);
        assert_eq!(slo.completion_percentile(999, 1000), 50);
        assert_eq!(SloAccount::new().completion_percentile(1, 2), 0);
    }

    #[test]
    fn shrink_takes_proportionally_and_respects_the_floor() {
        let mut active = vec![
            ActiveTenant { tenant: 0, arrived_at: 0, granted: 9, remaining_units: 1 },
            ActiveTenant { tenant: 1, arrived_at: 0, granted: 5, remaining_units: 1 },
            ActiveTenant { tenant: 2, arrived_at: 0, granted: 2, remaining_units: 1 },
        ];
        assert!(shrink_neighbours(&mut active, 6, 16));
        let granted: Vec<usize> = active.iter().map(|t| t.granted).collect();
        assert_eq!(granted.iter().sum::<usize>(), 10);
        assert!(granted.iter().all(|g| *g >= 1));

        // Impossible shrink leaves the grants untouched.
        let before: Vec<usize> = active.iter().map(|t| t.granted).collect();
        assert!(!shrink_neighbours(&mut active, 16, 16));
        let after: Vec<usize> = active.iter().map(|t| t.granted).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn stall_totals_near_the_boundary_still_sum() {
        let mut slo = SloAccount::new();
        slo.record_stall(u64::MAX - 5);
        slo.record_stall(5);
        assert_eq!(slo.total_stall_cycles(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "SLO stall total overflowed u64")]
    fn stall_total_overflow_is_loud_not_wrapped() {
        let mut slo = SloAccount::new();
        slo.record_stall(u64::MAX);
        slo.record_stall(1);
        let _ = slo.total_stall_cycles();
    }

    #[test]
    fn storms_conserve_tenants_under_every_policy() {
        let config = test_config();
        let mut machine = Machine::new(MachineConfig::paper_default());
        for policy in AdmissionPolicy::ALL {
            let report =
                TenancyStorm::new(&config, policy).run(&mut machine, 11).expect("storm runs");
            assert!(report.conserves_tenants(), "{policy}: conservation violated");
            assert_eq!(report.arrived, config.tenants as u64);
            assert_eq!(report.attested, report.arrived);
            assert_eq!(report.queued, 0, "{policy}: the drain must empty the queue");
            assert_eq!(report.slo.completions() as u64, report.admitted);
            assert!(report.reconfigurations > 0, "{policy}: storm never reconfigured");
        }
    }

    #[test]
    fn deny_never_queues_and_queue_never_denies() {
        let config = test_config();
        let mut machine = Machine::new(MachineConfig::paper_default());
        let deny = TenancyStorm::new(&config, AdmissionPolicy::Deny)
            .run(&mut machine, 11)
            .expect("deny storm");
        assert!(deny.denied > 0, "test load must overflow capacity");
        let queue = TenancyStorm::new(&config, AdmissionPolicy::Queue)
            .run(&mut machine, 11)
            .expect("queue storm");
        assert_eq!(queue.denied, 0);
        assert_eq!(queue.admitted, queue.arrived);
        // Queueing serves every tenant; denying serves strictly fewer.
        assert!(deny.admitted < deny.arrived);
        assert_eq!(queue.slo.completions() as u64, queue.arrived);
    }

    #[test]
    fn tenancy_matrix_is_byte_identical_across_thread_counts() {
        let grid = test_grid();
        let baseline = SweepRunner::new(MachineConfig::paper_default())
            .with_seed(7)
            .with_threads(1)
            .run_tenancy(&grid)
            .expect("tenancy sweep")
            .to_json();
        for threads in [2usize, 4] {
            let json = SweepRunner::new(MachineConfig::paper_default())
                .with_seed(7)
                .with_threads(threads)
                .run_tenancy(&grid)
                .expect("tenancy sweep")
                .to_json();
            assert_eq!(baseline, json, "thread count {threads} changed the tenancy matrix");
        }
    }

    #[test]
    fn tenancy_seeds_are_namespaced_per_cell() {
        let runner = SweepRunner::new(MachineConfig::paper_default()).with_seed(7);
        let keys = test_grid().keys();
        let seeds: Vec<u64> = keys.iter().map(|k| runner.tenancy_cell_seed(k)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "cell seeds must be distinct");
    }
}
