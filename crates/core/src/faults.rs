//! Deterministic fault injection with quarantine-and-remap degradation.
//!
//! A security architecture that only holds on a healthy machine is not a
//! security architecture — real deployments lose tiles, links, and memory
//! controllers, and the purge traffic IRONHIDE's isolation leans on can
//! itself be dropped by a failing NoC. This module makes failure a
//! first-class, *replayable* input:
//!
//! * [`FaultSchedule`] draws a fault event stream from the vendored `rand`
//!   ([`StdRng`]): which arrival index each fault fires at and which tile it
//!   hits are pure functions of the schedule seed, so every campaign cell is
//!   byte-replayable across thread counts and processes.
//! * [`FaultKind`] covers the taxonomy: whole-tile failures (quarantined and
//!   re-pinned around via
//!   [`ClusterManager::quarantine`](crate::cluster::ClusterManager::quarantine)),
//!   NoC link degradation (per-link penalty cycles), memory-controller stalls,
//!   and *partial-completion* faults that drop a seed-chosen fraction of
//!   scrub/purge packets mid-reconfiguration.
//! * [`FaultArch`] is the differential axis: the audited discipline detects
//!   dropped scrubs and replays them (channels stay CLOSED), the unaudited
//!   one fails open and is pinned OPEN as the negative control.
//! * [`BackoffPolicy`] bounds the exponential retry a storm charges when it
//!   re-admits tenants or reconfigures against degraded capacity.
//! * [`FaultGrid`] / [`FaultMatrix`] sweep {kind × rate × arch} through
//!   [`SweepRunner`](crate::sweep::SweepRunner) under the same determinism
//!   contract as every other matrix in the tree.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use ironhide_sim::machine::Machine;

use crate::cluster::ClusterError;
use crate::sweep::{derive_seed, json_fields, json_string};
use crate::tenancy::{AdmissionPolicy, StormConfig, StormReport, TenancyStorm};

// ---------------------------------------------------------------------------
// Fault taxonomy
// ---------------------------------------------------------------------------

/// The kinds of injected failure the campaign sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A tile dies: its slice is quarantined, scrubbed and routed around.
    TileFailure,
    /// A NoC link degrades: every flit crossing it pays a penalty.
    LinkDegradation,
    /// A memory controller develops a fixed per-request stall.
    ControllerStall,
    /// Partial completion: a fraction of scrub/purge packets is dropped
    /// mid-reconfiguration (the fault the scrub audit exists to catch).
    DroppedScrub,
}

impl FaultKind {
    /// Every kind, in canonical sweep order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::TileFailure,
        FaultKind::LinkDegradation,
        FaultKind::ControllerStall,
        FaultKind::DroppedScrub,
    ];

    /// Stable label — feeds cell-seed derivation and JSON, so it must never
    /// change once a checksum is pinned.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TileFailure => "tile-failure",
            FaultKind::LinkDegradation => "link-degradation",
            FaultKind::ControllerStall => "controller-stall",
            FaultKind::DroppedScrub => "dropped-scrub",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The degradation discipline under test — the differential axis of the
/// campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultArch {
    /// IRONHIDE's discipline: quarantine failed tiles, audit the scrub log
    /// after every reconfiguration, replay dropped packets, re-admit evicted
    /// tenants with bounded backoff.
    Ironhide,
    /// The fail-open baseline: no scrub audit, no recovery — evicted tenants
    /// vanish and dropped purge traffic leaves attacker-observable residue.
    Insecure,
}

impl FaultArch {
    /// Both disciplines, in canonical sweep order.
    pub const ALL: [FaultArch; 2] = [FaultArch::Ironhide, FaultArch::Insecure];

    /// Stable label (same contract as [`FaultKind::label`]).
    pub fn label(self) -> &'static str {
        match self {
            FaultArch::Ironhide => "IRONHIDE",
            FaultArch::Insecure => "Insecure",
        }
    }

    /// Whether this discipline audits and recovers dropped scrub traffic.
    pub fn audited(self) -> bool {
        matches!(self, FaultArch::Ironhide)
    }
}

impl fmt::Display for FaultArch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// ---------------------------------------------------------------------------
// Backoff and schedule
// ---------------------------------------------------------------------------

/// Bounded exponential backoff, in simulated cycles, for retries against
/// degraded capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Delay of the first retry.
    pub base_cycles: u64,
    /// Retries stop (and the request is refused) after this many attempts.
    pub max_attempts: u32,
}

impl BackoffPolicy {
    /// The delay charged for retry number `attempt` (0-based):
    /// `base_cycles << attempt`, saturating instead of overflowing.
    pub fn delay(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_cycles.saturating_mul(factor)
    }
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        BackoffPolicy { base_cycles: 2_000, max_attempts: 6 }
    }
}

/// Parameters one [`FaultSchedule`] is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// What breaks.
    pub kind: FaultKind,
    /// Fault intensity in per-mille: per-arrival firing probability for
    /// discrete kinds, per-page drop probability for
    /// [`FaultKind::DroppedScrub`].
    pub rate_per_mille: u32,
    /// Kind-specific magnitude: link penalty cycles or controller stall
    /// cycles (unused for tile failures and dropped scrubs).
    pub magnitude: u64,
    /// How long (simulated cycles) a tile failure leaves capacity degraded —
    /// re-admissions retry with backoff until this window closes.
    pub repair_cycles: u64,
    /// Retry policy against degraded capacity.
    pub backoff: BackoffPolicy,
}

impl FaultConfig {
    /// The campaign's default parameters for `kind` at `rate_per_mille`.
    pub fn for_kind(kind: FaultKind, rate_per_mille: u32) -> Self {
        let magnitude = match kind {
            FaultKind::TileFailure | FaultKind::DroppedScrub => 0,
            FaultKind::LinkDegradation => 48,
            FaultKind::ControllerStall => 250,
        };
        FaultConfig {
            kind,
            rate_per_mille,
            magnitude,
            repair_cycles: 150_000,
            backoff: BackoffPolicy::default(),
        }
    }
}

/// One drawn fault: it fires when the storm consumes arrival `at_event`, on
/// tile `target` (reduced modulo whatever population the consumer targets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Arrival index the fault is pinned to.
    pub at_event: u64,
    /// Raw tile draw.
    pub target: usize,
}

/// A seed-pure, replayable fault event stream.
///
/// Two schedules drawn with equal `(config, seed, horizon, targets)` are
/// byte-identical; there is no hidden draw counter, so replaying a schedule
/// never depends on who consumed it first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSchedule {
    config: FaultConfig,
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Draws the schedule: for each of `horizon_events` arrival indices, one
    /// firing draw against `rate_per_mille` and one target draw over
    /// `targets` tiles (both always consumed, so the stream shape is
    /// independent of the rate). [`FaultKind::DroppedScrub`] is a continuous
    /// fault — it draws identically but schedules no discrete events; its
    /// rate applies per scrubbed page inside the machine instead.
    pub fn draw(config: FaultConfig, seed: u64, horizon_events: u64, targets: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for at_event in 0..horizon_events {
            let fire = (rng.next_u64() % 1000) as u32;
            let target = (rng.next_u64() % targets.max(1) as u64) as usize;
            if config.kind != FaultKind::DroppedScrub && fire < config.rate_per_mille {
                events.push(FaultEvent { at_event, target });
            }
        }
        FaultSchedule { config, seed, events }
    }

    /// The parameters the schedule was drawn from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The seed the schedule was drawn with (also seeds the machine's
    /// per-page scrub-drop predicate for dropped-scrub campaigns).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The drawn events, ascending by arrival index.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// FNV-1a over the config and every drawn event — the number the
    /// seed-purity property test compares across replays.
    pub fn checksum(&self) -> u64 {
        let mut c: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                c ^= byte as u64;
                c = c.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        eat(self.config.rate_per_mille as u64);
        eat(self.config.magnitude);
        eat(self.seed);
        for ev in &self.events {
            eat(ev.at_event);
            eat(ev.target as u64);
        }
        c
    }
}

// ---------------------------------------------------------------------------
// Fault grid and matrix
// ---------------------------------------------------------------------------

/// The {kind × rate × arch} fault campaign grid swept by
/// [`SweepRunner::run_faults`](crate::sweep::SweepRunner::run_faults), over a
/// single storm load and admission policy.
#[derive(Debug, Clone)]
pub struct FaultGrid {
    /// Fault kinds to sweep.
    pub kinds: Vec<FaultKind>,
    /// Fault rates (per-mille) to sweep; include 0 for the healthy baseline
    /// cell each degradation gate compares against.
    pub rates_per_mille: Vec<u32>,
    /// Degradation disciplines to sweep.
    pub arches: Vec<FaultArch>,
    /// The tenant load every cell replays.
    pub storm: StormConfig,
    /// The admission policy every cell runs under.
    pub policy: AdmissionPolicy,
}

impl FaultGrid {
    /// Creates an empty grid over one (load, policy) combination.
    pub fn new(storm: StormConfig, policy: AdmissionPolicy) -> Self {
        FaultGrid {
            kinds: Vec::new(),
            rates_per_mille: Vec::new(),
            arches: Vec::new(),
            storm,
            policy,
        }
    }

    /// Adds a fault kind.
    pub fn with_kind(mut self, kind: FaultKind) -> Self {
        self.kinds.push(kind);
        self
    }

    /// Adds a fault rate (per-mille).
    pub fn with_rate(mut self, rate_per_mille: u32) -> Self {
        self.rates_per_mille.push(rate_per_mille);
        self
    }

    /// Adds a degradation discipline.
    pub fn with_arch(mut self, arch: FaultArch) -> Self {
        self.arches.push(arch);
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.kinds.len() * self.rates_per_mille.len() * self.arches.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The canonical cell expansion: kind-major, then rate, then arch.
    pub fn keys(&self) -> Vec<FaultCellKey> {
        let mut keys = Vec::with_capacity(self.len());
        for kind in &self.kinds {
            for rate in &self.rates_per_mille {
                for arch in &self.arches {
                    keys.push(FaultCellKey { kind: *kind, rate_per_mille: *rate, arch: *arch });
                }
            }
        }
        keys
    }
}

/// Identity of one fault-campaign cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCellKey {
    /// What breaks.
    pub kind: FaultKind,
    /// How often (per-mille).
    pub rate_per_mille: u32,
    /// Which discipline responds.
    pub arch: FaultArch,
}

impl fmt::Display for FaultCellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The "faults" prefix namespaces fault-cell seeds away from every
        // other grid's.
        write!(f, "faults | {} | {} | {}", self.kind, self.rate_per_mille, self.arch)
    }
}

/// A fault-sweep failure: the failing cell plus the cluster error.
#[derive(Debug, Clone)]
pub struct FaultSweepError {
    /// The cell that failed.
    pub cell: FaultCellKey,
    /// Why it failed.
    pub error: ClusterError,
}

impl fmt::Display for FaultSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault cell [{}] failed: {}", self.cell, self.error)
    }
}

impl std::error::Error for FaultSweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One completed fault cell.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// The cell's identity.
    pub key: FaultCellKey,
    /// The seed the storm ran with.
    pub seed: u64,
    /// Discrete fault events the schedule drew for this cell.
    pub scheduled_events: u64,
    /// The storm's outcome under injected faults.
    pub report: StormReport,
}

/// The completed fault campaign, in canonical order, with a deterministic
/// JSON rendering (same byte-stability contract as the other matrices).
#[derive(Debug, Clone)]
pub struct FaultMatrix {
    /// The master seed the sweep ran with.
    pub master_seed: u64,
    /// Completed cells in grid order (kind-major, then rate, then arch).
    pub cells: Vec<FaultCell>,
}

impl FaultMatrix {
    /// Looks up one cell.
    pub fn get(&self, kind: FaultKind, rate_per_mille: u32, arch: FaultArch) -> Option<&FaultCell> {
        self.cells.iter().find(|c| {
            c.key.kind == kind && c.key.rate_per_mille == rate_per_mille && c.key.arch == arch
        })
    }

    /// FNV-1a over the serialised matrix — the single number CI pins for the
    /// whole campaign.
    pub fn checksum(&self) -> u64 {
        let mut c: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_json().as_bytes() {
            c ^= *byte as u64;
            c = c.wrapping_mul(0x0000_0100_0000_01B3);
        }
        c
    }

    /// Renders the campaign as deterministic JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + self.cells.len() * 640);
        out.push_str("{\n  \"master_seed\": ");
        out.push_str(&self.master_seed.to_string());
        out.push_str(",\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            fault_cell_json(&mut out, cell);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn fault_cell_json(out: &mut String, cell: &FaultCell) {
    let r = &cell.report;
    json_fields!(out, {
        "kind": json_string(out, cell.key.kind.label()),
        "rate_per_mille": out.push_str(&cell.key.rate_per_mille.to_string()),
        "arch": json_string(out, cell.key.arch.label()),
        "seed": out.push_str(&cell.seed.to_string()),
        "scheduled_events": out.push_str(&cell.scheduled_events.to_string()),
        "arrived": out.push_str(&r.arrived.to_string()),
        "admitted": out.push_str(&r.admitted.to_string()),
        "denied": out.push_str(&r.denied.to_string()),
        "queued": out.push_str(&r.queued.to_string()),
        "failed_recovered": out.push_str(&r.failed_recovered.to_string()),
        "conserved": out.push_str(if r.conserves_tenants() { "true" } else { "false" }),
        "faults_injected": out.push_str(&r.faults_injected.to_string()),
        "quarantined_tiles": out.push_str(&r.quarantined_tiles.to_string()),
        "backoff_retries": out.push_str(&r.backoff_retries.to_string()),
        "dropped_scrubs_detected": out.push_str(&r.dropped_scrubs_detected.to_string()),
        "dropped_scrubs_recovered": out.push_str(&r.dropped_scrubs_recovered.to_string()),
        "dropped_scrubs_unrecovered": out.push_str(&r.dropped_scrubs_unrecovered.to_string()),
        "completion_p50_cycles": out.push_str(&r.slo.completion_percentile(1, 2).to_string()),
        "completion_p99_cycles": out.push_str(&r.slo.completion_percentile(99, 100).to_string()),
        "stall_p99_cycles": out.push_str(&r.slo.stall_percentile(99, 100).to_string()),
        "total_stall_cycles": out.push_str(&r.slo.total_stall_cycles().to_string()),
        "reconfigurations": out.push_str(&r.reconfigurations.to_string()),
        "pages_rehomed": out.push_str(&r.pages_rehomed.to_string()),
        "final_cycle": out.push_str(&r.final_cycle.to_string()),
        "slo_checksum": out.push_str(&r.slo.checksum().to_string()),
    });
}

impl crate::sweep::SweepRunner {
    /// The seed a given fault cell would run with.
    pub fn fault_cell_seed(&self, key: &FaultCellKey) -> u64 {
        derive_seed(self.master_seed(), &key.to_string())
    }

    /// Runs every cell of the fault `grid` in parallel and collects the
    /// reports in grid order, under the same determinism contract as every
    /// other sweep: the serialised [`FaultMatrix`] is byte-identical at any
    /// thread count because each cell's schedule and storm depend only on the
    /// cell's derived seed.
    ///
    /// # Errors
    ///
    /// Returns the first (in grid order) [`FaultSweepError`] if any cell
    /// fails; partial results are discarded.
    pub fn run_faults(&self, grid: &FaultGrid) -> Result<FaultMatrix, FaultSweepError> {
        let cells = grid.keys();
        let pool = ThreadPoolBuilder::new()
            .num_threads(self.threads())
            .build()
            .expect("fault thread pool builds");
        let machine_pools = crate::sweep::WorkerPools::new(pool.current_num_threads());
        let horizon = grid.storm.tenants as u64;
        let targets = self.machine_config().cores();
        let results: Vec<Result<FaultCell, FaultSweepError>> = pool.install(|| {
            cells
                .par_iter()
                .map(|key| {
                    let seed = self.fault_cell_seed(key);
                    let config = FaultConfig::for_kind(key.kind, key.rate_per_mille);
                    // The schedule gets its own derived seed so fault draws
                    // never alias the arrival stream's.
                    let schedule = FaultSchedule::draw(
                        config,
                        derive_seed(seed, "fault-schedule"),
                        horizon,
                        targets,
                    );
                    let mut machine = machine_pools
                        .take()
                        .unwrap_or_else(|| Machine::new(self.machine_config().clone()));
                    let storm =
                        TenancyStorm::with_faults(&grid.storm, grid.policy, &schedule, key.arch);
                    let result = storm.run(&mut machine, seed);
                    machine_pools.give(machine);
                    let report =
                        result.map_err(|error| FaultSweepError { cell: key.clone(), error })?;
                    Ok(FaultCell {
                        key: key.clone(),
                        seed,
                        scheduled_events: schedule.events().len() as u64,
                        report,
                    })
                })
                .collect()
        });
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            out.push(result?);
        }
        Ok(FaultMatrix { master_seed: self.master_seed(), cells: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepRunner;
    use crate::tenancy::TenantProfile;
    use ironhide_sim::config::MachineConfig;

    fn test_storm() -> StormConfig {
        StormConfig {
            tenants: 40,
            mean_interarrival_cycles: 30_000,
            mean_service_scale: 1,
            host_reserve_cores: 8,
            profiles: vec![
                TenantProfile::new("small", 4, 40_000),
                TenantProfile::new("medium", 12, 120_000),
                TenantProfile::new("large", 24, 250_000),
            ],
        }
    }

    fn test_grid() -> FaultGrid {
        FaultGrid::new(test_storm(), AdmissionPolicy::Queue)
            .with_kind(FaultKind::TileFailure)
            .with_kind(FaultKind::DroppedScrub)
            .with_rate(0)
            .with_rate(120)
            .with_arch(FaultArch::Ironhide)
            .with_arch(FaultArch::Insecure)
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let backoff = BackoffPolicy { base_cycles: 1_000, max_attempts: 8 };
        assert_eq!(backoff.delay(0), 1_000);
        assert_eq!(backoff.delay(1), 2_000);
        assert_eq!(backoff.delay(5), 32_000);
        assert_eq!(backoff.delay(200), u64::MAX);
    }

    #[test]
    fn fault_schedules_are_seed_pure() {
        let config = FaultConfig::for_kind(FaultKind::TileFailure, 500);
        let a = FaultSchedule::draw(config, 42, 64, 64);
        let b = FaultSchedule::draw(config, 42, 64, 64);
        assert_eq!(a, b);
        assert_eq!(a.checksum(), b.checksum());
        assert!(!a.events().is_empty(), "a 50% rate over 64 draws must fire");
        let c = FaultSchedule::draw(config, 43, 64, 64);
        assert_ne!(a.events(), c.events(), "different seeds must draw different streams");
    }

    #[test]
    fn zero_rate_schedules_are_inert() {
        // The crucial golden-preservation property: a storm carrying an empty
        // schedule is byte-identical to a storm with no schedule at all.
        let storm_config = test_storm();
        let mut machine = Machine::new(MachineConfig::paper_default());
        let baseline = TenancyStorm::new(&storm_config, AdmissionPolicy::Queue)
            .run(&mut machine, 11)
            .expect("baseline storm");
        for kind in FaultKind::ALL {
            let config = FaultConfig::for_kind(kind, 0);
            let schedule = FaultSchedule::draw(config, 7, 40, 64);
            assert!(schedule.events().is_empty());
            let faulted = TenancyStorm::with_faults(
                &storm_config,
                AdmissionPolicy::Queue,
                &schedule,
                FaultArch::Ironhide,
            )
            .run(&mut machine, 11)
            .expect("zero-rate storm");
            assert_eq!(baseline.slo.checksum(), faulted.slo.checksum(), "{kind}");
            assert_eq!(baseline.admitted, faulted.admitted, "{kind}");
            assert_eq!(faulted.faults_injected, 0, "{kind}");
            assert_eq!(faulted.failed_recovered, 0, "{kind}");
        }
    }

    #[test]
    fn tile_failures_quarantine_and_still_conserve_tenants() {
        let storm_config = test_storm();
        let config = FaultConfig::for_kind(FaultKind::TileFailure, 200);
        let schedule = FaultSchedule::draw(config, 1234, 40, 64);
        assert!(!schedule.events().is_empty());
        let mut machine = Machine::new(MachineConfig::paper_default());
        for policy in AdmissionPolicy::ALL {
            let report =
                TenancyStorm::with_faults(&storm_config, policy, &schedule, FaultArch::Ironhide)
                    .run(&mut machine, 11)
                    .expect("faulted storm");
            assert!(report.conserves_tenants(), "{policy}: conservation violated under faults");
            assert!(report.faults_injected > 0, "{policy}: no fault fired");
            assert!(report.quarantined_tiles > 0, "{policy}: no tile quarantined");
        }
    }

    #[test]
    fn audited_drops_recover_while_unaudited_leave_residue() {
        let storm_config = test_storm();
        let config = FaultConfig::for_kind(FaultKind::DroppedScrub, 500);
        let schedule = FaultSchedule::draw(config, 99, 40, 64);
        let mut machine = Machine::new(MachineConfig::paper_default());
        let audited = TenancyStorm::with_faults(
            &storm_config,
            AdmissionPolicy::Queue,
            &schedule,
            FaultArch::Ironhide,
        )
        .run(&mut machine, 11)
        .expect("audited storm");
        assert!(audited.dropped_scrubs_detected > 0, "the audit must see drops");
        assert_eq!(audited.dropped_scrubs_recovered, audited.dropped_scrubs_detected);
        assert_eq!(audited.dropped_scrubs_unrecovered, 0, "audited recovery must be complete");
        assert!(audited.conserves_tenants());

        let unaudited = TenancyStorm::with_faults(
            &storm_config,
            AdmissionPolicy::Queue,
            &schedule,
            FaultArch::Insecure,
        )
        .run(&mut machine, 11)
        .expect("unaudited storm");
        assert_eq!(unaudited.dropped_scrubs_detected, 0);
        assert!(
            unaudited.dropped_scrubs_unrecovered > 0,
            "failing open must leave attacker-observable residue"
        );
        assert!(unaudited.conserves_tenants());
    }

    #[test]
    fn fault_matrix_is_byte_identical_across_thread_counts() {
        let grid = test_grid();
        let baseline = SweepRunner::new(MachineConfig::paper_default())
            .with_seed(7)
            .with_threads(1)
            .run_faults(&grid)
            .expect("fault sweep")
            .to_json();
        for threads in [2usize, 4] {
            let json = SweepRunner::new(MachineConfig::paper_default())
                .with_seed(7)
                .with_threads(threads)
                .run_faults(&grid)
                .expect("fault sweep")
                .to_json();
            assert_eq!(baseline, json, "thread count {threads} changed the fault matrix");
        }
    }

    #[test]
    fn fault_seeds_are_namespaced_per_cell() {
        let runner = SweepRunner::new(MachineConfig::paper_default()).with_seed(7);
        let keys = test_grid().keys();
        let seeds: Vec<u64> = keys.iter().map(|k| runner.fault_cell_seed(k)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "cell seeds must be distinct");
    }
}
