//! Strong-isolation auditing.
//!
//! The auditor inspects a machine after (or during) an experiment and checks
//! the invariants the paper's strong-isolation argument rests on:
//!
//! 1. every physical page of a process lives in a DRAM region owned by that
//!    process's security class;
//! 2. under the clustered architecture, the active cluster map can contain
//!    its own traffic under bidirectional deterministic routing;
//! 3. the only packets that crossed the cluster boundary are IPC-class
//!    packets (interaction traffic through the shared buffer), and
//! 4. the hardware speculative-access check never let a blocked access
//!    through (it may have *blocked* accesses — that is the defence working).

use ironhide_mem::RegionOwner;
use ironhide_sim::machine::Machine;
use ironhide_sim::process::{ProcessId, SecurityClass};

use crate::arch::Architecture;
use crate::speccheck::SpeculativeAccessCheck;

/// The result of an isolation audit.
#[derive(Debug, Clone, Default)]
pub struct IsolationSummary {
    /// Packets that crossed the secure/insecure cluster boundary.
    pub cross_cluster_packets: u64,
    /// IPC-class packets observed on the NoC (the only traffic allowed to
    /// cross the boundary).
    pub ipc_packets: u64,
    /// Number of accesses screened by the speculative-access check.
    pub spec_checks: u64,
    /// Number of accesses the check stalled and discarded.
    pub spec_blocked: u64,
    /// Whether the active cluster map passed the containment check (trivially
    /// true when no clustering is active).
    pub containment_verified: bool,
    /// Human-readable descriptions of any violated invariants.
    pub violations: Vec<String>,
}

impl IsolationSummary {
    /// Whether the run satisfied every strong-isolation invariant.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Audits machines for strong-isolation violations.
#[derive(Debug, Clone, Copy, Default)]
pub struct IsolationAuditor;

impl IsolationAuditor {
    /// Creates an auditor.
    pub fn new() -> Self {
        IsolationAuditor
    }

    /// Audits `machine` after a run under `arch`.
    pub fn audit(
        &self,
        machine: &Machine,
        arch: Architecture,
        spec: &SpeculativeAccessCheck,
    ) -> IsolationSummary {
        let stats = machine.stats();
        let mut summary = IsolationSummary {
            cross_cluster_packets: stats.noc.cross_cluster_packets,
            ipc_packets: stats.noc.ipc,
            spec_checks: spec.checks(),
            spec_blocked: spec.blocked(),
            containment_verified: true,
            violations: Vec::new(),
        };

        // Invariant 1: DRAM ownership respects security classes whenever the
        // architecture promises strong isolation.
        if arch.strong_isolation() {
            for pid in 0..machine.process_count() {
                let pid = ProcessId(pid);
                let class = machine.process_class(pid);
                for page in machine.process_physical_pages(pid) {
                    let paddr = page.0 * machine.page_bytes();
                    match machine.regions().owner_of(paddr) {
                        Ok(owner) => {
                            let expected = match class {
                                SecurityClass::Secure => RegionOwner::Secure,
                                SecurityClass::Insecure => RegionOwner::Insecure,
                            };
                            if owner != expected {
                                summary.violations.push(format!(
                                    "{} ({class}) owns a page in a {owner:?} DRAM region",
                                    machine.process_name(pid)
                                ));
                            }
                        }
                        Err(e) => summary.violations.push(e.to_string()),
                    }
                }
            }
        }

        // Invariants 2 and 3: cluster containment and boundary traffic.
        if arch.spatial_clusters() {
            match machine.cluster_map() {
                Some(map) => {
                    if let Err(v) = map.verify_containment() {
                        summary.containment_verified = false;
                        summary.violations.push(v.to_string());
                    }
                }
                None => {
                    summary.containment_verified = false;
                    summary
                        .violations
                        .push("IRONHIDE run finished with no active cluster map".to_string());
                }
            }
            if summary.cross_cluster_packets > summary.ipc_packets {
                summary.violations.push(format!(
                    "{} packets crossed the cluster boundary but only {} were IPC traffic",
                    summary.cross_cluster_packets, summary.ipc_packets
                ));
            }
        }

        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironhide_mesh::NodeId;
    use ironhide_sim::config::MachineConfig;

    #[test]
    fn clean_insecure_run_is_clean() {
        let mut m = Machine::new(MachineConfig::small_test());
        let pid = m.create_process("p", SecurityClass::Insecure);
        m.access(NodeId(0), pid, 0x1000, false);
        let summary = IsolationAuditor::new().audit(
            &m,
            Architecture::Insecure,
            &SpeculativeAccessCheck::new(),
        );
        assert!(summary.is_clean());
        assert!(summary.containment_verified);
    }

    #[test]
    fn mi6_run_checks_region_ownership() {
        let mut m = Machine::new(MachineConfig::small_test());
        let sec = m.create_process("enclave", SecurityClass::Secure);
        let ins = m.create_process("os", SecurityClass::Insecure);
        m.access(NodeId(0), sec, 0x0, true);
        m.access(NodeId(1), ins, 0x0, true);
        let summary =
            IsolationAuditor::new().audit(&m, Architecture::Mi6, &SpeculativeAccessCheck::new());
        assert!(summary.is_clean(), "violations: {:?}", summary.violations);
    }

    #[test]
    fn ironhide_without_cluster_map_is_flagged() {
        let m = Machine::new(MachineConfig::small_test());
        let summary = IsolationAuditor::new().audit(
            &m,
            Architecture::Ironhide,
            &SpeculativeAccessCheck::new(),
        );
        assert!(!summary.is_clean());
        assert!(!summary.containment_verified);
    }

    #[test]
    fn blocked_speculative_accesses_are_reported_not_violations() {
        let m = Machine::new(MachineConfig::small_test());
        let mut spec = SpeculativeAccessCheck::new();
        spec.check(m.regions(), SecurityClass::Insecure, 0x0);
        let summary = IsolationAuditor::new().audit(&m, Architecture::Mi6, &spec);
        assert_eq!(summary.spec_blocked, 1);
        assert!(summary.is_clean());
    }
}
