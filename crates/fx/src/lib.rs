//! # ironhide-fx
//!
//! A small vendored FxHash-style hasher shared by the substrate crates.
//!
//! The simulator's hot path performs hash-map lookups on every L1 miss (the
//! NoC link-load tracker and the page-to-L2-slice home map) and on every TLB
//! miss (the per-process page table). `std`'s default SipHash is keyed per
//! map instance from process-global randomness and costs tens of cycles per
//! small key; this crate vendors the rustc-hash ("FxHash") multiply-rotate
//! construction instead: a few cycles per `u64`, **deterministic across
//! processes** (no random state, so iteration order — and anything derived
//! from it — is reproducible), and more than strong enough for the trusted,
//! non-adversarial keys the simulator hashes (page numbers, link endpoints).
//!
//! The build environment has no registry access, so the ~20 lines are
//! vendored here rather than pulled from the `rustc-hash` crate.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The multiply-rotate word hasher used by rustc.
///
/// Not cryptographically strong and not DoS-resistant — only use it for keys
/// the program itself generates.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// `2^64 / phi`, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_keys_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn byte_stream_matches_word_writes_for_tail() {
        // The tail path zero-pads; 9 bytes hash as one full word plus a tail.
        let mut h = FxHasher::default();
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let nine = h.finish();
        let mut h2 = FxHasher::default();
        h2.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(nine, h2.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        m.insert(3, 9);
        assert_eq!(m.get(&3), Some(&9));
        let mut s: FxHashSet<(u32, u32)> = FxHashSet::default();
        assert!(s.insert((1, 2)));
        assert!(s.contains(&(1, 2)));
    }
}
