//! A functional set-associative cache with configurable replacement.
//!
//! Storage is a single contiguous `Vec<Way>` indexed by `set * ways + way`
//! (no per-set inner vectors), set/tag extraction uses shift/mask when the
//! geometry is a power of two, and victim selection reads the way metadata in
//! place — so a steady-state access performs **zero heap allocations**.

use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;

/// A line evicted by a fill or flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Physical address of the first byte of the evicted line.
    pub addr: u64,
    /// Whether the line was dirty (and therefore needs a write-back).
    pub dirty: bool,
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled, possibly evicting a victim.
    Miss {
        /// The victim line displaced by the fill, if the set was full.
        evicted: Option<Evicted>,
    },
}

impl AccessOutcome {
    /// Whether this outcome is a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Whether this outcome is a miss.
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// The evicted victim, if any.
    pub fn evicted(&self) -> Option<Evicted> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => *evicted,
        }
    }
}

/// Metadata of one way of a set: validity, dirtiness, the tag, and the
/// recency/fill stamps the replacement policies read. Exposed so
/// [`ReplacementPolicy::victim`] can select a victim directly from the set's
/// slice without the cache copying stamps into temporaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Way {
    pub(crate) valid: bool,
    pub(crate) dirty: bool,
    /// MESI Shared bit, maintained by the coherence controller of the level
    /// this cache models (the machine's directory layer for private L1s):
    /// `true` means other caches may hold the line, so a write hit must
    /// perform a directory upgrade before it may complete. Together with
    /// `valid` and `dirty` this encodes the full MESI state of the line:
    /// invalid (`!valid`), Shared (`shared`), Exclusive (`!shared && !dirty`)
    /// and Modified (`!shared && dirty`). Non-coherent uses of the cache
    /// (L2 slices, the TLB model) simply leave it `false`.
    pub(crate) shared: bool,
    /// Generation the way was filled in; a way is *live* only when its
    /// generation matches the cache's. Bumping the cache generation
    /// therefore invalidates every line in O(1) — the purge operation —
    /// without touching the way array. Packs into the padding after the
    /// flags, so `Way` stays 32 bytes.
    pub(crate) generation: u32,
    pub(crate) tag: u64,
    pub(crate) last_use: u64,
    pub(crate) filled_at: u64,
}

impl Way {
    /// Whether the way holds a valid line.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Whether the line is dirty.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The line's tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Monotonic stamp of the last access (LRU input).
    pub fn last_use(&self) -> u64 {
        self.last_use
    }

    /// Monotonic stamp of the fill (FIFO input).
    pub fn filled_at(&self) -> u64 {
        self.filled_at
    }

    /// Whether the line is in the MESI Shared state (see the field docs).
    pub fn is_shared(&self) -> bool {
        self.shared
    }

    /// A valid way with the given recency/fill stamps (for policy tests).
    #[cfg(test)]
    pub(crate) fn stamped(last_use: u64, filled_at: u64) -> Self {
        Way { valid: true, dirty: false, shared: false, generation: 0, tag: 0, last_use, filled_at }
    }
}

/// Allocates `n` default (all-invalid) ways from zeroed memory.
///
/// `vec![Way::default(); n]` writes every byte eagerly, faulting in the whole
/// allocation; for a paper-scale machine that is ~12 MB of `Way` arrays per
/// simulated machine, and sweeps build thousands of scratch machines (one per
/// cell plus one per re-allocation predictor probe). Requesting *zeroed*
/// memory instead lets the allocator hand back untouched copy-on-write zero
/// pages, so sets that are never filled are never faulted in.
fn zeroed_ways(n: usize) -> Vec<Way> {
    if n == 0 {
        return Vec::new();
    }
    let layout = std::alloc::Layout::array::<Way>(n).expect("way array layout fits in memory");
    // SAFETY: `Way` is a plain-old-data struct of bools and unsigned integers
    // whose all-zero byte pattern is exactly `Way::default()` (`false` is 0,
    // every counter starts at 0), so `n` zeroed `Way`s are fully initialised.
    // The pointer comes from the global allocator with the same layout
    // `Vec` expects for a `Vec<Way>` of capacity `n`, which makes
    // `Vec::from_raw_parts` sound; the `Vec` takes ownership and frees it
    // through the same allocator.
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout) as *mut Way;
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Vec::from_raw_parts(ptr, n, n)
    }
}

/// How set index and tag are carved out of an address. Power-of-two
/// geometries (the only ones [`CacheConfig::new`] admits) use shift/mask; the
/// div/mod fallback keeps directly-constructed odd geometries working.
#[derive(Debug, Clone, Copy)]
enum IndexScheme {
    /// `line = addr >> line_shift`, `index = line & set_mask`,
    /// `tag = line >> set_shift`.
    Pow2 { line_shift: u32, set_mask: u64, set_shift: u32 },
    /// General division/remainder form.
    Generic { line_bytes: u64, sets: u64 },
}

/// A functional set-associative cache.
///
/// The cache tracks tags, validity and dirtiness only — no data payloads —
/// which is all the timing model needs. All operations are O(associativity).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    policy: ReplacementPolicy,
    /// All ways of all sets, contiguous: way `w` of set `s` lives at
    /// `s * config.ways + w`.
    ways: Vec<Way>,
    scheme: IndexScheme,
    tick: u64,
    stats: CacheStats,
    /// Valid lines currently resident, maintained incrementally so purges and
    /// occupancy queries never walk the way array.
    valid_count: usize,
    /// Valid dirty lines currently resident, maintained incrementally.
    dirty_count: usize,
    /// Current fill generation (see [`Way::generation`]). Ways from older
    /// generations are dead whatever their `valid` flag says.
    generation: u32,
}

impl SetAssocCache {
    /// Creates an empty cache with LRU replacement.
    pub fn new(config: CacheConfig) -> Self {
        SetAssocCache::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with the given replacement policy.
    pub fn with_policy(config: CacheConfig, policy: ReplacementPolicy) -> Self {
        let sets = config.sets();
        let scheme = if config.line_bytes.is_power_of_two() && sets.is_power_of_two() {
            IndexScheme::Pow2 {
                line_shift: config.line_bytes.trailing_zeros(),
                set_mask: sets as u64 - 1,
                set_shift: sets.trailing_zeros(),
            }
        } else {
            IndexScheme::Generic { line_bytes: config.line_bytes as u64, sets: sets as u64 }
        };
        SetAssocCache {
            config,
            policy,
            ways: zeroed_ways(sets * config.ways),
            scheme,
            tick: 0,
            stats: CacheStats::new(),
            valid_count: 0,
            dirty_count: 0,
            generation: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    #[inline]
    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        match self.scheme {
            IndexScheme::Pow2 { line_shift, set_mask, set_shift } => {
                let line = addr >> line_shift;
                ((line & set_mask) as usize, line >> set_shift)
            }
            IndexScheme::Generic { line_bytes, sets } => {
                let line = addr / line_bytes;
                ((line % sets) as usize, line / sets)
            }
        }
    }

    #[inline]
    fn line_addr(&self, index: usize, tag: u64) -> u64 {
        match self.scheme {
            IndexScheme::Pow2 { line_shift, set_mask: _, set_shift } => {
                ((tag << set_shift) | index as u64) << line_shift
            }
            IndexScheme::Generic { line_bytes, sets } => (tag * sets + index as u64) * line_bytes,
        }
    }

    /// The ways of set `index` as a contiguous slice.
    #[inline]
    fn set(&self, index: usize) -> &[Way] {
        let base = index * self.config.ways;
        &self.ways[base..base + self.config.ways]
    }

    /// Whether `w` holds a line of the current generation.
    #[inline]
    fn live(&self, w: &Way) -> bool {
        w.valid && w.generation == self.generation
    }

    /// Looks up `addr` without modifying any state (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        self.find_way(addr).is_some()
    }

    /// Performs a read (`write == false`) or write (`write == true`) access to
    /// the line containing `addr`, filling it on a miss.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.access_coherent(addr, write).0
    }

    /// Like [`SetAssocCache::access`], but also reports the coherence
    /// pre-state the machine's directory layer needs: whether the access
    /// **hit** a line that was in the MESI Shared state. A write hit on a
    /// Shared line is precisely the case that must perform a directory
    /// write-upgrade (invalidate the other sharers) before the write is
    /// architecturally complete; all other hits and every miss return
    /// `false` (misses negotiate their fill state with the directory
    /// afterwards, via [`SetAssocCache::set_line_shared`]).
    pub fn access_coherent(&mut self, addr: u64, write: bool) -> (AccessOutcome, bool) {
        self.tick += 1;
        self.stats.accesses += 1;
        let (index, tag) = self.index_and_tag(addr);
        let (outcome, was_shared) = self.access_at(index, tag, write);
        match outcome {
            AccessOutcome::Hit => self.stats.hits += 1,
            AccessOutcome::Miss { evicted } => {
                self.stats.misses += 1;
                if let Some(ev) = evicted {
                    self.stats.evictions += 1;
                    if ev.dirty {
                        self.stats.writebacks += 1;
                    }
                }
            }
        }
        (outcome, was_shared)
    }

    /// The access algorithm behind [`SetAssocCache::access_coherent`]:
    /// lookup/fill at a precomputed `(index, tag)`, updating way metadata
    /// and the resident-line counters but **not** the access/hit/miss
    /// statistics (the caller accounts those). The second return is the hit
    /// line's pre-access Shared bit (`false` for misses).
    #[inline]
    fn access_at(&mut self, index: usize, tag: u64, write: bool) -> (AccessOutcome, bool) {
        let assoc = self.config.ways;
        let policy = self.policy;
        let tick = self.tick;
        let generation = self.generation;
        let base = index * assoc;
        let set = &mut self.ways[base..base + assoc];
        if let Some(way) =
            set.iter_mut().find(|w| w.valid && w.generation == generation && w.tag == tag)
        {
            let was_shared = way.shared;
            way.last_use = tick;
            if write && !way.dirty {
                way.dirty = true;
                self.dirty_count += 1;
            }
            return (AccessOutcome::Hit, was_shared);
        }
        // Fill: find a dead way, otherwise evict a victim chosen directly
        // from the way metadata (no temporary stamp vectors).
        let victim_idx = match set.iter().position(|w| !(w.valid && w.generation == generation)) {
            Some(i) => i,
            None => policy.victim(set, tick),
        };
        let victim = set[victim_idx];
        let evicted = if victim.valid && victim.generation == generation {
            if victim.dirty {
                self.dirty_count -= 1;
            }
            Some(Evicted { addr: self.line_addr(index, victim.tag), dirty: victim.dirty })
        } else {
            self.valid_count += 1;
            None
        };
        if write {
            self.dirty_count += 1;
        }
        // Fills start in the exclusive-side states (Modified for writes,
        // Exclusive for reads); the directory layer flips the line to Shared
        // afterwards when other caches hold it.
        self.ways[base + victim_idx] = Way {
            valid: true,
            dirty: write,
            shared: false,
            generation,
            tag,
            last_use: tick,
            filled_at: tick,
        };
        (AccessOutcome::Miss { evicted }, false)
    }

    /// Performs `count` accesses to the single line containing `addr` — the
    /// bulk form of a stride-0 (or sub-line-stride) run. The first access
    /// runs the full lookup/fill; the remaining `count - 1` are guaranteed
    /// hits on the same way, so they collapse into one recency/statistics
    /// update. Byte-identical to `count` scalar [`SetAssocCache::access`]
    /// calls to addresses within the line. The second return is the first
    /// access's pre-state Shared bit (see
    /// [`SetAssocCache::access_coherent`]); the collapsed extras can never
    /// need an upgrade because the first access already owns the line.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn access_line_run(&mut self, addr: u64, count: u64, write: bool) -> (AccessOutcome, bool) {
        assert!(count > 0, "a line run must contain at least one access");
        let first = self.access_coherent(addr, write);
        if count > 1 {
            let extra = count - 1;
            self.tick += extra;
            self.stats.accesses += extra;
            self.stats.hits += extra;
            // The line is resident after the first access; if `write`, the
            // first access already marked it dirty, so only the recency stamp
            // needs the final tick value.
            let (index, tag) = self.index_and_tag(addr);
            let base = index * self.config.ways;
            let tick = self.tick;
            let generation = self.generation;
            let way = self.ways[base..base + self.config.ways]
                .iter_mut()
                .find(|w| w.valid && w.generation == generation && w.tag == tag)
                .expect("line resident after the run's first access");
            way.last_use = tick;
        }
        first
    }

    /// The live way holding the line containing `addr`, if resident — the
    /// one lookup (`index_and_tag` → set slice → liveness + tag match) every
    /// line-granular operation shares, so the liveness predicate lives in
    /// exactly one place.
    #[inline]
    fn find_way_mut(&mut self, addr: u64) -> Option<&mut Way> {
        let (index, tag) = self.index_and_tag(addr);
        let generation = self.generation;
        let base = index * self.config.ways;
        self.ways[base..base + self.config.ways]
            .iter_mut()
            .find(|w| w.valid && w.generation == generation && w.tag == tag)
    }

    /// Read-only form of [`SetAssocCache::find_way_mut`].
    #[inline]
    fn find_way(&self, addr: u64) -> Option<&Way> {
        let (index, tag) = self.index_and_tag(addr);
        self.set(index).iter().find(|w| self.live(w) && w.tag == tag)
    }

    /// Invalidates the line containing `addr` if present, returning it.
    pub fn invalidate(&mut self, addr: u64) -> Option<Evicted> {
        let (index, tag) = self.index_and_tag(addr);
        let line_addr = self.line_addr(index, tag);
        let way = self.find_way_mut(addr)?;
        let dirty = way.dirty;
        way.valid = false;
        way.dirty = false;
        self.valid_count -= 1;
        if dirty {
            self.dirty_count -= 1;
        }
        self.stats.flushed_lines += 1;
        if dirty {
            self.stats.writebacks += 1;
        }
        Some(Evicted { addr: line_addr, dirty })
    }

    /// Invalidates every resident line of the `lines`-line run starting at
    /// `base_addr` (a page's worth of consecutive lines), returning the
    /// number of lines that were actually resident. Byte-identical in
    /// effects and statistics to `lines` scalar [`SetAssocCache::invalidate`]
    /// calls — stats are only touched for lines that were present — but
    /// walks the flat set×way array directly: the set index and tag are
    /// advanced incrementally, so only the sets the run maps to are visited,
    /// in one pass.
    pub fn invalidate_page_run(&mut self, base_addr: u64, lines: u64) -> u64 {
        let assoc = self.config.ways;
        let generation = self.generation;
        let mut flushed = 0u64;
        let mut writebacks = 0u64;
        match self.scheme {
            IndexScheme::Pow2 { line_shift, set_mask, set_shift } => {
                let base_line = base_addr >> line_shift;
                for i in 0..lines {
                    if self.valid_count == 0 {
                        break;
                    }
                    let line = base_line + i;
                    let index = (line & set_mask) as usize;
                    let tag = line >> set_shift;
                    let set = &mut self.ways[index * assoc..(index + 1) * assoc];
                    if let Some(way) = set
                        .iter_mut()
                        .find(|w| w.valid && w.generation == generation && w.tag == tag)
                    {
                        let dirty = way.dirty;
                        way.valid = false;
                        way.dirty = false;
                        self.valid_count -= 1;
                        flushed += 1;
                        if dirty {
                            self.dirty_count -= 1;
                            writebacks += 1;
                        }
                    }
                }
            }
            IndexScheme::Generic { line_bytes, .. } => {
                for i in 0..lines {
                    if self.invalidate(base_addr + i * line_bytes).is_some() {
                        flushed += 1;
                    }
                }
                self.stats.flushed_lines -= flushed;
                writebacks = 0; // `invalidate` already accounted them
            }
        }
        self.stats.flushed_lines += flushed;
        self.stats.writebacks += writebacks;
        flushed
    }

    /// Invalidates every resident line belonging to any of the pages whose
    /// first line numbers are listed (sorted ascending) in `base_lines`,
    /// where each page spans `lines_per_page` consecutive lines. One pass
    /// over the whole way array with a binary-search membership test per
    /// live way — O(ways · log pages) regardless of how many pages are being
    /// scrubbed, where per-page probing would cost O(pages · lines · assoc).
    /// Effects and statistics are byte-identical to invalidating each page's
    /// lines individually: only resident lines are touched. Returns the
    /// number of lines invalidated.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `base_lines` is sorted (the binary search's
    /// precondition) and that `lines_per_page` is non-zero.
    pub fn invalidate_page_set(&mut self, base_lines: &[u64], lines_per_page: u64) -> u64 {
        debug_assert!(lines_per_page > 0, "pages must span at least one line");
        debug_assert!(base_lines.windows(2).all(|w| w[0] <= w[1]), "base_lines must be sorted");
        if base_lines.is_empty() || self.valid_count == 0 {
            return 0;
        }
        let generation = self.generation;
        let assoc = self.config.ways;
        let sets = self.config.sets();
        let mut flushed = 0u64;
        let mut writebacks = 0u64;
        for index in 0..sets {
            for w in &mut self.ways[index * assoc..(index + 1) * assoc] {
                if !(w.valid && w.generation == generation) {
                    continue;
                }
                let line = match self.scheme {
                    IndexScheme::Pow2 { set_shift, .. } => (w.tag << set_shift) | index as u64,
                    IndexScheme::Generic { sets, .. } => w.tag * sets + index as u64,
                };
                let page_base = line - line % lines_per_page;
                if base_lines.binary_search(&page_base).is_err() {
                    continue;
                }
                let dirty = w.dirty;
                w.valid = false;
                w.dirty = false;
                self.valid_count -= 1;
                flushed += 1;
                if dirty {
                    self.dirty_count -= 1;
                    writebacks += 1;
                }
            }
        }
        self.stats.flushed_lines += flushed;
        self.stats.writebacks += writebacks;
        flushed
    }

    // ----- coherence hooks (driven by the machine's directory layer) --------

    /// Sets the MESI Shared bit of the resident line containing `addr`,
    /// returning whether the line was present. Called by the directory layer
    /// after a fill, once the sharer census is known; it never changes
    /// dirtiness, recency or any statistic.
    pub fn set_line_shared(&mut self, addr: u64, shared: bool) -> bool {
        match self.find_way_mut(addr) {
            Some(way) => {
                way.shared = shared;
                true
            }
            None => false,
        }
    }

    /// Downgrades the resident line containing `addr` from an owning state
    /// (Modified/Exclusive) to Shared on behalf of a remote reader: the line
    /// stays resident, its Shared bit is set and its dirty data is
    /// considered written back (dirty cleared). Returns `Some(was_dirty)`
    /// when the line was present — the caller charges a write-back packet
    /// exactly when `was_dirty` — or `None` when the copy is already gone
    /// (a silent eviction the directory has not observed; the downgrade
    /// message is then a no-op at this cache).
    pub fn downgrade_line(&mut self, addr: u64) -> Option<bool> {
        let way = self.find_way_mut(addr)?;
        let was_dirty = way.dirty;
        way.dirty = false;
        way.shared = true;
        if was_dirty {
            self.dirty_count -= 1;
            self.stats.writebacks += 1;
        }
        Some(was_dirty)
    }

    /// The MESI-relevant flags `(dirty, shared)` of the resident line
    /// containing `addr`, without disturbing any state (`None` when the line
    /// is not resident). Observability for invariant checks and tests.
    pub fn line_flags(&self, addr: u64) -> Option<(bool, bool)> {
        self.find_way(addr).map(|w| (w.dirty, w.shared))
    }

    /// Visits every resident line as `(line_addr, dirty, shared)`, in array
    /// order, without disturbing any state. Observability for coherence
    /// invariant checks and tests.
    pub fn for_each_resident(&self, mut f: impl FnMut(u64, bool, bool)) {
        for index in 0..self.config.sets() {
            for w in self.set(index) {
                if self.live(w) {
                    f(self.line_addr(index, w.tag), w.dirty, w.shared);
                }
            }
        }
    }

    /// Flushes and invalidates the whole cache (the MI6 purge operation),
    /// returning the number of dirty lines that had to be written back.
    ///
    /// O(1): occupancy is tracked incrementally and invalidation is one
    /// generation bump — the way array is not touched at all (MI6 purges at
    /// every enclave boundary; walking tens of thousands of ways per purge
    /// dominated its simulation cost).
    pub fn purge(&mut self) -> u64 {
        let valid = self.valid_count as u64;
        let dirty = self.dirty_count as u64;
        self.bump_generation();
        self.valid_count = 0;
        self.dirty_count = 0;
        self.stats.purges += 1;
        self.stats.flushed_lines += valid;
        self.stats.writebacks += dirty;
        dirty
    }

    /// Starts a new fill generation, falling back to a real clear on the
    /// (practically unreachable) u32 wrap so stale generations can never
    /// alias.
    fn bump_generation(&mut self) {
        if self.generation == u32::MAX {
            self.ways.fill(Way::default());
            self.generation = 0;
        } else {
            self.generation += 1;
        }
    }

    /// Resets the cache to its just-constructed state — empty, statistics
    /// zeroed, recency clock at zero — in O(1), so scratch machines can be
    /// recycled instead of re-allocating their ~160 KB way arrays. Behaves
    /// identically to a freshly built cache in every observable way
    /// (verified by the golden-stats and sweep byte-identity suites).
    pub fn reset_pristine(&mut self) {
        self.bump_generation();
        self.valid_count = 0;
        self.dirty_count = 0;
        self.tick = 0;
        self.stats.reset();
    }

    /// Number of valid lines currently resident (O(1): maintained
    /// incrementally by the access/invalidate/purge paths).
    pub fn resident_lines(&self) -> usize {
        self.valid_count
    }

    /// Number of valid dirty lines currently resident (O(1)).
    pub fn dirty_lines(&self) -> usize {
        self.dirty_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64-byte lines = 512 bytes.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(c.access(0x0, false).is_miss());
        assert!(c.access(0x0, false).is_hit());
        assert!(c.access(0x3f, false).is_hit(), "same line must hit");
        assert!(c.access(0x40, false).is_miss(), "next line must miss");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets * line = 256 bytes).
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 so 0x100 becomes LRU
        let out = c.access(0x200, false);
        let ev = out.evicted().expect("full set must evict");
        assert_eq!(ev.addr, 0x100);
        assert!(!ev.dirty);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x000, true);
        c.access(0x100, false);
        let out = c.access(0x200, false);
        let ev = out.evicted().unwrap();
        assert_eq!(ev.addr, 0x000);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn purge_empties_and_counts() {
        let mut c = small();
        for i in 0..8u64 {
            c.access(i * 64, i % 2 == 0);
        }
        assert_eq!(c.resident_lines(), 8);
        assert_eq!(c.dirty_lines(), 4);
        let dirty = c.purge();
        assert_eq!(dirty, 4);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().purges, 1);
        assert_eq!(c.stats().flushed_lines, 8);
        // Everything misses again after the purge: this is the MI6 cold-start.
        assert!(c.access(0x0, false).is_miss());
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = small();
        c.access(0x80, true);
        let ev = c.invalidate(0x80).unwrap();
        assert!(ev.dirty);
        assert!(!c.probe(0x80));
        assert!(c.invalidate(0x80).is_none());
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = small();
        c.access(0x40, false);
        assert_eq!(c.dirty_lines(), 0);
        c.access(0x40, true);
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x100, false);
        let before = *c.stats();
        // Probing 0x000 must not refresh its recency, count as an access, or
        // change any other statistic.
        assert!(c.probe(0x000));
        assert_eq!(c.stats().accesses, before.accesses);
        assert_eq!(c.stats().hits, before.hits);
        assert_eq!(c.stats().misses, before.misses);
        c.access(0x200, false);
        // LRU victim must still be 0x000: the probe did not touch recency.
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small(); // 8 lines capacity
        for round in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64, false);
            }
            let _ = round;
        }
        // With a cyclic working set of twice the capacity under LRU, every
        // access misses after the first round too.
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn fifo_policy_differs_from_lru() {
        let mut c =
            SetAssocCache::with_policy(CacheConfig::new(512, 2, 64), ReplacementPolicy::Fifo);
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // does not matter for FIFO
        let ev = c.access(0x200, false).evicted().unwrap();
        assert_eq!(ev.addr, 0x000, "FIFO evicts the first-filled way");
    }

    /// Walks the way array to recount occupancy (honouring the liveness
    /// generation), cross-checking the O(1) incremental counters.
    fn recount(c: &SetAssocCache) -> (usize, usize) {
        let valid = c.ways.iter().filter(|w| c.live(w)).count();
        let dirty = c.ways.iter().filter(|w| c.live(w) && w.dirty).count();
        (valid, dirty)
    }

    #[test]
    fn occupancy_counters_track_the_way_array() {
        let mut c = small();
        for i in 0..12u64 {
            c.access(i * 64, i % 2 == 0);
            assert_eq!((c.resident_lines(), c.dirty_lines()), recount(&c), "after access {i}");
        }
        c.access(0x2c0, true); // redirty a resident line
        c.invalidate(0x2c0);
        assert_eq!((c.resident_lines(), c.dirty_lines()), recount(&c));
        c.purge();
        assert_eq!((c.resident_lines(), c.dirty_lines()), (0, 0));
        assert_eq!(recount(&c), (0, 0));
    }

    #[test]
    fn line_run_collapses_same_line_touches() {
        let mut bulk = small();
        let mut scalar = small();
        bulk.access(0x100, false);
        scalar.access(0x100, false);
        let (out, was_shared) = bulk.access_line_run(0x40, 5, true);
        assert!(out.is_miss());
        assert!(!was_shared, "a miss cannot report a Shared-state hit");
        let mut last = scalar.access(0x40, true);
        for i in 1..5u64 {
            last = scalar.access(0x40 + i * 8, true);
        }
        assert!(last.is_hit());
        assert_eq!(bulk.stats().accesses, scalar.stats().accesses);
        assert_eq!(bulk.stats().hits, scalar.stats().hits);
        assert_eq!(bulk.stats().misses, scalar.stats().misses);
        assert_eq!(bulk.dirty_lines(), scalar.dirty_lines());
        // Recency end-state identical: fill set 1 and check the same victim.
        bulk.access(0x140, false);
        scalar.access(0x140, false);
        let ev_b = bulk.access(0x240, false).evicted().unwrap();
        let ev_s = scalar.access(0x240, false).evicted().unwrap();
        assert_eq!(ev_b, ev_s);
    }

    #[test]
    #[should_panic(expected = "at least one access")]
    fn empty_line_run_rejected() {
        small().access_line_run(0, 0, false);
    }

    #[test]
    fn generic_fallback_matches_pow2_indexing() {
        // Construct a non-power-of-two set count directly (bypassing
        // `CacheConfig::new`'s assertion) to exercise the div/mod fallback.
        let odd = CacheConfig { size_bytes: 3 * 2 * 64, ways: 2, line_bytes: 64 };
        assert_eq!(odd.sets(), 3);
        let mut c = SetAssocCache::new(odd);
        assert!(c.access(0x000, false).is_miss());
        assert!(c.access(0x000, false).is_hit());
        // Lines 0 and 3 share set 0 under mod-3 indexing.
        c.access(3 * 64, true);
        let ev = c.access(6 * 64, false).evicted().expect("2-way set 0 overflows");
        assert_eq!(ev.addr, 0x000);
        assert!(c.probe(3 * 64));
    }
}
