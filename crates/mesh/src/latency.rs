//! Analytical NoC latency and contention model.
//!
//! The reproduction does not simulate individual flits. Instead each packet
//! traversal is charged `router_cycles + link_cycles` per hop plus a
//! serialisation term for multi-flit packets, and a contention term derived
//! from the running utilisation of the links the packet crosses. This keeps
//! the per-access cost of the simulator low while preserving the first-order
//! effects the paper relies on: longer routes cost more, and concentrating a
//! cluster's traffic on fewer tiles raises its queueing delay.
//!
//! The model consumes lazily-stepped [`RouteIter`]s, so charging a packet
//! allocates nothing; the link-load tracker hashes link keys with the
//! deterministic [`fx`](crate::fx) hasher instead of std's keyed SipHash.

use crate::fx::FxHashMap;
use crate::routing::RouteIter;
use crate::topology::NodeId;

/// Latency parameters of the mesh network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocLatencyConfig {
    /// Cycles spent in each router (arbitration + crossbar).
    pub router_cycles: u64,
    /// Cycles spent on each link.
    pub link_cycles: u64,
    /// Additional serialisation cycles per flit beyond the first.
    pub serialization_cycles: u64,
    /// Maximum extra cycles per hop injected by contention at full load.
    pub max_contention_cycles: u64,
    /// Exponential-moving-average weight used by the link-load tracker
    /// (between 0 and 1; higher forgets faster).
    pub load_ema: f64,
}

impl Default for NocLatencyConfig {
    /// Parameters approximating a Tile-Gx-class single-cycle-per-hop mesh.
    fn default() -> Self {
        NocLatencyConfig {
            router_cycles: 1,
            link_cycles: 1,
            serialization_cycles: 1,
            max_contention_cycles: 4,
            load_ema: 0.05,
        }
    }
}

/// Tracks per-link utilisation with an exponential moving average and turns it
/// into a contention penalty.
#[derive(Debug, Clone, Default)]
pub struct LinkLoad {
    load: FxHashMap<(NodeId, NodeId), f64>,
}

impl LinkLoad {
    /// Creates an empty load tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `flits` flits crossed the link `(from, to)` and decays all
    /// other links slightly.
    pub fn record(&mut self, from: NodeId, to: NodeId, flits: usize, ema: f64) {
        self.observe_and_record(from, to, flits, ema);
    }

    /// Returns the utilisation of `(from, to)` *before* this packet, then
    /// records the packet's `flits` — one hash lookup instead of the separate
    /// `utilization` + `record` pair on the hot path.
    pub fn observe_and_record(&mut self, from: NodeId, to: NodeId, flits: usize, ema: f64) -> f64 {
        let entry = self.load.entry((from, to)).or_insert(0.0);
        let before = *entry;
        *entry = (1.0 - ema) * before + ema * flits as f64;
        before
    }

    /// Current utilisation estimate of a link, in flits per recorded packet
    /// (0 when the link has never been used).
    pub fn utilization(&self, from: NodeId, to: NodeId) -> f64 {
        self.load.get(&(from, to)).copied().unwrap_or(0.0)
    }

    /// The most loaded link currently tracked.
    pub fn hottest(&self) -> Option<((NodeId, NodeId), f64)> {
        self.load
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(k, v)| (*k, *v))
    }

    /// Clears all recorded load (used when the network is purged or
    /// reconfigured).
    pub fn reset(&mut self) {
        self.load.clear();
    }
}

/// Computes packet latencies over routes and maintains the link-load state.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    config: NocLatencyConfig,
    load: LinkLoad,
    /// Extra per-traversal cycles charged on degraded links (directional).
    /// Empty on a healthy network, so the no-fault hot path pays nothing.
    link_faults: FxHashMap<(NodeId, NodeId), u64>,
}

impl LatencyModel {
    /// Creates a latency model with the given parameters.
    pub fn new(config: NocLatencyConfig) -> Self {
        LatencyModel { config, load: LinkLoad::new(), link_faults: FxHashMap::default() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NocLatencyConfig {
        &self.config
    }

    /// Read-only access to the link-load tracker.
    pub fn load(&self) -> &LinkLoad {
        &self.load
    }

    /// Marks the directional link `(from, to)` as degraded: every packet
    /// crossing it is charged `penalty_cycles` on top of the healthy-link
    /// cost. A penalty of zero removes the fault. Fault injection sets both
    /// directions when a physical link (rather than one channel of it) fails.
    pub fn set_link_fault(&mut self, from: NodeId, to: NodeId, penalty_cycles: u64) {
        if penalty_cycles == 0 {
            self.link_faults.remove(&(from, to));
        } else {
            self.link_faults.insert((from, to), penalty_cycles);
        }
    }

    /// The degradation penalty currently charged on `(from, to)` (0 if the
    /// link is healthy).
    pub fn link_fault(&self, from: NodeId, to: NodeId) -> u64 {
        self.link_faults.get(&(from, to)).copied().unwrap_or(0)
    }

    /// Number of directional links currently marked degraded.
    pub fn faulted_links(&self) -> usize {
        self.link_faults.len()
    }

    /// Clears every link fault, restoring a healthy network. Unlike
    /// [`LatencyModel::reset_load`], this is *not* part of a network purge —
    /// purging queues does not repair hardware — so only machine-level resets
    /// call it.
    pub fn clear_link_faults(&mut self) {
        self.link_faults.clear();
    }

    /// The contention-free cost of a route: per-hop router + link cycles plus
    /// the serialisation term for multi-flit packets. Shared by
    /// [`LatencyModel::traverse`] and [`LatencyModel::estimate`]; the two only
    /// differ in load bookkeeping.
    fn base_latency(&self, hops: usize, flits: usize) -> u64 {
        let per_hop = self.config.router_cycles + self.config.link_cycles;
        let serialization = self.config.serialization_cycles * flits.saturating_sub(1) as u64;
        per_hop * hops as u64 + serialization
    }

    /// Latency, in cycles, of sending a packet of `flits` flits along `route`,
    /// updating link load along the way.
    pub fn traverse(&mut self, route: RouteIter, flits: usize) -> u64 {
        let hops = route.hops();
        if hops == 0 {
            return 0;
        }
        let mut contention = 0.0;
        let mut fault_penalty = 0u64;
        let faulted = !self.link_faults.is_empty();
        for (from, to) in route.links() {
            let util = self.load.observe_and_record(from, to, flits, self.config.load_ema);
            // Saturating logistic-ish penalty: util is in flits/packet, a link
            // carrying full data packets every cycle approaches the max.
            let norm = (util / 5.0).min(1.0);
            contention += norm * self.config.max_contention_cycles as f64;
            if faulted {
                fault_penalty += self.link_faults.get(&(from, to)).copied().unwrap_or(0);
            }
        }
        self.base_latency(hops, flits) + contention.round() as u64 + fault_penalty
    }

    /// Latency of a packet of `flits` flits over a route whose links were
    /// materialised up front, updating link load along the way.
    ///
    /// Byte-identical to [`LatencyModel::traverse`] over the route that
    /// produced `links`: the per-link load observations happen in the same
    /// order with the same floating-point operations. Used by the batched
    /// access engine, which resolves a route once per run of same-route
    /// packets and then charges each packet against the cached link list —
    /// skipping the per-packet route stepping and containment re-selection.
    pub fn traverse_links(&mut self, links: &[(NodeId, NodeId)], flits: usize) -> u64 {
        if links.is_empty() {
            return 0;
        }
        let mut contention = 0.0;
        let mut fault_penalty = 0u64;
        let faulted = !self.link_faults.is_empty();
        for (from, to) in links {
            let util = self.load.observe_and_record(*from, *to, flits, self.config.load_ema);
            let norm = (util / 5.0).min(1.0);
            contention += norm * self.config.max_contention_cycles as f64;
            if faulted {
                fault_penalty += self.link_faults.get(&(*from, *to)).copied().unwrap_or(0);
            }
        }
        self.base_latency(links.len(), flits) + contention.round() as u64 + fault_penalty
    }

    /// Latency of a route with no load bookkeeping (used for what-if queries
    /// by the re-allocation predictor).
    pub fn estimate(&self, route: RouteIter, flits: usize) -> u64 {
        let hops = route.hops();
        if hops == 0 {
            return 0;
        }
        self.base_latency(hops, flits)
    }

    /// Clears the contention state (network purge / reconfiguration).
    pub fn reset_load(&mut self) {
        self.load.reset();
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel::new(NocLatencyConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RoutingAlgorithm;
    use crate::topology::MeshTopology;

    #[test]
    fn zero_hop_route_is_free() {
        let m = MeshTopology::new(4, 4);
        let r = m.route_iter(NodeId(3), NodeId(3), RoutingAlgorithm::XY);
        let mut model = LatencyModel::default();
        assert_eq!(model.traverse(r, 5), 0);
        assert_eq!(model.estimate(r, 5), 0);
    }

    #[test]
    fn latency_scales_with_distance() {
        let m = MeshTopology::new(8, 8);
        let model = LatencyModel::default();
        let near = m.route_iter(NodeId(0), NodeId(1), RoutingAlgorithm::XY);
        let far = m.route_iter(NodeId(0), NodeId(63), RoutingAlgorithm::XY);
        assert!(model.estimate(far, 1) > model.estimate(near, 1));
        assert_eq!(model.estimate(near, 1), 2);
        assert_eq!(model.estimate(far, 1), 28);
    }

    #[test]
    fn serialization_adds_for_data_packets() {
        let m = MeshTopology::new(8, 8);
        let model = LatencyModel::default();
        let r = m.route_iter(NodeId(0), NodeId(7), RoutingAlgorithm::XY);
        assert_eq!(model.estimate(r, 5) - model.estimate(r, 1), 4);
    }

    #[test]
    fn estimate_matches_unloaded_traverse() {
        let m = MeshTopology::new(8, 8);
        let mut model = LatencyModel::default();
        let r = m.route_iter(NodeId(2), NodeId(45), RoutingAlgorithm::YX);
        // On a cold network the two paths share the same base cost.
        assert_eq!(model.estimate(r, 5), model.traverse(r, 5));
    }

    #[test]
    fn traverse_links_matches_traverse() {
        let m = MeshTopology::new(8, 8);
        let mut a = LatencyModel::default();
        let mut b = LatencyModel::default();
        let r = m.route_iter(NodeId(2), NodeId(45), RoutingAlgorithm::XY);
        let links: Vec<(NodeId, NodeId)> = r.links().collect();
        // Repeated traffic builds identical load state through both entry
        // points, packet by packet.
        for i in 0..200 {
            let flits = if i % 3 == 0 { 5 } else { 1 };
            assert_eq!(a.traverse(r, flits), b.traverse_links(&links, flits), "packet {i}");
        }
        assert_eq!(a.traverse_links(&[], 5), 0);
    }

    #[test]
    fn contention_builds_up_under_load() {
        let m = MeshTopology::new(8, 8);
        let mut model = LatencyModel::default();
        let r = m.route_iter(NodeId(0), NodeId(7), RoutingAlgorithm::XY);
        let cold = model.traverse(r, 5);
        for _ in 0..500 {
            model.traverse(r, 5);
        }
        let hot = model.traverse(r, 5);
        assert!(hot > cold, "repeated traffic on a link must raise latency ({hot} <= {cold})");
        model.reset_load();
        assert_eq!(model.traverse(r, 5), cold);
    }

    #[test]
    fn link_faults_charge_identically_through_both_entry_points() {
        let m = MeshTopology::new(8, 8);
        let mut a = LatencyModel::default();
        let mut b = LatencyModel::default();
        let r = m.route_iter(NodeId(2), NodeId(45), RoutingAlgorithm::XY);
        let links: Vec<(NodeId, NodeId)> = r.links().collect();
        let (from, to) = links[1];
        a.set_link_fault(from, to, 37);
        b.set_link_fault(from, to, 37);
        for i in 0..100 {
            let flits = if i % 3 == 0 { 5 } else { 1 };
            assert_eq!(a.traverse(r, flits), b.traverse_links(&links, flits), "packet {i}");
        }
        // Off-route faults cost nothing; clearing restores the healthy cost.
        let mut healthy = LatencyModel::default();
        let mut elsewhere = LatencyModel::default();
        elsewhere.set_link_fault(NodeId(60), NodeId(61), 1_000);
        assert_eq!(elsewhere.traverse(r, 5), healthy.traverse(r, 5));
        a.clear_link_faults();
        assert_eq!(a.faulted_links(), 0);
    }

    #[test]
    fn link_fault_raises_traversal_cost_by_its_penalty() {
        let m = MeshTopology::new(8, 8);
        let mut model = LatencyModel::default();
        let r = m.route_iter(NodeId(0), NodeId(7), RoutingAlgorithm::XY);
        let mut faulted = LatencyModel::default();
        faulted.set_link_fault(NodeId(0), NodeId(1), 50);
        faulted.set_link_fault(NodeId(3), NodeId(4), 9);
        assert_eq!(faulted.traverse(r, 5), model.traverse(r, 5) + 59);
        assert_eq!(faulted.link_fault(NodeId(0), NodeId(1)), 50);
        // A zero penalty removes the fault entry entirely.
        faulted.set_link_fault(NodeId(0), NodeId(1), 0);
        assert_eq!(faulted.faulted_links(), 1);
        // reset_load (a network purge) must NOT repair the hardware.
        faulted.reset_load();
        assert_eq!(faulted.link_fault(NodeId(3), NodeId(4)), 9);
    }

    #[test]
    fn hottest_link_reported() {
        let m = MeshTopology::new(4, 4);
        let mut model = LatencyModel::default();
        let r = m.route_iter(NodeId(0), NodeId(3), RoutingAlgorithm::XY);
        for _ in 0..10 {
            model.traverse(r, 5);
        }
        let ((from, to), util) = model.load().hottest().unwrap();
        // All links of the 0 -> 3 route carry the same load, so any of them
        // may be reported; it must at least lie on the route.
        assert!(from.0 < 3 && to.0 <= 3 && to.0 == from.0 + 1);
        assert!(util > 0.0);
    }
}
