//! Building your own experiment: a custom machine, a custom interactive
//! application, and direct use of the security machinery (attestation,
//! cluster formation, the speculative-access check and the isolation
//! auditor).
//!
//! ```bash
//! cargo run --release --example custom_architecture
//! ```

use ironhide::ironhide_core::cluster::ClusterManager;
use ironhide::ironhide_core::kernel::{AppDomain, SecureKernel};
use ironhide::ironhide_core::speccheck::SpeculativeAccessCheck;
use ironhide::ironhide_sim::machine::Machine;
use ironhide::prelude::*;

/// A custom interactive application: an insecure telemetry collector feeding a
/// secure anomaly detector that re-scans a fixed model table every event.
#[derive(Debug)]
struct AnomalyDetector {
    insecure: ProcessProfile,
    secure: ProcessProfile,
}

impl AnomalyDetector {
    fn new() -> Self {
        AnomalyDetector {
            insecure: ProcessProfile::new("telemetry", SecurityClass::Insecure, 0.85, 200, 32),
            secure: ProcessProfile::new("detector", SecurityClass::Secure, 0.75, 900, 16),
        }
    }
}

impl InteractiveApp for AnomalyDetector {
    fn name(&self) -> &str {
        "<DETECTOR, TELEMETRY>"
    }
    fn insecure_profile(&self) -> &ProcessProfile {
        &self.insecure
    }
    fn secure_profile(&self) -> &ProcessProfile {
        &self.secure
    }
    fn interactions(&self) -> usize {
        12
    }
    fn interactivity_per_second(&self) -> f64 {
        1_000.0
    }
    fn interaction(&mut self, idx: usize) -> Interaction {
        let samples =
            RefStream::from_refs((0..96).map(|i| MemRef::write((idx as u64 * 96 + i) * 64)));
        let model_scan =
            RefStream::from_refs((0..192).map(|i| MemRef::read(0x200_0000 + (i % 96) * 64)));
        Interaction {
            insecure: WorkUnit::new(30_000, samples),
            secure: WorkUnit::new(55_000, model_scan),
            ipc_bytes: 96 * 64,
        }
    }
    fn reset(&mut self) {}
}

fn main() {
    // A smaller machine than the paper's: 16 tiles, 2 memory controllers.
    let mut config = MachineConfig::paper_default();
    config.mesh_width = 4;
    config.mesh_height = 4;
    config.controllers = 2;

    // 1. Run the custom app end-to-end under MI6 and IRONHIDE.
    let runner = ExperimentRunner::new(config.clone());
    let mut app = AnomalyDetector::new();
    let mi6 = runner.run(Architecture::Mi6, &mut app).expect("MI6 run");
    let ironhide = runner.run(Architecture::Ironhide, &mut app).expect("IRONHIDE run");
    println!("custom app on a 16-core machine:");
    println!("  MI6      {:>8.3} ms", mi6.total_time_ms());
    println!(
        "  IRONHIDE {:>8.3} ms ({} secure cores, {:.2}x faster)\n",
        ironhide.total_time_ms(),
        ironhide.secure_cores,
        ironhide.speedup_over(&mi6)
    );

    // 2. Drive the security machinery directly.
    let mut machine = Machine::new(config);
    let insecure = machine.create_process("telemetry", SecurityClass::Insecure);
    let secure = machine.create_process("detector", SecurityClass::Secure);

    // Attestation through the secure kernel.
    let mut kernel = SecureKernel::new();
    let image = b"detector enclave image v1";
    let signature = SecureKernel::sign(image, 0xFEED);
    kernel.register(secure, image, signature, 0xFEED, AppDomain(9)).expect("register");
    kernel.admit(secure, image).expect("admit");
    println!("attested detector, measurement {}", kernel.measurement_of(secure).unwrap());

    // Cluster formation with dedicated slices and controllers.
    let (manager, _) = ClusterManager::form(&mut machine, secure, insecure, 6).expect("clusters");
    println!(
        "secure cluster: {} cores, controllers {:?}; insecure cluster: {} cores",
        manager.config().secure_cores,
        manager.config().secure_controllers,
        manager.config().insecure_cores
    );

    // The hardware range check stalls insecure accesses to secure regions.
    let mut check = SpeculativeAccessCheck::new();
    let secure_region_addr = 0x0; // the low region of controller 0 is secure
    let outcome = check.check(machine.regions(), SecurityClass::Insecure, secure_region_addr);
    println!(
        "speculative insecure access to secure DRAM: {outcome:?} (blocked {})",
        check.blocked()
    );
}
