//! # ironhide-workloads
//!
//! Models of the interactive applications the paper evaluates (Section IV-B),
//! built from real Rust implementations of the underlying kernels.
//!
//! Each application pairs an insecure producer process with a secure consumer
//! process:
//!
//! | Application | Insecure process | Secure process |
//! |---|---|---|
//! | `<SSSP, GRAPH>` | temporal road-network update generator | single-source shortest paths |
//! | `<PR, GRAPH>` | temporal road-network update generator | PageRank |
//! | `<TC, GRAPH>` | temporal road-network update generator | triangle counting |
//! | `<ABC, VISION>` | RAW-image vision pipeline | artificial-bee-colony mission planner |
//! | `<ALEXNET, VISION>` | RAW-image vision pipeline | AlexNet-class CNN inference |
//! | `<SQZ-NET, VISION>` | RAW-image vision pipeline | SqueezeNet-class CNN inference |
//! | `<AES, QUERY>` | YCSB-style query generator | AES-256 query encryption |
//! | `<MEMCACHED, OS>` | untrusted OS service process | memcached-class key-value store |
//! | `<LIGHTTPD, OS>` | untrusted OS service process | lighttpd-class static web server |
//!
//! The kernels (delta-stepping SSSP, PageRank, triangle counting, the image
//! pipeline, the bee-colony optimiser, the CNN forward passes, AES-256, the
//! hash-table store and the static file server) are genuinely executed on
//! synthetic inputs; an [`recorder::AccessRecorder`] turns their data-structure
//! touches into the bounded per-interaction address traces that drive the
//! timing simulator. The paper's proprietary inputs (the California road
//! network, ImageNet images, production memcached/lighttpd traffic) are
//! replaced by synthetic generators sized to preserve the qualitative
//! working-set and interactivity behaviour; see `DESIGN.md` for the
//! substitution table.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod crypto;
pub mod graph;
pub mod recorder;
pub mod services;
pub mod vision;

pub use app::{sweep_grid, tenant_profiles, AppId, ScaleFactor};
pub use recorder::{AccessRecorder, Region};

// Re-export the trait and supporting types so downstream users can name them
// through one crate.
pub use ironhide_core::app::{Interaction, InteractiveApp, MemRef, ProcessProfile, WorkUnit};
