//! Determinism, conservation and recovery properties of the fault-injection
//! campaign, plus the cross-process pin that ties the facade's view of the
//! fault grid to the `faults` bench binary's.

use ironhide::prelude::*;
use proptest::prelude::*;

/// The `faults` binary's master seed; the cross-process pin below only holds
/// against the grid that binary actually sweeps.
const BENCH_MASTER_SEED: u64 = 11;

/// The smoke campaign checksum the `faults --smoke` binary reports (and CI
/// pins). Recomputing it here, in a different process from a different
/// crate, proves the fault matrix is a pure function of (seed, grid) — not
/// of process layout, ASLR, linkage order or thread scheduling.
const BENCH_SMOKE_CHECKSUM: u64 = 12360661825985589235;

/// The `faults` binary's smoke campaign, replicated field for field.
fn bench_smoke_grid() -> FaultGrid {
    let storm = StormConfig {
        tenants: 40,
        mean_interarrival_cycles: 30_000,
        mean_service_scale: 1,
        host_reserve_cores: 8,
        profiles: tenant_profiles(&AppId::ALL),
    };
    let mut grid = FaultGrid::new(storm, AdmissionPolicy::Queue);
    for kind in FaultKind::ALL {
        grid = grid.with_kind(kind);
    }
    for rate in [0u32, 200] {
        grid = grid.with_rate(rate);
    }
    for arch in FaultArch::ALL {
        grid = grid.with_arch(arch);
    }
    grid
}

fn run(seed: u64, threads: usize) -> FaultMatrix {
    SweepRunner::new(MachineConfig::paper_default())
        .with_seed(seed)
        .with_threads(threads)
        .run_faults(&bench_smoke_grid())
        .expect("fault sweep runs")
}

/// The serialised campaign must be byte-identical at 1, 2 and 8 worker
/// threads — the same contract the performance, attack and tenancy sweeps
/// carry, now under injected failure.
#[test]
fn fault_matrix_is_byte_identical_across_thread_counts() {
    let baseline = run(BENCH_MASTER_SEED, 1).to_json();
    for threads in [2usize, 8] {
        let json = run(BENCH_MASTER_SEED, threads).to_json();
        assert_eq!(baseline, json, "thread count {threads} changed the fault matrix");
    }
}

/// Recomputes the `faults --smoke` campaign checksum from this test process.
/// If this moves, either the fault/storm semantics changed (update the bench
/// pin too, with a changelog entry) or the matrix silently depends on
/// ambient process state (a determinism bug).
#[test]
fn fault_checksum_matches_the_bench_binary_pin() {
    let matrix = run(BENCH_MASTER_SEED, 2);
    assert_eq!(
        matrix.checksum(),
        BENCH_SMOKE_CHECKSUM,
        "fault smoke campaign checksum moved — bench/CI pins must move with it"
    );
}

/// Every cell of the pinned campaign conserves tenants and, when audited,
/// discharges its recovery obligation completely.
#[test]
fn pinned_campaign_conserves_and_recovers() {
    let matrix = run(BENCH_MASTER_SEED, 4);
    for cell in &matrix.cells {
        let r = &cell.report;
        assert!(r.conserves_tenants(), "cell [{}] lost tenants", cell.key);
        if cell.key.arch.audited() {
            assert_eq!(
                r.dropped_scrubs_unrecovered, 0,
                "audited cell [{}] left packets unrecovered",
                cell.key
            );
            assert_eq!(
                r.dropped_scrubs_recovered, r.dropped_scrubs_detected,
                "audited cell [{}] detected more than it replayed",
                cell.key
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A fault schedule is a pure function of its (config, seed, horizon,
    /// targets) inputs: redrawing is byte-identical for any seed, rate and
    /// kind — there is no hidden draw counter to desynchronise a replay.
    #[test]
    fn fault_schedules_are_seed_pure_for_any_seed(
        seed in any::<u64>(),
        rate in 0u32..=1000,
        kind_idx in 0usize..FaultKind::ALL.len(),
    ) {
        let config = FaultConfig::for_kind(FaultKind::ALL[kind_idx], rate);
        let a = FaultSchedule::draw(config, seed, 64, 64);
        let b = FaultSchedule::draw(config, seed, 64, 64);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.checksum(), b.checksum());
        prop_assert!(a.events().iter().all(|e| e.at_event < 64 && e.target < 64));
        prop_assert!(a.events().windows(2).all(|w| w[0].at_event < w[1].at_event));
    }
}

proptest! {
    // Each case runs two full (small) campaigns; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The campaign JSON is byte-identical across thread counts for
    /// arbitrary master seeds, not just the pinned one: per-cell seeds are
    /// derived from the cell key, so scheduling order can never leak in.
    #[test]
    fn fault_campaigns_are_thread_invariant_for_any_seed(seed in 0u64..1_000_000) {
        let storm = StormConfig {
            tenants: 16,
            mean_interarrival_cycles: 30_000,
            mean_service_scale: 1,
            host_reserve_cores: 8,
            profiles: tenant_profiles(&AppId::ALL),
        };
        let grid = FaultGrid::new(storm, AdmissionPolicy::Queue)
            .with_kind(FaultKind::TileFailure)
            .with_kind(FaultKind::DroppedScrub)
            .with_rate(250)
            .with_arch(FaultArch::Ironhide)
            .with_arch(FaultArch::Insecure);
        let sweep = |threads: usize| {
            SweepRunner::new(MachineConfig::paper_default())
                .with_seed(seed)
                .with_threads(threads)
                .run_faults(&grid)
                .expect("fault sweep runs")
                .to_json()
        };
        prop_assert_eq!(sweep(1), sweep(4));
    }
}
