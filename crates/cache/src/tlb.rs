//! A fully-associative translation look-aside buffer model.

use crate::config::TlbConfig;
use crate::stats::CacheStats;

/// A private, fully-associative TLB with LRU replacement.
///
/// Under MI6 the private TLBs are flushed on every enclave entry/exit together
/// with the L1 caches; under IRONHIDE they are only flushed when the tile is
/// re-allocated to the other cluster.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    entries: Vec<(u64, u64)>, // (virtual page number, last_use)
    tick: u64,
    stats: CacheStats,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        Tlb {
            config,
            entries: Vec::with_capacity(config.entries),
            tick: 0,
            stats: CacheStats::new(),
        }
    }

    /// The TLB geometry.
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics without touching TLB contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Virtual page number of a virtual address.
    pub fn page_of(&self, vaddr: u64) -> u64 {
        vaddr / self.config.page_bytes as u64
    }

    /// Translates the page containing `vaddr`; returns `true` on a TLB hit and
    /// `false` on a miss (in which case the entry is filled and the caller
    /// charges a page-walk latency).
    pub fn access(&mut self, vaddr: u64) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let vpn = self.page_of(vaddr);
        if let Some(e) = self.entries.iter_mut().find(|(p, _)| *p == vpn) {
            e.1 = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        if self.entries.len() == self.config.entries {
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, last))| *last)
                .map(|(i, _)| i)
                .expect("TLB is non-empty when full");
            self.entries.swap_remove(victim);
            self.stats.evictions += 1;
        }
        self.entries.push((vpn, self.tick));
        false
    }

    /// Performs `count` accesses to the page containing `vaddr` — the bulk
    /// form the batched access engine uses for a page-run of references.
    ///
    /// The first access runs the full lookup/fill (and reports hit or miss);
    /// the remaining `count - 1` are guaranteed hits on the same entry, so
    /// they collapse into one tick/recency/statistics update. Byte-identical
    /// to `count` scalar [`Tlb::access`] calls with addresses in the page.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn access_page_run(&mut self, vaddr: u64, count: u64) -> bool {
        assert!(count > 0, "a page run must contain at least one access");
        let first_hit = self.access(vaddr);
        if count > 1 {
            let extra = count - 1;
            self.tick += extra;
            self.stats.accesses += extra;
            self.stats.hits += extra;
            let vpn = self.page_of(vaddr);
            let tick = self.tick;
            let entry = self
                .entries
                .iter_mut()
                .find(|(p, _)| *p == vpn)
                .expect("entry resident after the run's first access");
            entry.1 = tick;
        }
        first_hit
    }

    /// Checks whether the page containing `vaddr` is currently mapped, without
    /// updating recency or statistics.
    pub fn probe(&self, vaddr: u64) -> bool {
        let vpn = self.page_of(vaddr);
        self.entries.iter().any(|(p, _)| *p == vpn)
    }

    /// Flushes all entries (the purge operation). Returns the number of
    /// entries dropped.
    pub fn purge(&mut self) -> usize {
        let n = self.entries.len();
        self.entries.clear();
        self.stats.purges += 1;
        self.stats.flushed_lines += n as u64;
        n
    }

    /// Number of currently resident translations.
    pub fn resident(&self) -> usize {
        self.entries.len()
    }

    /// Resets the TLB to its just-constructed state (empty, statistics and
    /// recency clock zeroed), keeping the entry allocation. Used when a
    /// scratch machine is recycled.
    pub fn reset_pristine(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::new(4, 4096))
    }

    #[test]
    fn miss_then_hit_same_page() {
        let mut t = tlb();
        assert!(!t.access(0x1000));
        assert!(t.access(0x1ff8), "same 4K page must hit");
        assert!(!t.access(0x2000), "next page must miss");
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_when_full() {
        let mut t = tlb();
        for p in 0..4u64 {
            t.access(p * 4096);
        }
        t.access(0); // refresh page 0
        t.access(5 * 4096); // evicts page 1 (LRU)
        assert!(t.probe(0));
        assert!(!t.probe(4096));
        assert_eq!(t.stats().evictions, 1);
    }

    #[test]
    fn purge_flushes_everything() {
        let mut t = tlb();
        for p in 0..3u64 {
            t.access(p * 4096);
        }
        assert_eq!(t.purge(), 3);
        assert_eq!(t.resident(), 0);
        assert_eq!(t.stats().purges, 1);
        assert!(!t.access(0), "post-purge access must miss");
    }

    #[test]
    fn page_run_matches_scalar_accesses() {
        let mut bulk = tlb();
        let mut scalar = tlb();
        // Fill with some pages first so recency interactions are non-trivial.
        for p in 0..3u64 {
            bulk.access(p * 4096);
            scalar.access(p * 4096);
        }
        let hit_bulk = bulk.access_page_run(5 * 4096 + 8, 6);
        let hit_scalar = scalar.access(5 * 4096 + 8);
        for _ in 0..5 {
            assert!(scalar.access(5 * 4096 + 200), "same-page re-touches must hit");
        }
        assert!(!hit_bulk);
        assert_eq!(hit_bulk, hit_scalar);
        assert_eq!(bulk.stats().accesses, scalar.stats().accesses);
        assert_eq!(bulk.stats().hits, scalar.stats().hits);
        assert_eq!(bulk.stats().misses, scalar.stats().misses);
        assert_eq!(bulk.stats().evictions, scalar.stats().evictions);
        // Recency end-state identical: the same next access evicts the same
        // victim in both.
        bulk.access(9 * 4096);
        scalar.access(9 * 4096);
        for p in [0u64, 2, 3, 5, 9] {
            assert_eq!(bulk.probe(p * 4096), scalar.probe(p * 4096), "page {p}");
        }
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut t = tlb();
        for p in 0..100u64 {
            t.access(p * 4096);
        }
        assert!(t.resident() <= 4);
    }
}
