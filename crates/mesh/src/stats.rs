//! NoC traffic statistics.

use crate::cluster::ClusterId;
use crate::packet::PacketKind;

/// Aggregate statistics for traffic observed on the mesh.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NocStats {
    /// Total packets injected.
    pub packets: u64,
    /// Total flits injected.
    pub flits: u64,
    /// Total hops traversed across all packets.
    pub hops: u64,
    /// Total latency cycles accumulated by all packets.
    pub latency_cycles: u64,
    /// Packets that crossed the secure/insecure cluster boundary (only the
    /// shared-IPC-buffer traffic is ever allowed to).
    pub cross_cluster_packets: u64,
    /// Request-class packets.
    pub requests: u64,
    /// Response-class packets.
    pub responses: u64,
    /// Write-back packets.
    pub writebacks: u64,
    /// IPC packets.
    pub ipc: u64,
    /// Maintenance (purge / reconfiguration) packets.
    pub maintenance: u64,
}

impl NocStats {
    /// Creates an empty statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one packet traversal.
    pub fn record(
        &mut self,
        kind: PacketKind,
        flits: usize,
        hops: usize,
        latency: u64,
        crossed_clusters: Option<(ClusterId, ClusterId)>,
    ) {
        self.packets += 1;
        self.flits += flits as u64;
        self.hops += hops as u64;
        self.latency_cycles += latency;
        if let Some((a, b)) = crossed_clusters {
            if a != b {
                self.cross_cluster_packets += 1;
            }
        }
        match kind {
            PacketKind::Request => self.requests += 1,
            PacketKind::Response => self.responses += 1,
            PacketKind::WriteBack => self.writebacks += 1,
            PacketKind::Ipc => self.ipc += 1,
            PacketKind::Maintenance => self.maintenance += 1,
        }
    }

    /// Mean hops per packet.
    pub fn mean_hops(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.hops as f64 / self.packets as f64
        }
    }

    /// Mean latency per packet, in cycles.
    pub fn mean_latency(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.latency_cycles as f64 / self.packets as f64
        }
    }

    /// Merges another statistics block into this one.
    pub fn merge(&mut self, other: &NocStats) {
        self.packets += other.packets;
        self.flits += other.flits;
        self.hops += other.hops;
        self.latency_cycles += other.latency_cycles;
        self.cross_cluster_packets += other.cross_cluster_packets;
        self.requests += other.requests;
        self.responses += other.responses;
        self.writebacks += other.writebacks;
        self.ipc += other.ipc;
        self.maintenance += other.maintenance;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = NocStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_means() {
        let mut s = NocStats::new();
        s.record(PacketKind::Request, 1, 4, 8, None);
        s.record(PacketKind::Response, 5, 4, 16, None);
        assert_eq!(s.packets, 2);
        assert_eq!(s.flits, 6);
        assert_eq!(s.requests, 1);
        assert_eq!(s.responses, 1);
        assert!((s.mean_hops() - 4.0).abs() < 1e-9);
        assert!((s.mean_latency() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn cross_cluster_counted_only_when_clusters_differ() {
        let mut s = NocStats::new();
        s.record(PacketKind::Ipc, 5, 2, 4, Some((ClusterId::Secure, ClusterId::Insecure)));
        s.record(PacketKind::Request, 1, 2, 4, Some((ClusterId::Secure, ClusterId::Secure)));
        assert_eq!(s.cross_cluster_packets, 1);
        assert_eq!(s.ipc, 1);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = NocStats::new();
        a.record(PacketKind::Request, 1, 1, 2, None);
        let mut b = NocStats::new();
        b.record(PacketKind::WriteBack, 5, 3, 9, None);
        a.merge(&b);
        assert_eq!(a.packets, 2);
        assert_eq!(a.writebacks, 1);
        a.reset();
        assert_eq!(a, NocStats::default());
    }

    #[test]
    fn empty_stats_have_zero_means() {
        let s = NocStats::new();
        assert_eq!(s.mean_hops(), 0.0);
        assert_eq!(s.mean_latency(), 0.0);
    }
}
