//! Differential tests for the O(moved-state) reconfiguration path.
//!
//! PR 7 rebuilt cluster reconfiguration around batched primitives — the
//! slice→pages reverse index behind `rehome_all_logged`, the one-pass
//! `invalidate_page_run`/`invalidate_page_set` cache sweeps, the directory's
//! `drop_page_lines` sharer census, and the `route_epoch` no-op rule. The
//! scalar pre-batching implementation is kept on `Machine` behind
//! `set_reconfig_reference(true)` as the byte-identity oracle; these
//! properties drive both paths through identical histories and require
//! identical observable outcomes: per-call `(moved, cycles)` returns, access
//! latencies, every machine counter, and the post-scrub latency of probing
//! the moved pages again (which would expose any line a batched scrub left
//! behind, or any it flushed too eagerly).

use proptest::prelude::*;

use ironhide::ironhide_cache::SliceId;
use ironhide::ironhide_core::arch::ArchParams;
use ironhide::ironhide_core::arch::Architecture;
use ironhide::ironhide_core::realloc::ReallocPolicy;
use ironhide::ironhide_core::sweep::SweepRunner;
use ironhide::ironhide_core::ClusterManager;
use ironhide::ironhide_mesh::{ClusterId, NodeId};
use ironhide::ironhide_sim::config::MachineConfig;
use ironhide::ironhide_sim::machine::Machine;
use ironhide::ironhide_sim::process::{ProcessId, SecurityClass};
use ironhide::ironhide_workloads::app::{sweep_grid, AppId, ScaleFactor};

// ---------------------------------------------------------------------------
// Machine-level differential: random pin tables, slice restrictions and
// purge interleavings on the small 2×2 machine (4 cores, 4 slices).
// ---------------------------------------------------------------------------

/// One step of the differential driver.
#[derive(Debug, Clone)]
enum Op {
    /// Touch a page (allocating and pinning it on first touch).
    Access { core: usize, pid: usize, page: u64, write: bool },
    /// Restrict a process's pages to the slices in `mask` (non-empty),
    /// re-homing and scrubbing everything pinned outside it.
    Restrict { pid: usize, mask: u8 },
    /// Re-apply the process's current restriction verbatim: the batched
    /// path's `route_epoch` no-op rule must be unobservable against the
    /// reference, which always bumps the epoch and rescans every pin.
    Reapply { pid: usize },
    /// Generational slice purge between reconfigurations.
    PurgeSlices { slice: usize },
    /// Private-state purge of one tile.
    PurgeCore { core: usize },
}

/// Decodes one sampled word into a driver step (the vendored proptest shim
/// has no tuple/oneof combinators, so structure is derived from plain
/// `u64`s). Accesses dominate so real pin tables build up between the
/// rarer reconfiguration and purge steps.
fn decode_op(word: u64) -> Op {
    match word % 12 {
        0 | 1 => {
            Op::Restrict { pid: (word >> 8) as usize % 2, mask: (1 + (word >> 16) % 15) as u8 }
        }
        2 => Op::Reapply { pid: (word >> 8) as usize % 2 },
        3 => Op::PurgeSlices { slice: (word >> 8) as usize % 4 },
        4 => Op::PurgeCore { core: (word >> 8) as usize % 4 },
        _ => Op::Access {
            core: (word >> 4) as usize % 4,
            pid: (word >> 6) as usize % 2,
            page: (word >> 8) % 48,
            write: (word >> 16).is_multiple_of(2),
        },
    }
}

/// The slice set a restriction mask denotes, in ascending order (the order
/// is part of the contract: round-robin re-homing spreads by position).
fn slices_of(mask: u8) -> Vec<SliceId> {
    (0..4usize).filter(|s| mask & (1 << s) != 0).map(SliceId).collect()
}

/// Builds one of the twin machines: two processes of opposite security
/// classes on the small test geometry.
fn twin() -> (Machine, [ProcessId; 2]) {
    let mut machine = Machine::new(MachineConfig::small_test());
    let secure = machine.create_process("twin-secure", SecurityClass::Secure);
    let insecure = machine.create_process("twin-insecure", SecurityClass::Insecure);
    (machine, [secure, insecure])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The batched reconfiguration path (indexed rehome + page-run scrub) is
    /// byte-identical to the scalar reference over random access/restrict/
    /// purge histories: every return value, every latency, every statistic,
    /// and the post-scrub probe latencies of the whole page range.
    #[test]
    fn reconfiguration_matches_scalar_reference(
        words in prop::collection::vec(any::<u64>(), 1..120),
    ) {
        let ops: Vec<Op> = words.iter().map(|w| decode_op(*w)).collect();
        let (mut batched, pids) = twin();
        let (mut reference, ref_pids) = twin();
        prop_assert_eq!(pids, ref_pids, "twin machines must number processes alike");
        reference.set_reconfig_reference(true);

        // The restriction each process currently lives under, for Reapply.
        let mut current: [Vec<SliceId>; 2] =
            [batched.process_slices(pids[0]), batched.process_slices(pids[1])];

        for (i, op) in ops.iter().enumerate() {
            match op {
                Op::Access { core, pid, page, write } => {
                    let vaddr = page * 4096 + (i as u64 % 64) * 64;
                    let a = batched.access(NodeId(*core), pids[*pid], vaddr, *write);
                    let b = reference.access(NodeId(*core), pids[*pid], vaddr, *write);
                    prop_assert_eq!(a, b, "access #{} page {} diverged", i, page);
                }
                Op::Restrict { pid, mask } => {
                    let slices = slices_of(*mask);
                    let a = batched.set_process_slices(pids[*pid], &slices);
                    let b = reference.set_process_slices(pids[*pid], &slices);
                    prop_assert_eq!(a, b, "restrict #{} mask {:#x} diverged", i, mask);
                    current[*pid] = slices;
                }
                Op::Reapply { pid } => {
                    let slices = current[*pid].clone();
                    let a = batched.set_process_slices(pids[*pid], &slices);
                    let b = reference.set_process_slices(pids[*pid], &slices);
                    prop_assert_eq!(a, b, "reapply #{} diverged", i);
                    prop_assert_eq!(a, (0, 0), "re-applying a restriction must move nothing");
                }
                Op::PurgeSlices { slice } => {
                    let s = [SliceId(*slice)];
                    prop_assert_eq!(batched.purge_slices(&s), reference.purge_slices(&s));
                }
                Op::PurgeCore { core } => {
                    let c = NodeId(*core);
                    prop_assert_eq!(batched.purge_core(c), reference.purge_core(c));
                }
            }
        }

        // Post-scrub probes: re-touch every page in the driver's range from
        // every core. A line the batched scrub failed to invalidate hits
        // where the reference misses (and vice versa), so latency equality
        // here pins the final cache/directory state, not just the counters.
        for page in 0..48u64 {
            for core in 0..4usize {
                for pid in pids {
                    let vaddr = page * 4096 + 32;
                    let a = batched.access(NodeId(core), pid, vaddr, false);
                    let b = reference.access(NodeId(core), pid, vaddr, false);
                    prop_assert_eq!(a, b, "post-scrub probe page {} core {} diverged", page, core);
                }
            }
        }

        let a = format!("{:?}", batched.stats());
        let b = format!("{:?}", reference.stats());
        prop_assert_eq!(a, b, "machine statistics diverged");
        for pid in pids {
            prop_assert_eq!(
                format!("{:?}", batched.process_stats(pid)),
                format!("{:?}", reference.process_stats(pid)),
                "process statistics diverged"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// ClusterManager-level differential: the full purge → rehome → scrub
// protocol on the paper-scale machine, under a directed storm.
// ---------------------------------------------------------------------------

/// Touches a sliding window of pages per process from cores spread over the
/// live clusters (the churn harness's warm-up, at test scale): pins, cache
/// lines and directory entries are all resident when a reconfiguration hits,
/// and fresh pages keep pinning onto the current shape.
fn warm(
    machine: &mut Machine,
    manager: &ClusterManager,
    secure: ProcessId,
    insecure: ProcessId,
    base: u64,
    pages: u64,
) {
    let secure_cores: Vec<NodeId> = manager.cores_iter(ClusterId::Secure).collect();
    let insecure_cores: Vec<NodeId> = manager.cores_iter(ClusterId::Insecure).collect();
    for p in base..base + pages {
        let vaddr = p * 4096;
        machine.access(secure_cores[p as usize % secure_cores.len()], secure, vaddr, p % 3 == 0);
        machine.access(
            insecure_cores[p as usize % insecure_cores.len()],
            insecure,
            vaddr,
            p % 3 == 1,
        );
        machine.access(secure_cores[(p as usize + 1) % secure_cores.len()], secure, vaddr, false);
    }
}

/// Runs the directed reconfiguration storm through one protocol path and
/// returns every observable: per-reconfiguration stall cycles, the final
/// machine statistics, and post-storm foreign-probe latencies over the last
/// warm window from both clusters.
fn run_storm(reference: bool) -> (Vec<u64>, String, Vec<u64>) {
    const SHAPES: [usize; 6] = [8, 40, 16, 56, 24, 32];
    const RECONFIGS: usize = 8;
    const WARM_PAGES: u64 = 32;

    let mut machine = Machine::new(MachineConfig::paper_default());
    let secure = machine.create_process("storm-secure", SecurityClass::Secure);
    let insecure = machine.create_process("storm-insecure", SecurityClass::Insecure);
    let (mut manager, _) =
        ClusterManager::form(&mut machine, secure, insecure, 32).expect("initial clusters");
    warm(&mut machine, &manager, secure, insecure, 0, WARM_PAGES);
    machine.set_reconfig_reference(reference);

    let mut stalls = Vec::with_capacity(RECONFIGS);
    let mut last_base = 0;
    for (i, &target) in SHAPES.iter().cycle().take(RECONFIGS).enumerate() {
        let cycles =
            manager.reconfigure(&mut machine, secure, insecure, target).expect("valid storm shape");
        stalls.push(cycles);
        last_base = (i as u64 + 1) * WARM_PAGES / 4;
        warm(&mut machine, &manager, secure, insecure, last_base, WARM_PAGES);
    }

    let mut probes = Vec::new();
    let sc = manager.cores_iter(ClusterId::Secure).next().expect("non-empty secure cluster");
    let ic = manager.cores_iter(ClusterId::Insecure).next().expect("non-empty insecure cluster");
    for p in last_base..last_base + WARM_PAGES {
        probes.push(machine.access(sc, secure, p * 4096 + 16, false));
        probes.push(machine.access(ic, insecure, p * 4096 + 16, false));
    }
    (stalls, format!("{:?}", machine.stats()), probes)
}

/// The full `ClusterManager::reconfigure` protocol — tile purges, slice
/// purges, indexed re-home, batched scrub — charges exactly the reference's
/// stall cycles on every storm step and leaves a byte-identical machine.
#[test]
fn cluster_storm_matches_scalar_reference() {
    let (ref_stalls, ref_stats, ref_probes) = run_storm(true);
    let (bat_stalls, bat_stats, bat_probes) = run_storm(false);
    assert_eq!(bat_stalls, ref_stalls, "per-reconfiguration stall cycles diverged");
    assert_eq!(bat_stats, ref_stats, "post-storm machine statistics diverged");
    assert_eq!(bat_probes, ref_probes, "post-storm probe latencies diverged");
}

// ---------------------------------------------------------------------------
// Sweep-level determinism: the heuristic grid reconfigures continuously, so
// it exercises the batched path end to end; its matrix must not depend on
// the worker-thread count.
// ---------------------------------------------------------------------------

/// A reconfiguration-heavy sweep (heuristic re-allocation over every
/// architecture) serialises byte-identically on 1, 2 and 8 worker threads.
#[test]
fn heuristic_storm_matrix_is_thread_invariant() {
    let grid = sweep_grid(
        &[AppId::QueryAes, AppId::PrGraph],
        &Architecture::ALL,
        &[ReallocPolicy::Heuristic],
        &[ScaleFactor::Smoke],
    );
    let params =
        ArchParams { warmup_interactions: 2, predictor_sample: 2, ..ArchParams::default() };
    let run = |threads: usize| {
        SweepRunner::new(MachineConfig::paper_default())
            .with_params(params)
            .with_seed(7)
            .with_threads(threads)
            .run(&grid)
            .expect("heuristic smoke sweep runs")
            .to_json()
    };
    let baseline = run(1);
    for threads in [2usize, 8] {
        assert_eq!(
            run(threads),
            baseline,
            "thread count {threads} changed the heuristic storm matrix"
        );
    }
}
