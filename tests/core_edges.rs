//! Coverage for previously untested `ironhide-core` edges: extreme
//! `ReallocPolicy::FixedOffset` clamping, and the secure kernel's
//! attestation-rejection and mutually-distrusting admission paths.

use ironhide::ironhide_core::kernel::{AppDomain, AttestationError, SecureKernel, TrustRelation};
use ironhide::ironhide_core::realloc::ReallocDecision;
use ironhide::ironhide_sim::process::ProcessId;
use ironhide::prelude::*;

/// A convex predicted-cost surface with its minimum at `opt`.
fn convex(opt: usize) -> impl FnMut(usize) -> f64 {
    move |n: usize| ((n as f64) - opt as f64).powi(2) + 10.0
}

#[test]
fn fixed_offset_extremes_clamp_to_valid_cluster_sizes() {
    // ±100% of the machine shifts past either end of the feasible range
    // [1, cores - 1]; the decision must clamp, not wrap or panic.
    let plus: ReallocDecision = ReallocPolicy::FixedOffset(100).decide(64, 32, convex(40));
    assert_eq!(plus.secure_cores, 63);
    assert!(plus.charge_overhead);

    let minus = ReallocPolicy::FixedOffset(-100).decide(64, 32, convex(40));
    assert_eq!(minus.secure_cores, 1);

    // A zero offset degenerates to the Optimal allocation but still charges
    // its reconfiguration (it is a "prediction", not the idealised bound).
    let zero = ReallocPolicy::FixedOffset(0).decide(64, 32, convex(17));
    assert_eq!(zero.secure_cores, 17);
    assert!(zero.charge_overhead);

    // The smallest machine that can host two clusters.
    let tiny = ReallocPolicy::FixedOffset(100).decide(2, 1, convex(1));
    assert_eq!(tiny.secure_cores, 1);
}

#[test]
fn fixed_offset_extremes_survive_an_end_to_end_run() {
    // On the 4-core test machine a +100% offset pins the secure cluster at
    // 3 of 4 cores; the full runner must reconfigure to the clamp and finish
    // with clean isolation.
    let params = ArchParams { warmup_interactions: 1, predictor_sample: 1, ..Default::default() };
    for (offset, expected_cores) in [(100, 3), (-100, 1)] {
        let runner = ExperimentRunner::new(MachineConfig::small_test())
            .with_params(params)
            .with_realloc(ReallocPolicy::FixedOffset(offset));
        let mut app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
        let report = runner.run(Architecture::Ironhide, app.as_mut()).expect("run succeeds");
        assert_eq!(report.secure_cores, expected_cores, "offset {offset}");
        assert!(report.isolation.is_clean(), "{:?}", report.isolation.violations);
    }
}

const KEY: u64 = 0x5EC0_0ED6E;
const OTHER_KEY: u64 = 0x0123_4567;

#[test]
fn kernel_rejects_foreign_signatures_and_tampered_admissions() {
    let mut kernel = SecureKernel::new();
    let image = b"enclave image v1";

    // A signature minted under a different author key must be rejected.
    let forged = SecureKernel::sign(image, OTHER_KEY);
    let err = kernel.register(ProcessId(0), image, forged, KEY, AppDomain(1)).unwrap_err();
    assert!(matches!(err, AttestationError::BadSignature { pid } if pid == ProcessId(0)));
    assert!(kernel.measurement_of(ProcessId(0)).is_none());

    // A valid registration admits only the registered image.
    let sig = SecureKernel::sign(image, KEY);
    kernel.register(ProcessId(0), image, sig, KEY, AppDomain(1)).expect("registers");
    let err = kernel.admit(ProcessId(0), b"enclave image v2").unwrap_err();
    assert!(matches!(err, AttestationError::MeasurementMismatch { .. }));
    assert!(!kernel.is_admitted(ProcessId(0)));
    kernel.admit(ProcessId(0), image).expect("admits the pristine image");
    assert!(kernel.is_admitted(ProcessId(0)));

    // Never-registered processes cannot be admitted or related.
    assert!(matches!(
        kernel.admit(ProcessId(9), image),
        Err(AttestationError::Unknown { pid }) if pid == ProcessId(9)
    ));
    assert!(kernel.trust_relation(ProcessId(0), ProcessId(9)).is_err());
}

#[test]
fn mutually_distrusting_admissions_require_purges_between_them() {
    let mut kernel = SecureKernel::new();
    for (pid, domain, image) in
        [(1usize, 7u64, &b"app A worker 1"[..]), (2, 7, b"app A worker 2"), (3, 8, b"app B")]
    {
        let sig = SecureKernel::sign(image, KEY);
        kernel.register(ProcessId(pid), image, sig, KEY, AppDomain(domain)).expect("registers");
        kernel.admit(ProcessId(pid), image).expect("admits");
    }

    // Same interactive application: co-execution without purging.
    assert_eq!(
        kernel.trust_relation(ProcessId(1), ProcessId(2)).unwrap(),
        TrustRelation::MutuallyTrusting
    );
    assert!(!kernel.requires_purge_between(ProcessId(1), ProcessId(2)));

    // Different applications: the secure cluster must be purged on the
    // context switch, in both directions.
    assert_eq!(
        kernel.trust_relation(ProcessId(2), ProcessId(3)).unwrap(),
        TrustRelation::MutuallyDistrusting
    );
    assert!(kernel.requires_purge_between(ProcessId(2), ProcessId(3)));
    assert!(kernel.requires_purge_between(ProcessId(3), ProcessId(1)));

    // An unknown counterparty never silently skips the purge decision.
    assert!(!kernel.requires_purge_between(ProcessId(1), ProcessId(42)));
    assert!(kernel.trust_relation(ProcessId(1), ProcessId(42)).is_err());
}
