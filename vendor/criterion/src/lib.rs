//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates.io access, so this shim implements the
//! slice of the Criterion API the `micro_primitives` bench uses:
//! [`Criterion::bench_function`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Instead of Criterion's full statistical machinery it runs each benchmark
//! for the configured measurement window and reports the mean, minimum and
//! maximum wall-clock time per iteration — enough to compare the relative
//! cost of the simulator primitives. Passing `--test` (as `cargo test`
//! does for bench targets) runs each benchmark exactly once, keeping test
//! runs fast.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under Criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched setup output is sized (accepted for API compatibility; the
/// shim always runs one setup per measured routine call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Per-benchmark measurement driver.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize, measurement: Duration) -> Self {
        Bencher { samples, measurement, results: Vec::new() }
    }

    /// Measures `routine` repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.results.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Measures `routine` on fresh inputs produced by `setup`; only the
    /// routine is timed.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let deadline = Instant::now() + self.measurement;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.results.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Benchmark registry and configuration, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs bench targets with `--test`; `cargo bench`
        // passes `--bench`. In test mode each benchmark runs once.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 50,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the target number of samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let (samples, measurement, warm_up) = if self.test_mode {
            (1, Duration::from_secs(3600), Duration::ZERO)
        } else {
            (self.sample_size, self.measurement, self.warm_up)
        };
        if !warm_up.is_zero() {
            let mut warm = Bencher::new(samples, warm_up);
            f(&mut warm);
        }
        let mut bencher = Bencher::new(samples, measurement);
        f(&mut bencher);
        report(name, &bencher.results, self.test_mode);
        self
    }

    /// Finalises reporting (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

fn report(name: &str, results: &[Duration], test_mode: bool) {
    if test_mode {
        println!("test {name} ... ok (1 iteration)");
        return;
    }
    if results.is_empty() {
        println!("{name:<40} no samples collected");
        return;
    }
    let total: Duration = results.iter().sum();
    let mean = total / results.len() as u32;
    let min = results.iter().min().unwrap();
    let max = results.iter().max().unwrap();
    println!(
        "{name:<40} time: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        results.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default().sample_size(5).warm_up_time(Duration::ZERO);
        c.test_mode = false;
        c.measurement = Duration::from_millis(50);
        let mut calls = 0u64;
        c.bench_function("shim_smoke", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut b = Bencher::new(3, Duration::from_secs(1));
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.results.len(), 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(15)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(15)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
