//! # ironhide-attacks
//!
//! The adversarial half of the reproduction's security claim. The rest of
//! the workspace shows that IRONHIDE is *fast*; this crate attacks it to
//! show that it is *isolating* — in the style of covert-channel validation
//! work (Wistoff et al.'s temporal-partitioning channel benchmarks, "Shield
//! Bash"-style self-attacks on defences), rather than by asserting internal
//! invariants alone.
//!
//! * [`channels`] — four paired attacker/victim workloads, each trying to
//!   transmit a pseudo-random bit string through one piece of shared
//!   microarchitecture state: L2-slice occupancy (prime+probe), NoC
//!   link-contention timing, TLB occupancy, and a timing probe on the shared
//!   IPC buffer.
//! * [`oracle`] — the [`LeakageOracle`]: generates a balanced payload,
//!   co-schedules the pair through `ironhide-core`'s
//!   [`AttackRunner`](ironhide_core::attack::AttackRunner), decodes the
//!   received bits from the attacker's probe latencies and reports bit-error
//!   rate, channel capacity and a per-channel verdict.
//! * [`window`] — the reconfiguration-window attack: a self-orchestrating
//!   channel that probes the moved slices during the stall sequence of a
//!   cluster reconfiguration, proving the window CLOSED under the shipped
//!   purge→rehome→scrub order and OPEN under an injected mis-ordering.
//! * [`ablation`] — the defence-ablation grid for the `TemporalFence`
//!   architecture: the full channel arsenal swept against a ladder of flush
//!   subsets, answering which erasure closes which channel at what switch
//!   cost (the fence.t.s experiment, in the simulator).
//!
//! The crate's headline result is **differential**: on the insecure shared
//! baseline every channel decodes with a bit-error rate far below chance
//! (the channels demonstrably work in this simulator), while under the
//! IRONHIDE cluster architecture the very same attackers decode at ~50% BER
//! — indistinguishable from guessing — with the strong-isolation audit still
//! clean. See `tests/attack_suite.rs` and `examples/attack_demo.rs`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ablation;
pub mod channels;
pub mod oracle;
pub mod window;

pub use ablation::{
    ablation_channels, ablation_grid, ablation_subsets, all_but_predictor, smoke_subsets,
};
pub use channels::{ChannelKind, StreamChannel};
pub use oracle::{attack_grid, attack_spec, LeakageOracle};
pub use window::{window_attack_spec, FaultAudit, FaultMode, WindowAttack};
