//! The reconfiguration-window covert channel.
//!
//! The four [`crate::channels`] channels attack the *steady state* of an
//! architecture; this one attacks the **stall sequence of a dynamic
//! reconfiguration** — the only moment IRONHIDE's resources change hands.
//! The victim dirty-writes a secret-dependent buffer spread over its secure
//! L2 slices; the cluster then shrinks, moving some of those slices (and the
//! victim's pages homed on them) to the insecure side; the attacker runs a
//! timed evict-and-sweep over the moved slices at the first instant the
//! reconfiguration lets insecure traffic flow.
//!
//! Under the shipped [`PurgeOrder::PurgeThenRehome`] every moved slice has
//! been flushed and every re-homed page scrubbed *before* that instant, so
//! the sweep finds nothing: its latency is bit-independent and the channel
//! decodes at chance. Under the injected [`PurgeOrder::RehomeThenPurge`]
//! the victim's stale dirty lines are still sitting in the moved slices;
//! evicting them emits write-back packets whose link traffic the analytical
//! NoC model turns into congestion the attacker's own sweep can time — the
//! window is open exactly when the purge ordering is violated.
//!
//! The channel is self-orchestrating: unlike the stream channels it cannot
//! be co-scheduled by the [`AttackRunner`](ironhide_core::attack::AttackRunner)
//! because the transmission medium *is* the reconfiguration itself, driven
//! per slot through [`ClusterManager::reconfigure_windowed`]. Under the
//! temporally shared architectures no reconfiguration exists; the same
//! victim-burst / attacker-sweep pair runs across the enclave boundary
//! instead, giving the usual differential: open on the insecure baseline,
//! closed under MI6's boundary purges.

use ironhide_cache::SliceId;
use ironhide_core::arch::{ArchParams, Architecture};
use ironhide_core::attack::{AttackOutcome, ChannelVerdict};
use ironhide_core::boundary::mi6_boundary_cost;
use ironhide_core::cluster::{ClusterManager, PurgeOrder};
use ironhide_core::isolation::IsolationAuditor;
use ironhide_core::kernel::{AppDomain, SecureKernel};
use ironhide_core::runner::RunError;
use ironhide_core::speccheck::SpeculativeAccessCheck;
use ironhide_core::sweep::AttackSpec;
use ironhide_mesh::{ClusterId, NodeId};
use ironhide_sim::config::MachineConfig;
use ironhide_sim::machine::Machine;
use ironhide_sim::process::{ProcessId, SecurityClass};

use crate::oracle::{balanced_bits, binary_entropy, decode, LeakageOracle};

/// Channel label under the shipped purge ordering.
pub const SHIPPED_LABEL: &str = "reconfig-window";
/// Channel label under the injected mis-ordering.
pub const MISORDERED_LABEL: &str = "reconfig-window-misordered";
/// Channel label with dropped purge packets caught by the scrub audit.
pub const AUDITED_DROP_LABEL: &str = "reconfig-window-dropped-purge-audited";
/// Channel label with dropped purge packets and no audit (negative control).
pub const UNAUDITED_DROP_LABEL: &str = "reconfig-window-dropped-purge";

/// Signing key of the simulated window-attack victim's author (the kernel
/// only needs signatures to be verifiable, not secret).
const AUTHOR_KEY: u64 = 0x0B5E_55ED_C0DE_D00D;

/// Base virtual address of the victim's secret-dependent buffers.
const VICTIM_BASE: u64 = 0x2000_0000;
/// Base virtual address of the attacker's sweep buffers.
const SWEEP_BASE: u64 = 0x1000_0000;

/// How a run interacts with an injected dropped-scrub (partial purge
/// completion) fault — the differential axis of the fault campaign's
/// security gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// No fault injected (the original channel).
    #[default]
    None,
    /// Purge packets drop, and the scrub audit detects and replays them at
    /// the start of every reconfiguration window — recovery must keep the
    /// channel closed.
    DroppedPurgeAudited,
    /// Purge packets drop and nobody audits: stale dirty lines survive into
    /// the window, which must pin the channel open.
    DroppedPurgeUnaudited,
}

/// What the scrub audit saw across one faulted assessment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultAudit {
    /// Dropped scrub packets the audit detected.
    pub dropped_detected: u64,
    /// Dropped scrub packets replayed back to a clean state.
    pub dropped_recovered: u64,
    /// Dropped scrub packets still unrecovered when the run ended.
    pub dropped_unrecovered: u64,
}

impl FaultAudit {
    /// A clean audit: everything detected was recovered and nothing was left
    /// behind — the recovery obligation is fully discharged.
    pub fn is_clean(&self) -> bool {
        self.dropped_detected == self.dropped_recovered && self.dropped_unrecovered == 0
    }
}

/// The reconfiguration-window attack: victim, attacker and the per-slot
/// shrink/grow reconfiguration cycle, decoded with the same unsupervised
/// midpoint threshold as the stream channels.
#[derive(Debug, Clone)]
pub struct WindowAttack {
    config: MachineConfig,
    params: ArchParams,
    order: PurgeOrder,
    fault: FaultMode,
    drop_rate_per_mille: u32,
    payload_bits: usize,
    warmup_slots: usize,
    noise_floor_cycles: u64,
}

/// Mutable per-run bookkeeping threaded through the slots.
struct SlotCtx {
    attacker: ProcessId,
    victim: ProcessId,
    attacker_core: NodeId,
    victim_core: NodeId,
    /// Secure-cluster cores between slots (and the shape grown back to).
    wide: usize,
    /// Secure-cluster cores during the measured window.
    narrow: usize,
    /// Pages of one victim secret burst.
    victim_pages: u64,
    /// Pages of one attacker evict-and-sweep.
    sweep_pages: u64,
    page_bytes: u64,
    line_bytes: u64,
    /// Sweeps issued so far — each slot sweeps fresh pages so every access
    /// misses and must evict whatever the moved slices still hold.
    sweeps: u64,
    /// Secret bursts issued so far — each burst dirties fresh pages so the
    /// round-robin allocator homes them across the *current* secure slices,
    /// including the ones the next shrink moves.
    bursts: u64,
    /// Dropped scrub packets the audit detected across all slots.
    dropped_detected: u64,
    /// Dropped scrub packets replayed across all slots.
    dropped_recovered: u64,
}

impl WindowAttack {
    /// Creates the attack for machines built from `config` under the given
    /// purge ordering, with the smoke-scale payload (32 bits), eight warm-up
    /// slots and the 16-cycle noise floor the stream channels use.
    pub fn new(config: MachineConfig, order: PurgeOrder) -> Self {
        WindowAttack {
            config,
            params: ArchParams::default(),
            order,
            fault: FaultMode::None,
            drop_rate_per_mille: 0,
            payload_bits: 32,
            warmup_slots: 8,
            noise_floor_cycles: 16,
        }
    }

    /// Injects a dropped-scrub fault: every scrub packet a reconfiguration
    /// emits drops with probability `rate_per_mille`/1000 (seed-pure per
    /// page), handled per `mode`.
    pub fn with_fault(mut self, mode: FaultMode, rate_per_mille: u32) -> Self {
        self.fault = mode;
        self.drop_rate_per_mille = rate_per_mille;
        self
    }

    /// Overrides the payload length.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or odd — the payload must be balanceable so
    /// a signal-free channel decodes at exactly 50% BER.
    pub fn with_payload_bits(mut self, bits: usize) -> Self {
        assert!(
            bits > 0 && bits.is_multiple_of(2),
            "payload must be a non-zero even number of bits"
        );
        self.payload_bits = bits;
        self
    }

    /// Overrides the number of unmeasured warm-up slots.
    pub fn with_warmup(mut self, slots: usize) -> Self {
        self.warmup_slots = slots;
        self
    }

    /// The channel label: the mis-ordered and faulted variants report under
    /// their own names so every verdict row can sit in one matrix.
    pub fn name(&self) -> &'static str {
        match (self.fault, self.order) {
            (FaultMode::DroppedPurgeAudited, _) => AUDITED_DROP_LABEL,
            (FaultMode::DroppedPurgeUnaudited, _) => UNAUDITED_DROP_LABEL,
            (FaultMode::None, PurgeOrder::PurgeThenRehome) => SHIPPED_LABEL,
            (FaultMode::None, PurgeOrder::RehomeThenPurge) => MISORDERED_LABEL,
        }
    }

    /// Runs the full attack under `arch` and decodes the transmission.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if cluster formation or a reconfiguration
    /// fails, or if the victim cannot be attested.
    pub fn assess(&self, arch: Architecture, seed: u64) -> Result<AttackOutcome, RunError> {
        self.assess_recycled(arch, seed, &mut None)
    }

    /// Like [`WindowAttack::assess`], but recycles the machine in `slot`
    /// (via `Machine::reset_pristine`) and leaves the run's machine behind
    /// for the next assessment, exactly as the attack matrix's cell pools
    /// expect. Byte-identical to a fresh-machine assessment.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if cluster formation or a reconfiguration
    /// fails, or if the victim cannot be attested.
    pub fn assess_recycled(
        &self,
        arch: Architecture,
        seed: u64,
        slot: &mut Option<Machine>,
    ) -> Result<AttackOutcome, RunError> {
        self.assess_faulted(arch, seed, slot).map(|(outcome, _)| outcome)
    }

    /// Like [`WindowAttack::assess_recycled`], but also returns the scrub
    /// audit's tally — the campaign's differential gate reads it to check
    /// that audited recovery was complete (and that the unaudited negative
    /// control really left residue behind).
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if cluster formation or a reconfiguration
    /// fails, or if the victim cannot be attested.
    pub fn assess_faulted(
        &self,
        arch: Architecture,
        seed: u64,
        slot: &mut Option<Machine>,
    ) -> Result<(AttackOutcome, FaultAudit), RunError> {
        let bits = balanced_bits(seed, self.payload_bits);
        let mut machine = match slot.take() {
            Some(mut m) => {
                m.reset_pristine();
                m
            }
            None => Machine::new(self.config.clone()),
        };
        let attacker = machine.create_process("attacker", SecurityClass::Insecure);
        let victim = machine.create_process("victim", SecurityClass::Secure);

        let mut kernel = SecureKernel::new();
        let image = format!("victim:{}", self.name()).into_bytes();
        let signature = SecureKernel::sign(&image, AUTHOR_KEY);
        kernel.register(victim, &image, signature, AUTHOR_KEY, AppDomain(1))?;
        kernel.admit(victim, &image)?;

        let total = self.config.cores();
        let wide = (total / 2).max(1);
        let narrow = (wide / 2).max(1);
        let mut manager: Option<ClusterManager> = None;
        let mut secure_cores = total;
        let (attacker_core, victim_core, victim_pages, sweep_pages) = match arch {
            Architecture::Insecure | Architecture::SgxLike | Architecture::TemporalFence => {
                // Shared everything: the sweep must cover every slice the
                // victim's buffers can home on. The temporal fence shares
                // like the insecure baseline; its flush happens per slot.
                (NodeId(0), NodeId(total - 1), wide as u64, total as u64)
            }
            Architecture::Mi6 => {
                // MI6's static partition, as in the AttackRunner: victim on
                // the low half of the slices, attacker on the high half.
                let low: Vec<SliceId> = (0..wide).map(SliceId).collect();
                let high: Vec<SliceId> = (wide..total).map(SliceId).collect();
                machine.set_process_slices(victim, &low);
                machine.set_process_slices(attacker, &high);
                (NodeId(0), NodeId(total - 1), wide as u64, total as u64)
            }
            Architecture::Ironhide => {
                let (m, _setup) = ClusterManager::form(&mut machine, victim, attacker, wide)?;
                secure_cores = wide;
                let vic = m.cores_iter(ClusterId::Secure).next().expect("non-empty cluster");
                // The last core stays insecure at both the wide and the
                // narrow shape, so the attacker never has to migrate.
                let att = m.cores_iter(ClusterId::Insecure).last().expect("non-empty cluster");
                manager = Some(m);
                // One burst page per wide secure slice; the sweep covers
                // every slice the insecure cluster owns at the narrow shape.
                (att, vic, wide as u64, (total - narrow) as u64)
            }
        };

        // The fault arms only after formation: drops model packets lost
        // during live reconfigurations, not during machine bring-up. The
        // drop predicate is pure in (seed, page), so the faulted page set is
        // replayable regardless of scrub batching.
        if self.fault != FaultMode::None {
            machine.set_scrub_drop_fault(seed ^ 0xFA17_5EED, self.drop_rate_per_mille);
        }

        let mut ctx = SlotCtx {
            attacker,
            victim,
            attacker_core,
            victim_core,
            wide,
            narrow,
            victim_pages,
            sweep_pages,
            page_bytes: machine.page_bytes(),
            line_bytes: self.config.l2_slice.line_bytes as u64,
            sweeps: 0,
            bursts: 0,
            dropped_detected: 0,
            dropped_recovered: 0,
        };

        // Warm up with alternating symbols so allocators, caches and the
        // congestion estimators settle into the steady state for both.
        for i in 0..self.warmup_slots {
            self.slot(&mut machine, &mut manager, arch, &mut ctx, i % 2 == 0)?;
        }

        let mut probe_cycles = Vec::with_capacity(bits.len());
        let mut payload_cycles = 0u64;
        for &bit in &bits {
            let (probe, slot_total) = self.slot(&mut machine, &mut manager, arch, &mut ctx, bit)?;
            probe_cycles.push(probe);
            payload_cycles += slot_total;
        }

        // Wrap up the fault: a final audit pass (the grow after the last
        // measured window can still drop packets), then lift the fault so
        // the machine goes back into the pool clean.
        let mut audit = FaultAudit::default();
        if self.fault != FaultMode::None {
            if self.fault == FaultMode::DroppedPurgeAudited {
                let detected =
                    (machine.dropped_scrub_log().len() + machine.dropped_purge_log().len()) as u64;
                if detected > 0 {
                    ctx.dropped_detected += detected;
                    ctx.dropped_recovered += machine.recover_dropped_scrubs();
                }
            }
            audit = FaultAudit {
                dropped_detected: ctx.dropped_detected,
                dropped_recovered: ctx.dropped_recovered,
                dropped_unrecovered: machine.clear_scrub_drop_fault() as u64,
            };
        }

        let spec = SpeculativeAccessCheck::new();
        let isolation = IsolationAuditor::new().audit(&machine, arch, &spec);
        *slot = Some(machine);

        let (decoded, threshold) = decode(&probe_cycles, self.noise_floor_cycles);
        let bit_errors = bits.iter().zip(&decoded).filter(|(sent, got)| sent != got).count() as u64;
        let ber = bit_errors as f64 / bits.len() as f64;
        let capacity_bits_per_slot = 1.0 - binary_entropy(ber);
        let slot_cycles = payload_cycles as f64 / bits.len() as f64;
        let capacity_bits_per_second =
            capacity_bits_per_slot * self.config.clock_ghz * 1e9 / slot_cycles.max(1.0);

        Ok((
            AttackOutcome {
                channel: self.name().to_string(),
                arch,
                payload_bits: bits.len() as u64,
                bit_errors,
                ber,
                threshold_cycles: threshold,
                min_probe_cycles: probe_cycles.iter().copied().min().unwrap_or(0),
                max_probe_cycles: probe_cycles.iter().copied().max().unwrap_or(0),
                capacity_bits_per_slot,
                capacity_bits_per_second,
                payload_cycles,
                secure_cores,
                verdict: ChannelVerdict::from_ber(ber),
                isolation,
            },
            audit,
        ))
    }

    /// One transmission slot. Returns `(probe_cycles, slot_cycles)` where
    /// the probe is the attacker's timed sweep of the moved (or, under the
    /// temporal architectures, shared) slices.
    fn slot(
        &self,
        machine: &mut Machine,
        manager: &mut Option<ClusterManager>,
        arch: Architecture,
        ctx: &mut SlotCtx,
        bit: bool,
    ) -> Result<(u64, u64), RunError> {
        let mut total = 0u64;

        // The secret-dependent burst: dirty-write a fresh buffer spread over
        // the victim's current slices. A 0 transmits by staying idle.
        if bit {
            let base = VICTIM_BASE + ctx.bursts * ctx.victim_pages * ctx.page_bytes;
            ctx.bursts += 1;
            total += touch_pages(
                machine,
                ctx.victim_core,
                ctx.victim,
                base,
                ctx.victim_pages,
                ctx.page_bytes,
                ctx.line_bytes,
                true,
            );
        }

        let sweep_base = SWEEP_BASE + ctx.sweeps * ctx.sweep_pages * ctx.page_bytes;
        ctx.sweeps += 1;

        if let Some(m) = manager.as_mut() {
            // IRONHIDE: shrink the secure cluster under the configured purge
            // ordering. The window callback is the first point insecure
            // traffic can flow; the attacker's timed sweep runs there,
            // evicting whatever the moved slices still hold.
            let audited = self.fault == FaultMode::DroppedPurgeAudited;
            let mut probe = 0u64;
            let mut detected = 0u64;
            let mut recovered = 0u64;
            total += m.reconfigure_windowed(
                machine,
                ctx.victim,
                ctx.attacker,
                ctx.narrow,
                self.order,
                |mach| {
                    // The audited discipline runs the scrub audit at the top
                    // of every window — dropped purge packets are detected
                    // and replayed *before* any insecure access can time the
                    // residue they left behind.
                    if audited {
                        detected = (mach.dropped_scrub_log().len() + mach.dropped_purge_log().len())
                            as u64;
                        recovered = mach.recover_dropped_scrubs();
                    }
                    probe = touch_pages(
                        mach,
                        ctx.attacker_core,
                        ctx.attacker,
                        sweep_base,
                        ctx.sweep_pages,
                        ctx.page_bytes,
                        ctx.line_bytes,
                        false,
                    );
                },
            )?;
            ctx.dropped_detected += detected;
            ctx.dropped_recovered += recovered;
            total += probe;
            // Grow back for the next slot — always under the shipped order;
            // only the measured shrink carries the injected fault.
            total += m.reconfigure(machine, ctx.victim, ctx.attacker, ctx.wide)?;
            Ok((probe, total))
        } else {
            // Temporally shared architectures: no reconfiguration exists, so
            // the sweep simply runs after the victim's secure phase ends.
            total += match arch {
                Architecture::Insecure => 0,
                Architecture::SgxLike => {
                    machine.clock().us_to_cycles(self.params.sgx_entry_exit_us)
                }
                Architecture::Mi6 => mi6_boundary_cost(machine, &self.params),
                Architecture::Ironhide => unreachable!("IRONHIDE slots go through the manager"),
                // The temporal fence's domain switch: erase the configured
                // flush set, charge its state-independent worst-case cost.
                Architecture::TemporalFence => {
                    let fence = self.config.temporal_fence;
                    machine.temporal_flush(fence.set);
                    fence.switch_cost(&self.config)
                }
            };
            let probe = touch_pages(
                machine,
                ctx.attacker_core,
                ctx.attacker,
                sweep_base,
                ctx.sweep_pages,
                ctx.page_bytes,
                ctx.line_bytes,
                false,
            );
            total += probe;
            Ok((probe, total))
        }
    }
}

/// Touches every line of `pages` consecutive pages from `base`, returning
/// the summed access latencies (the attacker sees nothing a real attacker
/// could not time on its own loads).
#[allow(clippy::too_many_arguments)]
fn touch_pages(
    machine: &mut Machine,
    core: NodeId,
    pid: ProcessId,
    base: u64,
    pages: u64,
    page_bytes: u64,
    line_bytes: u64,
    write: bool,
) -> u64 {
    let mut cycles = 0u64;
    for p in 0..pages {
        let page = base + p * page_bytes;
        for l in 0..(page_bytes / line_bytes) {
            cycles += machine.access(core, pid, page + l * line_bytes, write);
        }
    }
    cycles
}

/// Wraps the window attack as an attack-matrix channel spec under the given
/// purge ordering, with the payload length following the scale label.
pub fn window_attack_spec(order: PurgeOrder) -> AttackSpec {
    let label = match order {
        PurgeOrder::PurgeThenRehome => SHIPPED_LABEL,
        PurgeOrder::RehomeThenPurge => MISORDERED_LABEL,
    };
    AttackSpec::new(label, move |config: &MachineConfig, arch, scale, seed, machine| {
        WindowAttack::new(config.clone(), order)
            .with_payload_bits(LeakageOracle::payload_for_scale(scale.label()))
            .assess_recycled(arch, seed, machine)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbench() -> MachineConfig {
        MachineConfig::attack_testbench()
    }

    #[test]
    fn shipped_ordering_closes_the_window_on_ironhide() {
        let attack = WindowAttack::new(testbench(), PurgeOrder::PurgeThenRehome);
        let outcome = attack.assess(Architecture::Ironhide, 7).unwrap();
        assert!(
            outcome.is_closed(),
            "shipped purge order must close the window: BER {} (probes {}..{})",
            outcome.ber,
            outcome.min_probe_cycles,
            outcome.max_probe_cycles
        );
        assert!((outcome.ber - 0.5).abs() <= 0.05, "BER {}", outcome.ber);
        assert!(outcome.isolation.is_clean(), "violations: {:?}", outcome.isolation.violations);
        assert_eq!(outcome.secure_cores, testbench().cores() / 2);
    }

    #[test]
    fn injected_misordering_opens_the_window_on_ironhide() {
        let attack = WindowAttack::new(testbench(), PurgeOrder::RehomeThenPurge);
        let outcome = attack.assess(Architecture::Ironhide, 7).unwrap();
        assert!(
            outcome.is_open(),
            "rehome-before-purge must leak through the window: BER {} (probes {}..{})",
            outcome.ber,
            outcome.min_probe_cycles,
            outcome.max_probe_cycles
        );
        assert_eq!(outcome.channel, MISORDERED_LABEL);
    }

    #[test]
    fn audited_dropped_purge_recovery_keeps_the_window_closed() {
        let attack = WindowAttack::new(testbench(), PurgeOrder::PurgeThenRehome)
            .with_fault(FaultMode::DroppedPurgeAudited, 800);
        let (outcome, audit) = attack.assess_faulted(Architecture::Ironhide, 7, &mut None).unwrap();
        assert!(
            outcome.is_closed(),
            "audited recovery must keep the window closed: BER {} (probes {}..{})",
            outcome.ber,
            outcome.min_probe_cycles,
            outcome.max_probe_cycles
        );
        assert!((outcome.ber - 0.5).abs() <= 0.05, "BER {}", outcome.ber);
        assert_eq!(outcome.channel, AUDITED_DROP_LABEL);
        assert!(audit.dropped_detected > 0, "the fault must actually drop packets");
        assert!(audit.is_clean(), "recovery must be complete: {audit:?}");
    }

    #[test]
    fn unaudited_dropped_purge_pins_the_window_open() {
        let attack = WindowAttack::new(testbench(), PurgeOrder::PurgeThenRehome)
            .with_fault(FaultMode::DroppedPurgeUnaudited, 800);
        let (outcome, audit) = attack.assess_faulted(Architecture::Ironhide, 7, &mut None).unwrap();
        assert!(
            outcome.is_open(),
            "unaudited drops must leak through the window: BER {} (probes {}..{})",
            outcome.ber,
            outcome.min_probe_cycles,
            outcome.max_probe_cycles
        );
        assert_eq!(outcome.channel, UNAUDITED_DROP_LABEL);
        assert_eq!(audit.dropped_detected, 0, "nobody audited");
        assert!(audit.dropped_unrecovered > 0, "residue must remain: {audit:?}");
    }

    #[test]
    fn window_is_open_on_the_insecure_baseline() {
        // No clusters, no purges: the same evict-and-sweep decodes the
        // victim's dirty footprint directly from the shared L2.
        let attack = WindowAttack::new(testbench(), PurgeOrder::PurgeThenRehome);
        let outcome = attack.assess(Architecture::Insecure, 7).unwrap();
        assert!(outcome.is_open(), "insecure baseline must leak: BER {}", outcome.ber);
    }

    #[test]
    fn mi6_boundary_purges_close_the_window() {
        let attack = WindowAttack::new(testbench(), PurgeOrder::PurgeThenRehome);
        let outcome = attack.assess(Architecture::Mi6, 7).unwrap();
        assert!(outcome.is_closed(), "MI6 static partition must not leak: BER {}", outcome.ber);
        assert!(outcome.isolation.is_clean(), "violations: {:?}", outcome.isolation.violations);
    }

    #[test]
    fn recycled_assessment_is_byte_identical() {
        let attack = WindowAttack::new(testbench(), PurgeOrder::RehomeThenPurge);
        let fresh = attack.assess(Architecture::Ironhide, 11).unwrap();
        let mut pool = None;
        // Dirty the pool with a different-seed run first, then re-assess.
        attack.assess_recycled(Architecture::Ironhide, 5, &mut pool).unwrap();
        let recycled = attack.assess_recycled(Architecture::Ironhide, 11, &mut pool).unwrap();
        assert_eq!(fresh.ber, recycled.ber);
        assert_eq!(fresh.min_probe_cycles, recycled.min_probe_cycles);
        assert_eq!(fresh.max_probe_cycles, recycled.max_probe_cycles);
        assert_eq!(fresh.payload_cycles, recycled.payload_cycles);
    }

    #[test]
    fn spec_labels_follow_the_order() {
        assert_eq!(window_attack_spec(PurgeOrder::PurgeThenRehome).label(), SHIPPED_LABEL);
        assert_eq!(window_attack_spec(PurgeOrder::RehomeThenPurge).label(), MISORDERED_LABEL);
    }
}
