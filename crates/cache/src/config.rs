//! Cache and TLB geometry configuration.

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (number of ways per set).
    pub ways: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
}

impl CacheConfig {
    /// Creates a configuration, validating that the geometry is consistent.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero, if `line_bytes` or `ways` do not
    /// divide the capacity, or if any parameter is not a power of two.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(size_bytes > 0 && ways > 0 && line_bytes > 0, "cache geometry must be non-zero");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(
            size_bytes.is_multiple_of(ways * line_bytes),
            "capacity must be divisible by ways * line"
        );
        let sets = size_bytes / (ways * line_bytes);
        assert!(sets.is_power_of_two(), "number of sets must be a power of two");
        CacheConfig { size_bytes, ways, line_bytes }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// The paper machine's private L1 data cache: 32 KB, 4-way, 64 B lines.
    pub fn paper_l1() -> Self {
        CacheConfig::new(32 * 1024, 4, 64)
    }

    /// The paper machine's per-tile shared L2 slice: 256 KB, 8-way, 64 B lines.
    pub fn paper_l2_slice() -> Self {
        CacheConfig::new(256 * 1024, 8, 64)
    }
}

/// Geometry of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes.
    pub page_bytes: usize,
}

impl TlbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or `page_bytes` is not a power of two.
    pub fn new(entries: usize, page_bytes: usize) -> Self {
        assert!(entries > 0, "TLB must have at least one entry");
        assert!(page_bytes.is_power_of_two() && page_bytes > 0, "page size must be a power of two");
        TlbConfig { entries, page_bytes }
    }

    /// The paper machine's private data TLB: 32 entries, 4 KB pages.
    pub fn paper_dtlb() -> Self {
        TlbConfig::new(32, 4096)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l1_geometry() {
        let c = CacheConfig::paper_l1();
        assert_eq!(c.sets(), 128);
        assert_eq!(c.lines(), 512);
    }

    #[test]
    fn paper_l2_geometry() {
        let c = CacheConfig::paper_l2_slice();
        assert_eq!(c.sets(), 512);
        assert_eq!(c.lines(), 4096);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        CacheConfig::new(3 * 1024, 4, 64);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_ways_rejected() {
        CacheConfig::new(1024, 0, 64);
    }

    #[test]
    fn tlb_defaults() {
        let t = TlbConfig::paper_dtlb();
        assert_eq!(t.entries, 32);
        assert_eq!(t.page_bytes, 4096);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_entry_tlb_rejected() {
        TlbConfig::new(0, 4096);
    }
}
