//! The core re-allocation predictor.
//!
//! IRONHIDE's secure kernel decides, once per interactive-application
//! invocation, how many cores (with their L1/TLB, L2 slice and share of the
//! memory controllers) the secure cluster receives. The paper evaluates
//! (Figure 8):
//!
//! * the **Heuristic** — a gradient-based search that probes a few candidate
//!   allocations with a short profiling sample and follows the slope of the
//!   predicted completion time;
//! * **Optimal** — an exhaustive search over every allocation, charged no
//!   overhead, as an upper bound;
//! * **fixed ±x % variations** — the Optimal allocation perturbed by a fixed
//!   percentage of the machine's cores, quantifying how sensitive performance
//!   is to mis-prediction.

use std::fmt;

/// Policy used to choose the secure cluster's core count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReallocPolicy {
    /// Keep the initial allocation (half the cores); no search, no
    /// reconfiguration overhead beyond the initial formation. Used as an
    /// ablation of dynamic hardware isolation.
    Static,
    /// The paper's gradient-based heuristic search.
    Heuristic,
    /// Exhaustive search over all feasible allocations with no overhead
    /// charged (the paper's "Optimal").
    Optimal,
    /// The Optimal allocation shifted by this percentage of the machine's
    /// cores (positive: the secure cluster gets more cores; negative: cores
    /// are taken away and given to the insecure cluster).
    FixedOffset(i32),
}

impl ReallocPolicy {
    /// The policies evaluated in Figure 8, in presentation order.
    pub fn figure8_set() -> Vec<ReallocPolicy> {
        vec![
            ReallocPolicy::Heuristic,
            ReallocPolicy::Optimal,
            ReallocPolicy::FixedOffset(-25),
            ReallocPolicy::FixedOffset(-10),
            ReallocPolicy::FixedOffset(-5),
            ReallocPolicy::FixedOffset(5),
            ReallocPolicy::FixedOffset(10),
            ReallocPolicy::FixedOffset(25),
        ]
    }

    /// Whether the decision's reconfiguration overhead is charged to the
    /// application's completion time (the paper charges everything except the
    /// idealised Optimal).
    pub fn charges_overhead(self) -> bool {
        !matches!(self, ReallocPolicy::Optimal)
    }
}

impl fmt::Display for ReallocPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReallocPolicy::Static => write!(f, "Static"),
            ReallocPolicy::Heuristic => write!(f, "Heuristic"),
            ReallocPolicy::Optimal => write!(f, "Optimal"),
            ReallocPolicy::FixedOffset(percent) => write!(f, "Fixed{percent:+}%"),
        }
    }
}

/// The decision produced by a policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReallocDecision {
    /// Cores allocated to the secure cluster.
    pub secure_cores: usize,
    /// Number of candidate allocations the predictor evaluated.
    pub evaluations: u64,
    /// Whether reconfiguration overhead must be added to the completion time.
    pub charge_overhead: bool,
}

impl ReallocPolicy {
    /// Chooses the secure cluster size for a machine of `total_cores` cores,
    /// starting from `initial` (the paper starts at half), using `predict` to
    /// estimate the completion time of a candidate allocation. Lower predicted
    /// values are better. `predict` is typically backed by a short sample
    /// simulation of the application.
    pub fn decide<F>(self, total_cores: usize, initial: usize, mut predict: F) -> ReallocDecision
    where
        F: FnMut(usize) -> f64,
    {
        assert!(total_cores >= 2, "need at least two cores to form two clusters");
        let clamp = |n: i64| -> usize { n.clamp(1, total_cores as i64 - 1) as usize };
        let initial = clamp(initial as i64);
        match self {
            ReallocPolicy::Static => {
                ReallocDecision { secure_cores: initial, evaluations: 0, charge_overhead: false }
            }
            ReallocPolicy::Heuristic => {
                // The gradient walk revisits candidates: after every improving
                // round one of `best ± step` is the point the walk just came
                // from, and clamping folds out-of-range candidates onto points
                // already probed. `predict` is a pure function of the
                // candidate (each probe simulates the same sample on a
                // pristine scratch machine), so re-probes are memoised — the
                // score, the decision and the evaluation count are identical
                // to the unmemoised walk; only the redundant simulations
                // disappear.
                let mut memo: Vec<Option<f64>> = vec![None; total_cores];
                let mut evaluations = 0u64;
                let mut eval = |candidate: usize, evaluations: &mut u64| -> f64 {
                    *evaluations += 1;
                    *memo[candidate].get_or_insert_with(|| predict(candidate))
                };
                let mut best = initial;
                let mut best_score = eval(best, &mut evaluations);
                let mut step = (total_cores / 4).max(1);
                while step >= 1 {
                    let mut improved = false;
                    for candidate in
                        [clamp(best as i64 - step as i64), clamp(best as i64 + step as i64)]
                    {
                        if candidate == best {
                            continue;
                        }
                        let score = eval(candidate, &mut evaluations);
                        if score < best_score {
                            best_score = score;
                            best = candidate;
                            improved = true;
                        }
                    }
                    if !improved {
                        if step == 1 {
                            break;
                        }
                        step /= 2;
                    }
                }
                ReallocDecision { secure_cores: best, evaluations, charge_overhead: true }
            }
            ReallocPolicy::Optimal => {
                let (best, evaluations) = exhaustive_search(total_cores, &mut predict);
                ReallocDecision { secure_cores: best, evaluations, charge_overhead: false }
            }
            ReallocPolicy::FixedOffset(percent) => {
                let (optimal, evaluations) = exhaustive_search(total_cores, &mut predict);
                let delta = (total_cores as f64 * percent as f64 / 100.0).round() as i64;
                ReallocDecision {
                    secure_cores: clamp(optimal as i64 + delta),
                    evaluations,
                    charge_overhead: true,
                }
            }
        }
    }
}

/// Evaluates every feasible secure-cluster size and returns the best one and
/// the number of evaluations performed.
fn exhaustive_search(total_cores: usize, predict: &mut dyn FnMut(usize) -> f64) -> (usize, u64) {
    let mut evaluations = 0u64;
    let mut best = 1;
    let mut best_score = f64::INFINITY;
    for candidate in 1..total_cores {
        evaluations += 1;
        let score = predict(candidate);
        if score < best_score {
            best_score = score;
            best = candidate;
        }
    }
    (best, evaluations)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A convex cost surface with its minimum at `opt`.
    fn convex(opt: usize) -> impl FnMut(usize) -> f64 {
        move |n: usize| ((n as f64) - opt as f64).powi(2) + 10.0
    }

    #[test]
    fn static_keeps_initial() {
        let d = ReallocPolicy::Static.decide(64, 32, convex(8));
        assert_eq!(d.secure_cores, 32);
        assert_eq!(d.evaluations, 0);
    }

    #[test]
    fn optimal_finds_global_minimum() {
        let d = ReallocPolicy::Optimal.decide(64, 32, convex(5));
        assert_eq!(d.secure_cores, 5);
        assert_eq!(d.evaluations, 63);
        assert!(!d.charge_overhead);
    }

    #[test]
    fn heuristic_converges_on_convex_surfaces() {
        for opt in [2usize, 8, 20, 32, 47, 62] {
            let d = ReallocPolicy::Heuristic.decide(64, 32, convex(opt));
            assert!(
                (d.secure_cores as i64 - opt as i64).abs() <= 2,
                "heuristic landed at {} for optimum {opt}",
                d.secure_cores
            );
            assert!(d.evaluations < 63, "heuristic must be cheaper than exhaustive search");
            assert!(d.charge_overhead);
        }
    }

    #[test]
    fn heuristic_memoises_revisited_candidates() {
        // The walk 32 → 16 → 8 → ... revisits the point it came from every
        // improving round; those probes must be served from the memo, not
        // re-simulated.
        let mut simulations = 0u64;
        let mut f = convex(8);
        let d = ReallocPolicy::Heuristic.decide(64, 32, |n| {
            simulations += 1;
            f(n)
        });
        assert!(
            simulations < d.evaluations,
            "revisited candidates must not re-simulate ({simulations} simulations, \
             {} evaluations)",
            d.evaluations
        );
        // The memo must not change the decision or the logical evaluation
        // count: this walk's trajectory is fixed by the convex surface.
        let d_ref = ReallocPolicy::Heuristic.decide(64, 32, convex(8));
        assert_eq!(d.secure_cores, d_ref.secure_cores);
        assert_eq!(d.evaluations, d_ref.evaluations);
    }

    #[test]
    fn fixed_offsets_shift_from_optimal() {
        let plus = ReallocPolicy::FixedOffset(25).decide(64, 32, convex(20));
        assert_eq!(plus.secure_cores, 36); // 20 + 16
        let minus = ReallocPolicy::FixedOffset(-25).decide(64, 32, convex(20));
        assert_eq!(minus.secure_cores, 4); // 20 - 16
    }

    #[test]
    fn decisions_are_clamped_to_valid_cluster_sizes() {
        let d = ReallocPolicy::FixedOffset(-50).decide(64, 32, convex(3));
        assert_eq!(d.secure_cores, 1);
        let d = ReallocPolicy::FixedOffset(50).decide(64, 32, convex(62));
        assert_eq!(d.secure_cores, 63);
    }

    #[test]
    fn figure8_policy_set_is_complete() {
        let set = ReallocPolicy::figure8_set();
        assert_eq!(set.len(), 8);
        assert!(set.contains(&ReallocPolicy::Heuristic));
        assert!(set.contains(&ReallocPolicy::Optimal));
        assert!(set.contains(&ReallocPolicy::FixedOffset(25)));
    }

    #[test]
    fn overhead_charging_rules() {
        assert!(ReallocPolicy::Heuristic.charges_overhead());
        assert!(!ReallocPolicy::Optimal.charges_overhead());
        assert!(ReallocPolicy::FixedOffset(5).charges_overhead());
    }
}
