//! Fault-injection campaign: graceful degradation and security invariants
//! that survive failure (BENCH_9).
//!
//! The ROADMAP's robustness scenario: tiles die, NoC links degrade, memory
//! controllers stall, and the purge traffic IRONHIDE's isolation leans on is
//! itself dropped mid-reconfiguration. This harness sweeps the
//! {fault kind × rate × degradation discipline} grid through
//! `SweepRunner::run_faults` — every cell a seed-deterministic tenant storm
//! replayed under an injected `FaultSchedule` — and reports conservation
//! counts, quarantine/backoff/recovery tallies and exact-sample SLO tails.
//!
//! Four in-process gates run before the report is written:
//!
//! 1. **Thread identity** — the fault matrix is serialised at 1, 2 and 8
//!    worker threads and must be byte-identical (the determinism contract
//!    every sweep in this workspace carries).
//! 2. **Conservation** — every cell, however hard it was faulted, must
//!    satisfy `admitted + denied + queued + failed_recovered == arrived`:
//!    degradation may slow tenants down but never loses one.
//! 3. **Bounded degradation** — each faulted cell's p99 completion latency
//!    must stay within a fixed factor of its same-kind, same-discipline
//!    healthy baseline (the rate-0 cell), so "graceful" is a measured claim.
//! 4. **Fault-channel verdicts** — the reconfiguration-window attack is
//!    re-run with dropped-purge faults injected: the audited discipline must
//!    judge CLOSED with a clean scrub audit (detection-then-recovery works
//!    under fire), and the unaudited fail-open variant must judge OPEN (the
//!    negative control proving the audit is load-bearing, not decorative).
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ironhide-bench --bin faults            # full grid
//! cargo run --release -p ironhide-bench --bin faults -- --smoke # CI smoke
//! cargo run --release -p ironhide-bench --bin faults -- --out path.json
//! ```

use std::time::Instant;

use ironhide_attacks::window::{FaultMode, WindowAttack};
use ironhide_core::arch::Architecture;
use ironhide_core::attack::ChannelVerdict;
use ironhide_core::cluster::PurgeOrder;
use ironhide_core::faults::{FaultArch, FaultGrid, FaultKind, FaultMatrix};
use ironhide_core::sweep::SweepRunner;
use ironhide_core::tenancy::{AdmissionPolicy, StormConfig};
use ironhide_sim::config::MachineConfig;
use ironhide_workloads::{tenant_profiles, AppId};

/// Master seed of the fault campaign (arbitrary but fixed forever: changing
/// it would make the campaign checksums incomparable across PRs).
const MASTER_SEED: u64 = 11;

/// Seed of the fault-channel verdict rows (matches the window-attack tests).
const WINDOW_SEED: u64 = 7;

/// Drop rate of the fault-channel rows, per-mille. High enough that the
/// unaudited variant reliably decodes OPEN — the negative control needs a
/// strong signal to be meaningful (matches the window-attack tests).
const WINDOW_DROP_RATE: u32 = 800;

/// Gate 3's bound: a faulted cell's p99 completion latency must stay within
/// this factor of its healthy (rate-0) same-kind, same-discipline baseline.
const SLO_DEGRADATION_FACTOR: u64 = 10;

/// Thread counts the fault matrix must be byte-identical across.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0)
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_9.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: faults [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let label = if smoke { "smoke" } else { "full" };
    let grid = fault_grid(smoke);

    // Gate 1: the matrix must serialise byte-identically at every thread
    // count. The single-threaded pass is the canonical one reported.
    eprintln!(
        "faults: running {label} campaign ({} cells) at {THREAD_COUNTS:?} threads...",
        grid.len()
    );
    let mut canonical: Option<(FaultMatrix, String)> = None;
    let mut sweep_walls = Vec::with_capacity(THREAD_COUNTS.len());
    for threads in THREAD_COUNTS {
        let runner = SweepRunner::new(MachineConfig::paper_default())
            .with_threads(threads)
            .with_seed(MASTER_SEED);
        let start = Instant::now();
        let matrix = runner.run_faults(&grid).unwrap_or_else(|e| {
            eprintln!("faults: sweep failed: {e}");
            std::process::exit(1);
        });
        sweep_walls.push((threads, start.elapsed().as_secs_f64()));
        let json = matrix.to_json();
        match &canonical {
            None => canonical = Some((matrix, json)),
            Some((_, reference)) => {
                if *reference != json {
                    eprintln!("faults: DIVERGENCE — matrix at {threads} threads differs from 1");
                    std::process::exit(1);
                }
            }
        }
    }
    let (matrix, _) = canonical.expect("at least one thread count ran");

    // Gate 2: conservation — no tenant is ever lost, only delayed or
    // re-routed, whatever broke underneath.
    for cell in &matrix.cells {
        let r = &cell.report;
        if !r.conserves_tenants() {
            eprintln!(
                "faults: CONSERVATION FAILURE in [{}]: {} + {} + {} + {} != {}",
                cell.key, r.admitted, r.denied, r.queued, r.failed_recovered, r.arrived
            );
            std::process::exit(1);
        }
        if cell.key.arch.audited() && r.dropped_scrubs_unrecovered != 0 {
            eprintln!(
                "faults: AUDIT FAILURE in [{}]: {} dropped packets left unrecovered",
                cell.key, r.dropped_scrubs_unrecovered
            );
            std::process::exit(1);
        }
    }

    // Gate 3: bounded degradation against each (kind, arch)'s rate-0 cell.
    for cell in &matrix.cells {
        if cell.key.rate_per_mille == 0 {
            continue;
        }
        let baseline = matrix.get(cell.key.kind, 0, cell.key.arch).unwrap_or_else(|| {
            eprintln!("faults: grid has no healthy baseline for [{}]", cell.key);
            std::process::exit(1);
        });
        let base_p99 = baseline.report.slo.completion_percentile(99, 100).max(1);
        let faulted_p99 = cell.report.slo.completion_percentile(99, 100);
        if faulted_p99 > base_p99.saturating_mul(SLO_DEGRADATION_FACTOR) {
            eprintln!(
                "faults: DEGRADATION FAILURE in [{}]: p99 {faulted_p99} > {SLO_DEGRADATION_FACTOR}x healthy {base_p99}",
                cell.key
            );
            std::process::exit(1);
        }
    }

    // Gate 4: the fault-channel verdict rows — isolation must survive the
    // fault when audited, and demonstrably not survive it when not.
    eprintln!("faults: judging the faulted reconfiguration-window channel...");
    let channel_rows = fault_channel_rows();
    for row in &channel_rows {
        if row.outcome.verdict != row.expected {
            eprintln!(
                "faults: CHANNEL VERDICT FAILURE — {} judged {} (BER {}), expected {}",
                row.outcome.channel, row.outcome.verdict, row.outcome.ber, row.expected
            );
            std::process::exit(1);
        }
    }

    let report = render_report(label, &matrix, &channel_rows, &sweep_walls);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("faults: wrote {out_path}");
    println!("{report}");
}

/// The {kind × rate × arch} campaign grid over one tenant storm.
fn fault_grid(smoke: bool) -> FaultGrid {
    let (tenants, rates): (usize, &[u32]) =
        if smoke { (40, &[0, 200]) } else { (120, &[0, 120, 500]) };
    let storm = StormConfig {
        tenants,
        mean_interarrival_cycles: 30_000,
        mean_service_scale: 1,
        host_reserve_cores: 8,
        profiles: tenant_profiles(&AppId::ALL),
    };
    let mut grid = FaultGrid::new(storm, AdmissionPolicy::Queue);
    for kind in FaultKind::ALL {
        grid = grid.with_kind(kind);
    }
    for rate in rates {
        grid = grid.with_rate(*rate);
    }
    for arch in FaultArch::ALL {
        grid = grid.with_arch(arch);
    }
    grid
}

/// One fault-channel verdict row: the expected verdict, the measured attack
/// outcome and the scrub audit's tally.
struct ChannelRow {
    expected: ChannelVerdict,
    outcome: ironhide_core::attack::AttackOutcome,
    audit: ironhide_attacks::FaultAudit,
}

/// The differential rows of gate 4: audited dropped-purge recovery must keep
/// the window CLOSED with a clean audit; the unaudited fail-open variant is
/// the negative control and must be pinned OPEN.
fn fault_channel_rows() -> Vec<ChannelRow> {
    let config = MachineConfig::attack_testbench();
    let run = |mode: FaultMode, expected: ChannelVerdict| {
        let attack = WindowAttack::new(config.clone(), PurgeOrder::PurgeThenRehome)
            .with_fault(mode, WINDOW_DROP_RATE);
        let (outcome, audit) = attack
            .assess_faulted(Architecture::Ironhide, WINDOW_SEED, &mut None)
            .unwrap_or_else(|e| {
                eprintln!("faults: window attack failed: {e}");
                std::process::exit(1);
            });
        if expected == ChannelVerdict::Closed {
            if !audit.is_clean() {
                eprintln!("faults: CHANNEL AUDIT FAILURE — closed row has dirty audit: {audit:?}");
                std::process::exit(1);
            }
            if audit.dropped_detected == 0 {
                eprintln!("faults: CHANNEL FAULT FAILURE — closed row dropped nothing");
                std::process::exit(1);
            }
        } else if audit.dropped_unrecovered == 0 {
            eprintln!("faults: NEGATIVE CONTROL FAILURE — open row left no residue");
            std::process::exit(1);
        }
        ChannelRow { expected, outcome, audit }
    };
    vec![
        run(FaultMode::DroppedPurgeAudited, ChannelVerdict::Closed),
        run(FaultMode::DroppedPurgeUnaudited, ChannelVerdict::Open),
    ]
}

/// Renders the measurement as deterministic-layout JSON (timing fields vary
/// run to run; everything else, including every checksum, must not).
fn render_report(
    grid_label: &str,
    matrix: &FaultMatrix,
    channel_rows: &[ChannelRow],
    sweep_walls: &[(usize, f64)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"fault_campaign\",\n");
    out.push_str(&format!("  \"grid\": \"{grid_label}\",\n"));
    out.push_str(&format!("  \"master_seed\": {MASTER_SEED},\n"));
    out.push_str(&format!("  \"campaign_checksum\": {},\n", matrix.checksum()));
    out.push_str(&format!("  \"thread_counts_identical\": {THREAD_COUNTS:?},\n"));
    out.push_str(&format!("  \"slo_degradation_factor_bound\": {SLO_DEGRADATION_FACTOR},\n"));

    out.push_str("  \"cells\": [\n");
    for (i, cell) in matrix.cells.iter().enumerate() {
        let r = &cell.report;
        let sep = if i + 1 == matrix.cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"rate_per_mille\": {}, \"arch\": \"{}\", \
             \"arrived\": {}, \"admitted\": {}, \"denied\": {}, \"queued\": {}, \
             \"failed_recovered\": {}, \"conserved\": {}, \"faults_injected\": {}, \
             \"quarantined_tiles\": {}, \"backoff_retries\": {}, \
             \"dropped_scrubs_detected\": {}, \"dropped_scrubs_recovered\": {}, \
             \"dropped_scrubs_unrecovered\": {}, \"completion_p50_cycles\": {}, \
             \"completion_p99_cycles\": {}, \"stall_p99_cycles\": {}, \
             \"reconfigurations\": {}, \"slo_checksum\": {}}}{sep}\n",
            cell.key.kind.label(),
            cell.key.rate_per_mille,
            cell.key.arch.label(),
            r.arrived,
            r.admitted,
            r.denied,
            r.queued,
            r.failed_recovered,
            r.conserves_tenants(),
            r.faults_injected,
            r.quarantined_tiles,
            r.backoff_retries,
            r.dropped_scrubs_detected,
            r.dropped_scrubs_recovered,
            r.dropped_scrubs_unrecovered,
            r.slo.completion_percentile(1, 2),
            r.slo.completion_percentile(99, 100),
            r.slo.stall_percentile(99, 100),
            r.reconfigurations,
            r.slo.checksum(),
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"fault_channel\": [\n");
    for (i, row) in channel_rows.iter().enumerate() {
        let o = &row.outcome;
        let sep = if i + 1 == channel_rows.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"channel\": \"{}\", \"arch\": \"{}\", \"drop_rate_per_mille\": {WINDOW_DROP_RATE}, \
             \"payload_bits\": {}, \"bit_errors\": {}, \"ber\": {:.4}, \"verdict\": \"{}\", \
             \"expected\": \"{}\", \"dropped_detected\": {}, \"dropped_recovered\": {}, \
             \"dropped_unrecovered\": {}, \"audit_clean\": {}, \"isolation_clean\": {}}}{sep}\n",
            o.channel,
            o.arch,
            o.payload_bits,
            o.bit_errors,
            o.ber,
            o.verdict,
            row.expected,
            row.audit.dropped_detected,
            row.audit.dropped_recovered,
            row.audit.dropped_unrecovered,
            row.audit.is_clean(),
            o.isolation.is_clean(),
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"sweep_wall_seconds\": {\n");
    for (i, (threads, wall)) in sweep_walls.iter().enumerate() {
        let sep = if i + 1 == sweep_walls.len() { "" } else { "," };
        out.push_str(&format!("    \"{threads}\": {wall:.6}{sep}\n"));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"peak_rss_bytes\": {},\n", peak_rss_bytes()));
    out.push_str(&format!("  \"available_parallelism\": {}\n", available_parallelism()));
    out.push_str("}\n");
    out
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}
