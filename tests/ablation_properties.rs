//! Property tests of the temporal-fence defence ablation: flush-subset
//! monotonicity (in both charged cost and channel verdict), thread-count
//! byte-identity of the ablation matrix, and the cross-process pin that ties
//! the facade's view of the smoke grid to the `ablation` bench binary's.

use ironhide::prelude::*;
use proptest::prelude::*;

/// The `ablation` binary's master seed; the cross-process pin below only
/// holds against the grid that binary actually sweeps.
const BENCH_MASTER_SEED: u64 = 0xAB1A_7104;

/// The smoke ablation checksum the `ablation --smoke` binary reports (and CI
/// pins). Recomputing it here, in a different process from a different
/// crate, proves the ablation matrix is a pure function of (seed, grid) —
/// not of process layout, ASLR, linkage order or thread scheduling.
const BENCH_SMOKE_CHECKSUM: u64 = 1172886106034387684;

/// Builds a flush subset from the low 6 bits of `bits`, one per resource in
/// canonical order — the whole 64-element subset lattice is reachable.
fn subset_from_bits(bits: u8) -> FlushSet {
    FlushResource::ALL
        .into_iter()
        .enumerate()
        .filter(|(i, _)| bits & (1 << i) != 0)
        .fold(FlushSet::EMPTY, |set, (_, r)| set.with(r))
}

/// Runs the given subsets against the given channels on the covert-channel
/// testbench, in one deterministic sweep.
fn run_subsets(
    subsets: Vec<AblationSpec>,
    channels: Vec<AttackSpec>,
    seed: u64,
    threads: usize,
) -> AblationMatrix {
    let mut grid = AblationGrid::new().with_scale(ScalePoint::new("Smoke"));
    for s in subsets {
        grid = grid.with_subset(s);
    }
    for c in channels {
        grid = grid.with_channel(c);
    }
    SweepRunner::new(MachineConfig::attack_testbench())
        .with_seed(seed)
        .with_threads(threads)
        .run_ablation(&grid)
        .expect("ablation sweep runs")
}

/// The `ablation --smoke` grid, replicated field for field.
fn bench_smoke_matrix(threads: usize) -> AblationMatrix {
    run_subsets(smoke_subsets(), ablation_channels(), BENCH_MASTER_SEED, threads)
}

/// Recovers the flush set a matrix row ran with from its subset label (the
/// inverse of [`FlushSet::label`], with the "simf" preset row mapped to the
/// full set it flushes).
fn set_from_label(label: &str) -> FlushSet {
    match label {
        "none" => FlushSet::EMPTY,
        "simf" => FlushSet::FULL,
        _ => label.split('+').fold(FlushSet::EMPTY, |set, part| {
            let resource = FlushResource::ALL
                .into_iter()
                .find(|r| r.label() == part)
                .unwrap_or_else(|| panic!("unknown resource label {part:?} in {label:?}"));
            set.with(resource)
        }),
    }
}

/// Asserts the monotonicity contract over every ⊆-ordered pair of subset
/// rows in `matrix`, for every (channel, scale): growing the flush set never
/// flips a verdict from CLOSED back to OPEN, and never lowers the charged
/// switch cost.
fn assert_matrix_is_monotone(matrix: &AblationMatrix) {
    for a in &matrix.cells {
        for b in &matrix.cells {
            if a.key.channel != b.key.channel || a.key.scale != b.key.scale {
                continue;
            }
            let (sa, sb) = (set_from_label(&a.key.subset), set_from_label(&b.key.subset));
            if !(sa.is_subset_of(sb) && sa != sb) {
                continue;
            }
            assert!(
                a.switch_cost <= b.switch_cost,
                "[{}] charges {} but its superset [{}] only {}",
                a.key,
                a.switch_cost,
                b.key,
                b.switch_cost
            );
            assert!(
                !(a.outcome.is_closed() && b.outcome.is_open()),
                "[{}] is CLOSED (BER {:.3}) but its superset [{}] reopened (BER {:.3})",
                a.key,
                a.outcome.ber,
                b.key,
                b.outcome.ber
            );
        }
    }
}

/// The shipped full ladder (13 subsets × all six channels) is monotone in
/// both verdict and cost over every ⊆-ordered pair of its rows, the
/// zero-flush row leaves every channel OPEN, and the SIMF row closes every
/// channel at the maximum cost of any row.
#[test]
fn shipped_ladder_is_monotone_and_bracketed() {
    let matrix = run_subsets(ablation_subsets(), ablation_channels(), 0xF00D, 4);
    assert_matrix_is_monotone(&matrix);
    let simf_cost = TemporalFenceConfig::simf().switch_cost(&MachineConfig::attack_testbench());
    for cell in &matrix.cells {
        match cell.key.subset.as_str() {
            "none" => {
                assert!(cell.outcome.is_open(), "[{}] closed with nothing flushed", cell.key);
                assert_eq!(cell.switch_cost, 0, "[{}] charged a zero flush", cell.key);
            }
            "simf" => {
                assert!(cell.outcome.is_closed(), "[{}] leaks under SIMF", cell.key);
                assert_eq!(cell.switch_cost, simf_cost);
            }
            _ => assert!(cell.switch_cost < simf_cost, "[{}] out-charges SIMF", cell.key),
        }
    }
}

/// Exhaustive variant of the ladder check: all 64 subsets of the flush
/// lattice against all six channels (384 cells). Too heavy for the default
/// debug-mode test run; `cargo test --release -- --include-ignored` covers
/// it on demand, and the sampled proptest below patrols the same property
/// continuously.
#[test]
#[ignore = "384-cell sweep; run with --include-ignored in release mode"]
fn full_subset_lattice_is_monotone() {
    let subsets = (0u8..64).map(|bits| AblationSpec::subset(subset_from_bits(bits))).collect();
    let matrix = run_subsets(subsets, ablation_channels(), 0xF00D, 8);
    assert_eq!(matrix.cells.len(), 64 * ablation_channels().len());
    assert_matrix_is_monotone(&matrix);
}

/// The serialised smoke ablation must be byte-identical at 1, 2 and 8 worker
/// threads — the same contract the performance, attack, tenancy and fault
/// sweeps carry.
#[test]
fn ablation_matrix_is_byte_identical_across_thread_counts() {
    let baseline = bench_smoke_matrix(1).to_json();
    for threads in [2usize, 8] {
        let json = bench_smoke_matrix(threads).to_json();
        assert_eq!(baseline, json, "thread count {threads} changed the ablation matrix");
    }
}

/// Recomputes the `ablation --smoke` checksum from this test process. If
/// this moves, either the fence/flush semantics changed (update the bench
/// and CI pins too, with a changelog entry) or the matrix silently depends
/// on ambient process state (a determinism bug).
#[test]
fn ablation_checksum_matches_the_bench_binary_pin() {
    let matrix = bench_smoke_matrix(2);
    assert_eq!(
        matrix.checksum(),
        BENCH_SMOKE_CHECKSUM,
        "smoke ablation checksum moved — bench/CI pins must move with it"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The charged switch cost is monotone under subset inclusion for *any*
    /// pair of flush sets and any of the shipped machine geometries — a pure
    /// function of (set, costs, geometry), checked without simulation.
    #[test]
    fn switch_cost_is_monotone_under_inclusion(a in 0u8..64, extra in 0u8..64) {
        let small = subset_from_bits(a);
        let big = subset_from_bits(a | extra);
        for config in [
            MachineConfig::paper_default(),
            MachineConfig::small_test(),
            MachineConfig::attack_testbench(),
        ] {
            let lo = TemporalFenceConfig::selective(small).switch_cost(&config);
            let hi = TemporalFenceConfig::selective(big).switch_cost(&config);
            prop_assert!(lo <= hi, "{} charges {lo} > its superset {} at {hi}",
                small.label(), big.label());
            prop_assert!(hi <= TemporalFenceConfig::simf().switch_cost(&config));
        }
    }
}

proptest! {
    // Each case runs two live attack cells; keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sampled verdict monotonicity across the whole subset lattice: for a
    /// random base subset, a random enlargement and a random channel,
    /// enlarging the flush set never flips the verdict from CLOSED to OPEN
    /// and never lowers the charged cost. (The exhaustive 384-cell variant
    /// is the ignored test above.)
    #[test]
    fn enlarging_a_flush_set_never_reopens_a_channel(
        base in 0u8..64,
        extra in 1u8..64,
        channel_idx in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        if base | extra == base {
            // The enlargement added nothing; the pair is degenerate.
            return;
        }
        let small = subset_from_bits(base);
        let big = subset_from_bits(base | extra);
        let mut channels = ablation_channels();
        prop_assert_eq!(channels.len(), 6);
        let channel = channels.swap_remove(channel_idx);
        let matrix = run_subsets(
            vec![AblationSpec::subset(small), AblationSpec::subset(big)],
            vec![channel],
            seed,
            2,
        );
        prop_assert_eq!(matrix.cells.len(), 2);
        assert_matrix_is_monotone(&matrix);
    }
}
