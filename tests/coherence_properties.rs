//! Property tests for the directory-based MESI coherence layer.
//!
//! The protocol invariants the paper's isolation argument (and plain
//! correctness) rest on, driven over random multi-core access/purge/rehome
//! interleavings:
//!
//! 1. **single-writer** — a dirty (Modified) L1 line is never resident in
//!    any other core's L1, and a line resident in several L1s is marked
//!    Shared everywhere;
//! 2. **no stale read after remote write** — the moment a write completes,
//!    no foreign L1 holds the written line (so no later read can return a
//!    stale copy);
//! 3. **directory sanity** — every live directory entry's owner and sharers
//!    are live cores, exclusive-side entries track exactly one copy, and
//!    every resident L1 line is tracked by *some* live directory entry
//!    (copies the protocol cannot see cannot be kept coherent);
//! 4. **purge completeness** — `purge_all_private` leaves zero directory
//!    residue, and what residue *would* have leaked is shown to be
//!    unobservable: an attacker probing after the purge measures
//!    byte-identical latencies whatever the victim did before it.
//!
//! The interleavings deliberately exclude *bare* `purge_slices`: flushing a
//! slice's directory without the surrounding reconfiguration protocol
//! (private purge of moved tiles + re-home scrub) is documented to leave
//! untracked copies — the machine only ever issues it inside that protocol.

use proptest::prelude::*;

use ironhide::ironhide_cache::{MesiState, SliceId};
use ironhide::ironhide_mesh::NodeId;
use ironhide::ironhide_sim::config::MachineConfig;
use ironhide::ironhide_sim::machine::Machine;
use ironhide::ironhide_sim::process::SecurityClass;
use ironhide::ironhide_sim::stream::RefRun;

/// One step of the coherence driver.
#[derive(Debug, Clone)]
enum CohOp {
    Run { core: usize, base: u64, stride: u64, len: u32, write: bool },
    PurgeCore(usize),
    PurgeAll,
    RestrictSlices(usize),
}

/// Decodes one sampled word into a driver step. Runs dominate, drawn from a
/// narrow two-page window so the four cores collide on the same lines
/// constantly (read-shared, write-upgrade, invalidation and
/// directory-conflict paths all fire).
fn decode(word: u64) -> CohOp {
    const STRIDES: [u64; 6] = [0, 24, 64, 128, 4096, 0u64.wrapping_sub(64)];
    match word % 11 {
        0 => CohOp::PurgeCore((word >> 8) as usize % 4),
        1 => CohOp::PurgeAll,
        2 => CohOp::RestrictSlices((word >> 8) as usize % 4),
        _ => CohOp::Run {
            core: (word >> 4) as usize % 4,
            base: 0x40_0000 + ((word >> 8) % 0x2000),
            stride: STRIDES[(word >> 24) as usize % STRIDES.len()],
            len: 1 + ((word >> 32) % 64) as u32,
            write: (word >> 40).is_multiple_of(2),
        },
    }
}

/// Checks every machine-wide MESI invariant, returning a description of the
/// first violation.
fn check_invariants(m: &Machine) -> Result<(), String> {
    let cores = m.config().cores();

    // Directory-entry sanity.
    let mut dir_err: Option<String> = None;
    for s in 0..cores {
        m.directory(SliceId(s)).for_each_live(|line, state, sharers, owner| {
            if dir_err.is_some() {
                return;
            }
            if sharers.is_empty() {
                dir_err = Some(format!("dir {s}: line {line:#x} has an empty sharer set"));
            }
            for n in sharers.iter() {
                if n.0 >= cores {
                    dir_err =
                        Some(format!("dir {s}: line {line:#x} sharer {n} is not a live core"));
                }
            }
            if matches!(state, MesiState::Exclusive | MesiState::Modified) {
                if owner.0 >= cores {
                    dir_err = Some(format!("dir {s}: line {line:#x} owner {owner} out of range"));
                } else if sharers.len() != 1 || !sharers.contains(owner) {
                    dir_err = Some(format!(
                        "dir {s}: exclusive-side line {line:#x} must track exactly its owner \
                         ({} sharers)",
                        sharers.len()
                    ));
                }
            }
        });
    }
    if let Some(e) = dir_err {
        return Err(e);
    }

    // L1 census: single-writer + shared-marking + directory inclusivity.
    let line_bytes = m.config().l1.line_bytes as u64;
    let mut holders: Vec<(u64, usize, bool, bool)> = Vec::new();
    for c in 0..cores {
        m.l1(NodeId(c)).for_each_resident(|addr, dirty, shared| {
            holders.push((addr, c, dirty, shared));
        });
    }
    for &(addr, c, dirty, _shared) in &holders {
        let copies: Vec<_> = holders.iter().filter(|h| h.0 == addr).collect();
        if dirty && copies.len() > 1 {
            return Err(format!(
                "line {addr:#x} is Modified in core {c}'s L1 but resident in {} L1s",
                copies.len()
            ));
        }
        if copies.len() > 1 && copies.iter().any(|h| !h.3) {
            return Err(format!(
                "line {addr:#x} is resident in {} L1s but not marked Shared everywhere",
                copies.len()
            ));
        }
        // Inclusivity: some live directory entry tracks this copy.
        let line = addr / line_bytes;
        let tracked = (0..cores).any(|s| {
            m.directory(SliceId(s))
                .probe(line)
                .is_some_and(|(_, sharers, _)| sharers.contains(NodeId(c)))
        });
        if !tracked {
            return Err(format!(
                "line {addr:#x} resident in core {c}'s L1 is tracked by no directory"
            ));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Invariants 1–3 hold after every step of a random multi-core sharing
    /// interleaving, and a completed write leaves no foreign copy of the
    /// written lines behind.
    #[test]
    fn mesi_invariants_hold_under_random_sharing(
        words in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        let mut m = Machine::new(MachineConfig::small_test());
        let pid = m.create_process("p", SecurityClass::Secure);
        for (i, op) in words.iter().map(|w| decode(*w)).enumerate() {
            match op {
                CohOp::Run { core, base, stride, len, write } => {
                    let run = RefRun::new(base, stride, len, write);
                    m.access_run(NodeId(core), pid, run);
                    if write {
                        // No stale read after remote write: the moment the
                        // run completes, no foreign L1 holds any written
                        // line.
                        for r in run.iter() {
                            let paddr = m.peek_paddr(pid, r.vaddr).expect("page mapped");
                            for other in 0..4usize {
                                if other != core {
                                    prop_assert!(
                                        !m.l1(NodeId(other)).probe(paddr),
                                        "op #{i}: core {other} still holds {paddr:#x} \
                                         written by core {core}"
                                    );
                                }
                            }
                        }
                    }
                }
                CohOp::PurgeCore(c) => {
                    m.purge_core(NodeId(c));
                }
                CohOp::PurgeAll => {
                    m.purge_all_private();
                }
                CohOp::RestrictSlices(s) => {
                    m.set_process_slices(pid, &[SliceId(s), SliceId(3 - s)]);
                }
            }
            let invariants = check_invariants(&m);
            prop_assert!(
                invariants.is_ok(),
                "op #{i} ({op:?}): {}",
                invariants.unwrap_err()
            );
        }
    }

    /// Invariant 4: `purge_all_private` leaves zero directory residue, and
    /// the residue is *unobservable* — an attacker probing after the purge
    /// measures byte-identical latencies whatever victim activity (and
    /// therefore whatever directory state) preceded it.
    #[test]
    fn purge_all_private_leaves_no_directory_residue(
        victim_a in prop::collection::vec(any::<u64>(), 1..40),
        victim_b in prop::collection::vec(any::<u64>(), 1..40),
    ) {
        let run_one = |words: &[u64]| -> (usize, Vec<u64>) {
            let mut m = Machine::new(MachineConfig::small_test());
            let victim = m.create_process("victim", SecurityClass::Secure);
            let attacker = m.create_process("attacker", SecurityClass::Insecure);
            // Victim phase: arbitrary multi-core traffic saturates caches
            // and directories with victim-dependent state.
            for op in words.iter().map(|w| decode(*w)) {
                if let CohOp::Run { core, base, stride, len, write } = op {
                    m.access_run(NodeId(core), victim, RefRun::new(base, stride, len, write));
                }
            }
            // The MI6 boundary operation under test: purge_all_private must
            // leave zero directory residue (asserted before anything else
            // touches the directories). If it left entries behind, the probe
            // below would read the victim's sharer/owner metadata as
            // invalidation- and downgrade-latency differences.
            m.purge_all_private();
            let residue: usize =
                (0..4).map(|s| m.directory(SliceId(s)).resident_entries()).sum();
            // Flatten the remaining *non-coherence* shared state the real
            // boundary handles by other means (L2 contents via partitioning,
            // controller queues and link loads via their own purges), so the
            // probe's byte-identity isolates the coherence layer.
            m.purge_slices(&(0..4).map(SliceId).collect::<Vec<_>>());
            m.purge_controllers(ironhide::ironhide_mem::ControllerMask::first(2));
            m.purge_network();
            // Attacker phase: a fixed probe over its own address space; its
            // latencies are everything a foreign prober can observe.
            let mut lat = Vec::new();
            for i in 0..256u64 {
                lat.push(m.access(NodeId(i as usize % 4), attacker, (i % 64) * 64, i % 7 == 0));
            }
            (residue, lat)
        };
        let (residue_a, lat_a) = run_one(&victim_a);
        let (residue_b, lat_b) = run_one(&victim_b);
        prop_assert_eq!(residue_a, 0, "purge must empty every directory");
        prop_assert_eq!(residue_b, 0);
        prop_assert_eq!(lat_a, lat_b,
            "foreign probe latencies must not depend on pre-purge victim activity");
    }
}

/// A directed walk through the textbook transition chain, checking the
/// attacker-relevant observables at each step: E on sole read, E→S downgrade
/// on a remote read, S→M upgrade invalidating the other sharer, and the
/// upgrade costing the writer a visible maintenance round trip.
#[test]
fn directed_mesi_transition_chain() {
    let mut m = Machine::new(MachineConfig::small_test());
    let pid = m.create_process("p", SecurityClass::Secure);
    let vaddr = 0x9000u64;

    // Core 0 reads: Exclusive, sole sharer.
    m.access(NodeId(0), pid, vaddr, false);
    let paddr = m.peek_paddr(pid, vaddr).unwrap();
    let line = paddr / m.config().l1.line_bytes as u64;
    let dir_of = |m: &Machine| {
        (0..4)
            .find_map(|s| m.directory(SliceId(s)).probe(line))
            .expect("line tracked by some directory")
    };
    let (state, sharers, owner) = dir_of(&m);
    assert_eq!(state, MesiState::Exclusive);
    assert_eq!(owner, NodeId(0));
    assert_eq!(sharers.len(), 1);
    assert_eq!(m.l1(NodeId(0)).line_flags(paddr), Some((false, false)), "E: clean, not shared");

    // Core 1 reads: both Shared, core 0 downgraded.
    m.access(NodeId(1), pid, vaddr, false);
    let (state, sharers, _) = dir_of(&m);
    assert_eq!(state, MesiState::Shared);
    assert!(sharers.contains(NodeId(0)) && sharers.contains(NodeId(1)));
    assert_eq!(m.l1(NodeId(0)).line_flags(paddr), Some((false, true)), "downgraded to S");
    assert_eq!(m.l1(NodeId(1)).line_flags(paddr), Some((false, true)));

    // Core 1 writes (hit on its Shared copy): upgrade to Modified must
    // invalidate core 0 and cost more than a plain L1 write hit.
    let upgrade = m.access(NodeId(1), pid, vaddr, true);
    assert!(
        upgrade > m.config().latency.l1_hit,
        "a write-upgrade must pay the invalidation round trip ({upgrade})"
    );
    let (state, sharers, owner) = dir_of(&m);
    assert_eq!(state, MesiState::Modified);
    assert_eq!(owner, NodeId(1));
    assert_eq!(sharers.len(), 1);
    assert!(!m.l1(NodeId(0)).probe(paddr), "the old sharer's copy is invalidated");
    assert_eq!(m.l1(NodeId(1)).line_flags(paddr), Some((true, false)), "M: dirty, exclusive");

    // A second write by the owner is silent: plain write hit, no upgrade.
    let silent = m.access(NodeId(1), pid, vaddr, true);
    assert_eq!(silent, m.config().latency.l1_hit, "M write hits stay silent");

    // Core 0 reads again: the Modified owner is downgraded and its dirty
    // data written back; both end Shared and clean.
    m.access(NodeId(0), pid, vaddr, false);
    let (state, sharers, _) = dir_of(&m);
    assert_eq!(state, MesiState::Shared);
    assert_eq!(sharers.len(), 2);
    assert_eq!(m.l1(NodeId(1)).line_flags(paddr), Some((false, true)), "M→S writes back");
    let wb = m.stats().noc.writebacks;
    assert!(wb > 0, "the downgrade must have emitted a write-back packet");
}
