//! Per-access latency observability.
//!
//! A [`LatencyTrace`] is a fixed-capacity ring buffer of per-access latency
//! samples that a [`Machine`](crate::machine::Machine) records into when one
//! is attached. It exists for the *attacker's* point of view: a covert-channel
//! receiver only ever sees the latencies of its own probe accesses, so the
//! leakage oracle in `ironhide-attacks` decodes transmitted bits from exactly
//! this stream rather than from any privileged simulator state.
//!
//! The buffer is allocated once, up front, at
//! [`Machine::enable_latency_trace`](crate::machine::Machine::enable_latency_trace);
//! recording a sample is a store plus an index wrap, so the zero-allocation
//! invariant of the access hot path holds with the hook enabled (covered by
//! `tests/zero_alloc.rs`).

/// A fixed-capacity ring buffer of per-access latency samples, in cycles.
///
/// When full, new samples overwrite the oldest ones — an attacker timing its
/// probe stream only ever needs the most recent window.
#[derive(Debug, Clone)]
pub struct LatencyTrace {
    samples: Box<[u64]>,
    /// Index the next sample is written to.
    head: usize,
    /// Number of live samples (≤ capacity).
    len: usize,
    /// Total samples ever recorded, including overwritten ones.
    recorded: u64,
}

impl LatencyTrace {
    /// Creates a trace holding up to `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "latency trace needs a non-zero capacity");
        LatencyTrace { samples: vec![0; capacity].into_boxed_slice(), head: 0, len: 0, recorded: 0 }
    }

    /// Maximum number of samples retained.
    pub fn capacity(&self) -> usize {
        self.samples.len()
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no samples have been retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total samples ever recorded, counting ones the ring has overwritten.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records one sample. Never allocates.
    #[inline]
    pub fn record(&mut self, cycles: u64) {
        self.samples[self.head] = cycles;
        self.head += 1;
        if self.head == self.samples.len() {
            self.head = 0;
        }
        if self.len < self.samples.len() {
            self.len += 1;
        }
        self.recorded += 1;
    }

    /// Drops all retained samples (capacity is kept; nothing is freed). The
    /// lifetime [`LatencyTrace::recorded`] counter is unaffected — it counts
    /// every sample ever recorded, across observation windows.
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }

    /// The retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        let start = (self.head + self.samples.len() - self.len) % self.samples.len();
        (0..self.len).map(move |i| self.samples[(start + i) % self.samples.len()])
    }

    /// Sum of the retained samples, in cycles.
    pub fn total_cycles(&self) -> u64 {
        self.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = LatencyTrace::new(4);
        assert!(t.is_empty());
        for v in [5, 7, 9] {
            t.record(v);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.recorded(), 3);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![5, 7, 9]);
        assert_eq!(t.total_cycles(), 21);
    }

    #[test]
    fn wraps_and_keeps_the_newest_window() {
        let mut t = LatencyTrace::new(3);
        for v in 1..=5u64 {
            t.record(v);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.capacity(), 3);
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![3, 4, 5]);
    }

    #[test]
    fn clear_resets_contents_but_not_capacity_or_lifetime_count() {
        let mut t = LatencyTrace::new(2);
        t.record(1);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.capacity(), 2);
        t.record(8);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![8]);
        // `recorded` is a lifetime counter: it survives window clears.
        assert_eq!(t.recorded(), 2);
    }

    #[test]
    #[should_panic(expected = "non-zero capacity")]
    fn zero_capacity_rejected() {
        LatencyTrace::new(0);
    }
}
