//! # ironhide
//!
//! Facade crate for the IRONHIDE reproduction (Omar & Khan, HPCA 2020):
//! *"IRONHIDE: A Secure Multicore that Efficiently Mitigates Microarchitecture
//! State Attacks for Interactive Applications"*.
//!
//! The workspace is split into substrate crates (mesh NoC, caches/TLBs,
//! memory system, multicore simulator), the paper's contribution
//! ([`ironhide_core`]: execution architectures, secure kernel, dynamic
//! hardware isolation, core re-allocation predictor) and the interactive
//! application models ([`ironhide_workloads`]). This crate re-exports all of
//! them under one roof so that examples and downstream users can depend on a
//! single crate.
//!
//! # Quickstart
//!
//! ```
//! use ironhide::prelude::*;
//!
//! // Build the paper's 64-core machine and run one interactive application
//! // (AES encryption fed by an insecure query generator) under IRONHIDE.
//! let machine = MachineConfig::paper_default();
//! let mut app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
//! let report = ExperimentRunner::new(machine)
//!     .with_realloc(ReallocPolicy::Static)
//!     .run(Architecture::Ironhide, app.as_mut())
//!     .expect("experiment runs");
//! assert!(report.total_time_ms() > 0.0);
//! assert!(report.isolation.is_clean());
//! ```

#![warn(missing_docs)]

pub use ironhide_attacks;
pub use ironhide_cache;
pub use ironhide_core;
pub use ironhide_mem;
pub use ironhide_mesh;
pub use ironhide_sim;
pub use ironhide_workloads;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use ironhide_attacks::{
        ablation_channels, ablation_grid, ablation_subsets, all_but_predictor, attack_grid,
        attack_spec, smoke_subsets, window_attack_spec, ChannelKind, FaultAudit, FaultMode,
        LeakageOracle, WindowAttack,
    };
    pub use ironhide_core::app::{
        Interaction, InteractiveApp, MemRef, ProcessProfile, RefRun, RefStream, WorkUnit,
    };
    pub use ironhide_core::arch::{ArchParams, Architecture};
    pub use ironhide_core::attack::{
        AttackOutcome, AttackRunner, AttackTrace, ChannelPlacement, ChannelVerdict, CovertChannel,
    };
    pub use ironhide_core::cluster::{ClusterManager, PurgeOrder};
    pub use ironhide_core::faults::{
        BackoffPolicy, FaultArch, FaultCell, FaultCellKey, FaultConfig, FaultEvent, FaultGrid,
        FaultKind, FaultMatrix, FaultSchedule, FaultSweepError,
    };
    pub use ironhide_core::realloc::ReallocPolicy;
    pub use ironhide_core::runner::{CompletionReport, ExperimentRunner};
    pub use ironhide_core::sweep::{
        AblationCell, AblationCellKey, AblationGrid, AblationMatrix, AblationSpec, AppSpec,
        AttackCell, AttackCellKey, AttackGrid, AttackMatrix, AttackSpec, CellKey, Fig6Row, Fig7Row,
        Fig8Row, ScalePoint, SweepCell, SweepGrid, SweepMatrix, SweepRunner,
    };
    pub use ironhide_core::tenancy::{
        AdmissionPolicy, Arrival, ArrivalGenerator, LoadPoint, SloAccount, StormConfig,
        StormReport, TenancyCell, TenancyCellKey, TenancyGrid, TenancyMatrix, TenancyStorm,
        TenantProfile,
    };
    pub use ironhide_mesh::{ClusterId, MeshTopology, NodeId, RoutingAlgorithm};
    pub use ironhide_sim::config::MachineConfig;
    pub use ironhide_sim::fence::{FlushCosts, FlushResource, FlushSet, TemporalFenceConfig};
    pub use ironhide_sim::process::SecurityClass;
    pub use ironhide_workloads::app::{sweep_grid, tenant_profiles, AppId, ScaleFactor};
}
