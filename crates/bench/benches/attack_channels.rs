//! Criterion microbenchmarks of the covert-channel suite: what one full
//! leakage assessment costs in *simulator* time, per channel, on the open
//! (insecure) and closed (IRONHIDE) sides of the differential claim.
//!
//! These guard the security suite's CI budget the same way `micro_primitives`
//! guards the purge/access models: the attack matrix runs on every push, so
//! an accidental 10x in a channel's stream sizes or the runner's slot loop
//! should show up here first.

use criterion::{criterion_group, criterion_main, Criterion};

use ironhide_attacks::{ChannelKind, LeakageOracle};
use ironhide_core::arch::Architecture;
use ironhide_sim::config::MachineConfig;

fn bench_assessments(c: &mut Criterion) {
    let config = MachineConfig::attack_testbench();
    for kind in ChannelKind::ALL {
        for arch in [Architecture::Insecure, Architecture::Ironhide] {
            let name = format!("assess_{}_{arch}", kind.label());
            c.bench_function(&name, |b| {
                let oracle = LeakageOracle::new(config.clone());
                let channel = kind.build(&config, 1);
                b.iter(|| oracle.assess(arch, &channel, 1).expect("assessment runs"))
            });
        }
    }
}

fn bench_single_run(c: &mut Criterion) {
    // The undecoded attack run alone (no oracle arithmetic), to separate
    // transmission cost from decoding cost if the two ever drift.
    let config = MachineConfig::attack_testbench();
    c.bench_function("attack_run_l2_occupancy_ironhide", |b| {
        let runner = ironhide_core::attack::AttackRunner::new(config.clone());
        let channel = ChannelKind::L2SliceOccupancy.build(&config, 1);
        let bits: Vec<bool> = (0..32).map(|i| i % 2 == 0).collect();
        b.iter(|| runner.run(Architecture::Ironhide, &channel, &bits).expect("run completes"))
    });
}

criterion_group!(attacks, bench_assessments, bench_single_run);
criterion_main!(attacks);
