//! The nine interactive applications of the paper's evaluation, wired up as
//! [`InteractiveApp`] implementations.

use ironhide_core::app::{Interaction, InteractiveApp, ProcessProfile, WorkUnit};
use ironhide_core::sweep::{AppSpec, ScalePoint, SweepGrid};
use ironhide_core::tenancy::TenantProfile;
use ironhide_core::{Architecture, ReallocPolicy};
use ironhide_sim::process::SecurityClass;

use crate::crypto::{Aes256, QueryGenerator};
use crate::graph::{
    pagerank_iteration, sssp, triangle_count_range, CsrGraph, GraphRegions, TemporalUpdateGenerator,
};
use crate::recorder::{AccessRecorder, Region};
use crate::services::{HttpLoadGenerator, KvStore, MemtierGenerator, OsServiceProcess, WebServer};
use crate::vision::{BeeColony, Cnn, CnnShape, Frame, VisionPipeline};

/// How large an instance of each application to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleFactor {
    /// Tiny inputs and a handful of interactions: used by unit/integration
    /// tests and the quickstart example.
    Smoke,
    /// The scaled-down-but-representative configuration the figure benches
    /// run (the paper's raw input counts — 2 M memcached requests, 1 M pages,
    /// tens of thousands of graph inputs — are scaled to keep a full sweep
    /// under a few minutes of host time; see EXPERIMENTS.md).
    Paper,
}

impl ScaleFactor {
    /// The scale's label on a sweep grid's scale axis.
    pub fn sweep_label(self) -> &'static str {
        match self {
            ScaleFactor::Smoke => "Smoke",
            ScaleFactor::Paper => "Paper",
        }
    }

    /// The sweep-grid scale point naming this scale.
    pub fn sweep_point(self) -> ScalePoint {
        ScalePoint::new(self.sweep_label())
    }

    /// Resolves a sweep scale label back to a scale factor.
    pub fn from_sweep_label(label: &str) -> Option<ScaleFactor> {
        match label {
            "Smoke" => Some(ScaleFactor::Smoke),
            "Paper" => Some(ScaleFactor::Paper),
            _ => None,
        }
    }

    fn user_interactions(self) -> usize {
        match self {
            ScaleFactor::Smoke => 10,
            ScaleFactor::Paper => 48,
        }
    }

    fn os_interactions(self) -> usize {
        match self {
            ScaleFactor::Smoke => 16,
            ScaleFactor::Paper => 160,
        }
    }

    fn graph_side(self) -> usize {
        match self {
            ScaleFactor::Smoke => 12,
            ScaleFactor::Paper => 40,
        }
    }

    fn frame_side(self) -> usize {
        match self {
            ScaleFactor::Smoke => 12,
            ScaleFactor::Paper => 32,
        }
    }

    fn sample_rate(self) -> u64 {
        match self {
            ScaleFactor::Smoke => 2,
            ScaleFactor::Paper => 6,
        }
    }

    fn trace_cap(self) -> usize {
        match self {
            ScaleFactor::Smoke => 300,
            ScaleFactor::Paper => 1400,
        }
    }
}

/// The applications evaluated in Figures 6–8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// `<SSSP, GRAPH>` — single-source shortest paths fed by temporal road
    /// updates.
    SsspGraph,
    /// `<PR, GRAPH>` — PageRank fed by temporal road updates.
    PrGraph,
    /// `<TC, GRAPH>` — triangle counting fed by temporal road updates.
    TcGraph,
    /// `<ABC, VISION>` — bee-colony mission planning fed by the vision
    /// pipeline.
    AbcVision,
    /// `<ALEXNET, VISION>` — AlexNet-class perception fed by the vision
    /// pipeline.
    AlexnetVision,
    /// `<SQZ-NET, VISION>` — SqueezeNet-class perception fed by the vision
    /// pipeline.
    SqznetVision,
    /// `<AES, QUERY>` — AES-256 query encryption fed by a YCSB-style
    /// generator.
    QueryAes,
    /// `<MEMCACHED, OS>` — key-value store interacting with the untrusted OS.
    MemcachedOs,
    /// `<LIGHTTPD, OS>` — static web server interacting with the untrusted OS.
    LighttpdOs,
}

impl AppId {
    /// All nine applications in the order Figure 6 presents them.
    pub const ALL: [AppId; 9] = [
        AppId::SsspGraph,
        AppId::PrGraph,
        AppId::TcGraph,
        AppId::AbcVision,
        AppId::AlexnetVision,
        AppId::SqznetVision,
        AppId::QueryAes,
        AppId::MemcachedOs,
        AppId::LighttpdOs,
    ];

    /// The seven user-level interactive applications.
    pub fn user_level() -> Vec<AppId> {
        AppId::ALL.iter().copied().filter(|a| !a.is_os_level()).collect()
    }

    /// The two OS-level interactive applications.
    pub fn os_level() -> Vec<AppId> {
        AppId::ALL.iter().copied().filter(|a| a.is_os_level()).collect()
    }

    /// Whether this is one of the OS-interactive applications.
    pub fn is_os_level(self) -> bool {
        matches!(self, AppId::MemcachedOs | AppId::LighttpdOs)
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            AppId::SsspGraph => "<SSSP, GRAPH>",
            AppId::PrGraph => "<PR, GRAPH>",
            AppId::TcGraph => "<TC, GRAPH>",
            AppId::AbcVision => "<ABC, VISION>",
            AppId::AlexnetVision => "<ALEXNET, VISION>",
            AppId::SqznetVision => "<SQZ-NET, VISION>",
            AppId::QueryAes => "<AES, QUERY>",
            AppId::MemcachedOs => "<MEMCACHED, OS>",
            AppId::LighttpdOs => "<LIGHTTPD, OS>",
        }
    }

    /// This application as a sweep-grid axis entry. The paper's workloads
    /// are fully deterministic (their generators run on fixed seeds), so the
    /// factory ignores the per-cell seed.
    ///
    /// The factory panics on a scale label it does not recognise — a silent
    /// fallback would run the cell at the wrong sizing while the matrix
    /// records the requested label, corrupting figure data undetectably.
    pub fn sweep_spec(self) -> AppSpec {
        AppSpec::new(self.label(), move |scale: &ScalePoint, _seed| {
            let factor = ScaleFactor::from_sweep_label(scale.label()).unwrap_or_else(|| {
                panic!(
                    "unknown sweep scale label '{}' for {} (known: Smoke, Paper)",
                    scale.label(),
                    self.label()
                )
            });
            self.instantiate(&factor)
        })
    }

    /// The tenant class this application represents in the multi-tenant
    /// churn workload: its secure-core demand and mean service requirement
    /// (in core·cycles). The shapes are heterogeneous on purpose — the
    /// vision CNNs are wide and long-lived, the query/web services narrow
    /// and bursty — so an arrival mix exercises every admission path.
    pub fn tenant_profile(self) -> TenantProfile {
        let (demand_cores, service_units) = match self {
            AppId::SsspGraph => (8, 120_000),
            AppId::PrGraph => (12, 160_000),
            AppId::TcGraph => (16, 220_000),
            AppId::AbcVision => (4, 60_000),
            AppId::AlexnetVision => (24, 300_000),
            AppId::SqznetVision => (12, 140_000),
            AppId::QueryAes => (4, 40_000),
            AppId::MemcachedOs => (8, 80_000),
            AppId::LighttpdOs => (4, 50_000),
        };
        TenantProfile::new(self.label(), demand_cores, service_units)
    }

    /// Builds the application at the requested scale.
    pub fn instantiate(self, scale: &ScaleFactor) -> Box<dyn InteractiveApp> {
        let scale = *scale;
        match self {
            AppId::SsspGraph => Box::new(GraphApp::new(GraphAlgo::Sssp, scale)),
            AppId::PrGraph => Box::new(GraphApp::new(GraphAlgo::PageRank, scale)),
            AppId::TcGraph => Box::new(GraphApp::new(GraphAlgo::TriangleCount, scale)),
            AppId::AbcVision => Box::new(VisionApp::new(VisionConsumer::Abc, scale)),
            AppId::AlexnetVision => {
                Box::new(VisionApp::new(VisionConsumer::Cnn(CnnShape::AlexNetClass), scale))
            }
            AppId::SqznetVision => {
                Box::new(VisionApp::new(VisionConsumer::Cnn(CnnShape::SqueezeNetClass), scale))
            }
            AppId::QueryAes => Box::new(QueryAesApp::new(scale)),
            AppId::MemcachedOs => Box::new(MemcachedApp::new(scale)),
            AppId::LighttpdOs => Box::new(LighttpdApp::new(scale)),
        }
    }
}

/// Builds a sweep grid over the given paper applications, architectures,
/// re-allocation policies and scales, ready for
/// [`SweepRunner`](ironhide_core::sweep::SweepRunner).
pub fn sweep_grid(
    apps: &[AppId],
    architectures: &[Architecture],
    policies: &[ReallocPolicy],
    scales: &[ScaleFactor],
) -> SweepGrid {
    let mut grid = SweepGrid::new().with_architectures(architectures).with_policies(policies);
    for app in apps {
        grid = grid.with_app(app.sweep_spec());
    }
    for scale in scales {
        grid = grid.with_scale(scale.sweep_point());
    }
    grid
}

/// The tenant-profile mix for a set of applications, ready for a tenancy
/// storm's [`StormConfig`](ironhide_core::tenancy::StormConfig).
pub fn tenant_profiles(apps: &[AppId]) -> Vec<TenantProfile> {
    apps.iter().map(|a| a.tenant_profile()).collect()
}

// ---------------------------------------------------------------------------
// <SSSP|PR|TC, GRAPH>
// ---------------------------------------------------------------------------

/// The secure graph kernel paired with the GRAPH generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphAlgo {
    /// Single-source shortest paths.
    Sssp,
    /// PageRank.
    PageRank,
    /// Triangle counting.
    TriangleCount,
}

/// A `<graph-kernel, GRAPH>` interactive application.
#[derive(Debug)]
pub struct GraphApp {
    algo: GraphAlgo,
    scale: ScaleFactor,
    name: &'static str,
    graph: CsrGraph,
    regions: GraphRegions,
    generator: TemporalUpdateGenerator,
    ranks: Vec<f64>,
    tc_cursor: usize,
    insecure_profile: ProcessProfile,
    secure_profile: ProcessProfile,
}

impl GraphApp {
    /// Builds the application.
    pub fn new(algo: GraphAlgo, scale: ScaleFactor) -> Self {
        let graph = CsrGraph::road_network(scale.graph_side(), 0xC0FFEE);
        let regions = GraphRegions::layout(&graph, 0x10_0000);
        let n = graph.vertices();
        let (name, secure_profile) = match algo {
            GraphAlgo::Sssp => {
                ("<SSSP, GRAPH>", ProcessProfile::new("SSSP", SecurityClass::Secure, 0.82, 700, 32))
            }
            GraphAlgo::PageRank => {
                ("<PR, GRAPH>", ProcessProfile::new("PR", SecurityClass::Secure, 0.90, 400, 48))
            }
            GraphAlgo::TriangleCount => {
                ("<TC, GRAPH>", ProcessProfile::new("TC", SecurityClass::Secure, 0.40, 30_000, 4))
            }
        };
        GraphApp {
            algo,
            scale,
            name,
            generator: TemporalUpdateGenerator::new(7, 192),
            ranks: vec![1.0 / n as f64; n],
            tc_cursor: 0,
            regions,
            graph,
            insecure_profile: ProcessProfile::new("GRAPH", SecurityClass::Insecure, 0.96, 120, 62),
            secure_profile,
        }
    }

    fn recorder(&self) -> AccessRecorder {
        AccessRecorder::new(self.scale.sample_rate(), self.scale.trace_cap())
    }
}

impl InteractiveApp for GraphApp {
    fn name(&self) -> &str {
        self.name
    }
    fn insecure_profile(&self) -> &ProcessProfile {
        &self.insecure_profile
    }
    fn secure_profile(&self) -> &ProcessProfile {
        &self.secure_profile
    }
    fn interactions(&self) -> usize {
        self.scale.user_interactions()
    }
    fn interactivity_per_second(&self) -> f64 {
        400.0
    }

    fn interaction(&mut self, idx: usize) -> Interaction {
        // Insecure: apply a batch of temporal sensor updates (the sensor
        // ingest and graph-mutation work parallelises well across cores).
        let mut rec = self.recorder();
        self.generator.apply_batch(&mut self.graph, &self.regions, &mut rec);
        let insecure_touches = rec.total_touches();
        let insecure = WorkUnit::new(insecure_touches * 2_400 + 700_000, rec.take());

        // Secure: run the analytics kernel over the updated graph.
        let mut rec = self.recorder();
        let n = self.graph.vertices();
        match self.algo {
            GraphAlgo::Sssp => {
                let source = idx % n;
                let _ = sssp(&self.graph, source, 12, &self.regions, &mut rec);
            }
            GraphAlgo::PageRank => {
                self.ranks =
                    pagerank_iteration(&self.graph, &self.ranks, 0.85, &self.regions, &mut rec);
            }
            GraphAlgo::TriangleCount => {
                let window = (n / 8).max(8);
                let from = self.tc_cursor;
                let _ =
                    triangle_count_range(&self.graph, from, from + window, &self.regions, &mut rec);
                self.tc_cursor = (self.tc_cursor + window) % n;
            }
        }
        let secure_touches = rec.total_touches();
        let cycles_per_touch = match self.algo {
            GraphAlgo::Sssp => 85,
            GraphAlgo::PageRank => 95,
            GraphAlgo::TriangleCount => 60,
        };
        let secure = WorkUnit::new(secure_touches * cycles_per_touch + 350_000, rec.take());

        Interaction { insecure, secure, ipc_bytes: 48 * 16 }
    }

    fn reset(&mut self) {
        let n = self.graph.vertices();
        self.generator = TemporalUpdateGenerator::new(7, 192);
        self.ranks = vec![1.0 / n as f64; n];
        self.tc_cursor = 0;
    }
}

// ---------------------------------------------------------------------------
// <ABC|ALEXNET|SQZ-NET, VISION>
// ---------------------------------------------------------------------------

/// The secure consumer paired with the VISION pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VisionConsumer {
    /// Artificial-bee-colony mission planning.
    Abc,
    /// CNN perception of the given shape.
    Cnn(CnnShape),
}

/// A `<consumer, VISION>` interactive application.
#[derive(Debug)]
pub struct VisionApp {
    consumer: VisionConsumer,
    scale: ScaleFactor,
    name: &'static str,
    pipeline: VisionPipeline,
    colony: BeeColony,
    cnn: Cnn,
    last_frame: Option<Frame>,
    insecure_profile: ProcessProfile,
    secure_profile: ProcessProfile,
}

impl VisionApp {
    /// Builds the application.
    pub fn new(consumer: VisionConsumer, scale: ScaleFactor) -> Self {
        let (name, secure_profile) = match consumer {
            VisionConsumer::Abc => (
                "<ABC, VISION>",
                ProcessProfile::new("ABC", SecurityClass::Secure, 0.75, 1_200, 24),
            ),
            VisionConsumer::Cnn(CnnShape::AlexNetClass) => (
                "<ALEXNET, VISION>",
                ProcessProfile::new("ALEXNET", SecurityClass::Secure, 0.93, 350, 48),
            ),
            VisionConsumer::Cnn(CnnShape::SqueezeNetClass) => (
                "<SQZ-NET, VISION>",
                ProcessProfile::new("SQZ-NET", SecurityClass::Secure, 0.88, 500, 32),
            ),
        };
        VisionApp {
            consumer,
            scale,
            name,
            pipeline: VisionPipeline::new(21, scale.frame_side(), 0x20_0000),
            colony: BeeColony::new(22, 24, 8, 0x30_0000),
            cnn: Cnn::new(
                match consumer {
                    VisionConsumer::Cnn(shape) => shape,
                    VisionConsumer::Abc => CnnShape::SqueezeNetClass,
                },
                23,
                0x40_0000,
            ),
            last_frame: None,
            insecure_profile: ProcessProfile::new("VISION", SecurityClass::Insecure, 0.90, 300, 48),
            secure_profile,
        }
    }

    fn recorder(&self) -> AccessRecorder {
        AccessRecorder::new(self.scale.sample_rate(), self.scale.trace_cap())
    }
}

impl InteractiveApp for VisionApp {
    fn name(&self) -> &str {
        self.name
    }
    fn insecure_profile(&self) -> &ProcessProfile {
        &self.insecure_profile
    }
    fn secure_profile(&self) -> &ProcessProfile {
        &self.secure_profile
    }
    fn interactions(&self) -> usize {
        self.scale.user_interactions()
    }
    fn interactivity_per_second(&self) -> f64 {
        400.0
    }

    fn interaction(&mut self, _idx: usize) -> Interaction {
        // Insecure: run the RAW pipeline to produce the next frame.
        let mut rec = self.recorder();
        let frame = self.pipeline.next_frame(&mut rec);
        let insecure_touches = rec.total_touches();
        let insecure = WorkUnit::new(insecure_touches * 70 + 300_000, rec.take());

        // Secure: plan or perceive on that frame.
        let mut rec = self.recorder();
        let (secure_touches, cycles_per_touch) = match self.consumer {
            VisionConsumer::Abc => {
                for _ in 0..4 {
                    self.colony.step(&frame, &mut rec);
                }
                (rec.total_touches(), 180)
            }
            VisionConsumer::Cnn(_) => {
                let _ = self.cnn.forward(&frame, &mut rec);
                (rec.total_touches(), 45)
            }
        };
        let secure = WorkUnit::new(secure_touches * cycles_per_touch + 450_000, rec.take());
        let ipc_bytes = (frame.pixels.len() * 4) as u64;
        self.last_frame = Some(frame);
        Interaction { insecure, secure, ipc_bytes }
    }

    fn reset(&mut self) {
        self.pipeline = VisionPipeline::new(21, self.scale.frame_side(), 0x20_0000);
        self.colony = BeeColony::new(22, 24, 8, 0x30_0000);
        self.last_frame = None;
    }
}

// ---------------------------------------------------------------------------
// <AES, QUERY>
// ---------------------------------------------------------------------------

/// The `<AES, QUERY>` interactive application.
#[derive(Debug)]
pub struct QueryAesApp {
    scale: ScaleFactor,
    generator: QueryGenerator,
    aes: Aes256,
    query_region: Region,
    key_region: Region,
    sbox_region: Region,
    output_region: Region,
    insecure_profile: ProcessProfile,
    secure_profile: ProcessProfile,
}

impl QueryAesApp {
    /// Builds the application.
    pub fn new(scale: ScaleFactor) -> Self {
        let query_region = Region::new(0x50_0000, 64, 4096);
        let key_region = Region::new(query_region.end(), 16, 15);
        let sbox_region = Region::new(key_region.end(), 1, 256);
        let output_region = Region::new(sbox_region.end() + 64, 64, 4096);
        QueryAesApp {
            scale,
            generator: QueryGenerator::new(31, 4096, 256),
            aes: Aes256::new(&[0x42u8; 32]),
            query_region,
            key_region,
            sbox_region,
            output_region,
            insecure_profile: ProcessProfile::new("QUERY", SecurityClass::Insecure, 0.70, 400, 16),
            secure_profile: ProcessProfile::new("AES", SecurityClass::Secure, 0.85, 600, 24),
        }
    }

    fn recorder(&self) -> AccessRecorder {
        AccessRecorder::new(self.scale.sample_rate(), self.scale.trace_cap())
    }

    fn batch(&self) -> usize {
        match self.scale {
            ScaleFactor::Smoke => 4,
            ScaleFactor::Paper => 12,
        }
    }
}

impl InteractiveApp for QueryAesApp {
    fn name(&self) -> &str {
        "<AES, QUERY>"
    }
    fn insecure_profile(&self) -> &ProcessProfile {
        &self.insecure_profile
    }
    fn secure_profile(&self) -> &ProcessProfile {
        &self.secure_profile
    }
    fn interactions(&self) -> usize {
        self.scale.user_interactions()
    }
    fn interactivity_per_second(&self) -> f64 {
        400.0
    }

    fn interaction(&mut self, _idx: usize) -> Interaction {
        // Insecure: generate a batch of queries and serialise them.
        let mut rec = self.recorder();
        let mut payloads = Vec::new();
        for q in 0..self.batch() {
            let query = self.generator.next_query();
            for line in 0..(query.payload.len() / 64).max(1) {
                rec.write(&self.query_region, (q * 8 + line) as u64);
            }
            payloads.push(query.payload);
        }
        let insecure_touches = rec.total_touches();
        let insecure = WorkUnit::new(insecure_touches * 150 + 120_000, rec.take());

        // Secure: encrypt every payload with AES-256, touching the key
        // schedule and S-box heavily (the classic L1-resident hot set).
        let mut rec = self.recorder();
        let mut total_bytes = 0u64;
        for (q, payload) in payloads.iter().enumerate() {
            let _cipher = self.aes.encrypt(payload);
            total_bytes += payload.len() as u64;
            for block in 0..payload.len() / 16 {
                for round in 0..15u64 {
                    rec.read(&self.key_region, round);
                    rec.read(&self.sbox_region, (block as u64 * 31 + round * 17) % 256);
                }
                rec.read(&self.query_region, (q * 8 + block / 4) as u64);
                rec.write(&self.output_region, (q * 8 + block / 4) as u64);
            }
        }
        // ~20 cycles per byte is representative of table-free software AES.
        let secure = WorkUnit::new(total_bytes * 120 + 60_000, rec.take());
        Interaction { insecure, secure, ipc_bytes: (self.batch() * 256) as u64 }
    }

    fn reset(&mut self) {
        self.generator = QueryGenerator::new(31, 4096, 256);
    }
}

// ---------------------------------------------------------------------------
// <MEMCACHED, OS> and <LIGHTTPD, OS>
// ---------------------------------------------------------------------------

/// The `<MEMCACHED, OS>` interactive application.
#[derive(Debug)]
pub struct MemcachedApp {
    scale: ScaleFactor,
    os: OsServiceProcess,
    store: KvStore,
    clients: MemtierGenerator,
    insecure_profile: ProcessProfile,
    secure_profile: ProcessProfile,
}

impl MemcachedApp {
    /// Builds the application.
    pub fn new(scale: ScaleFactor) -> Self {
        MemcachedApp {
            scale,
            os: OsServiceProcess::new(51, 0x60_0000),
            store: KvStore::new(8192, 0x70_0000),
            clients: MemtierGenerator::new(52, 64 * 1024, 0.9),
            insecure_profile: ProcessProfile::new("OS", SecurityClass::Insecure, 0.60, 500, 16),
            secure_profile: ProcessProfile::new("MEMCACHED", SecurityClass::Secure, 0.80, 800, 24),
        }
    }

    fn recorder(&self) -> AccessRecorder {
        AccessRecorder::new(self.scale.sample_rate(), self.scale.trace_cap())
    }

    fn requests_per_interaction(&self) -> usize {
        match self.scale {
            ScaleFactor::Smoke => 8,
            ScaleFactor::Paper => 24,
        }
    }
}

impl InteractiveApp for MemcachedApp {
    fn name(&self) -> &str {
        "<MEMCACHED, OS>"
    }
    fn insecure_profile(&self) -> &ProcessProfile {
        &self.insecure_profile
    }
    fn secure_profile(&self) -> &ProcessProfile {
        &self.secure_profile
    }
    fn interactions(&self) -> usize {
        self.scale.os_interactions()
    }
    fn interactivity_per_second(&self) -> f64 {
        220_000.0
    }

    fn interaction(&mut self, _idx: usize) -> Interaction {
        // Insecure: the OS services the socket reads/writes behind the batch.
        let mut rec = self.recorder();
        for _ in 0..self.requests_per_interaction() {
            let call = self.os.pick_call();
            self.os.service(call, 256, &mut rec);
        }
        let insecure_touches = rec.total_touches();
        let insecure = WorkUnit::new(insecure_touches * 6 + 1_500, rec.take());

        // Secure: the store executes the request batch.
        let mut rec = self.recorder();
        for _ in 0..self.requests_per_interaction() {
            let (is_get, key, value) = self.clients.next_request();
            if is_get {
                let _ = self.store.get(key, &mut rec);
            } else {
                let _ = self.store.set(key, value, &mut rec);
            }
        }
        let secure_touches = rec.total_touches();
        let secure = WorkUnit::new(secure_touches * 8 + 2_000, rec.take());
        Interaction { insecure, secure, ipc_bytes: (self.requests_per_interaction() * 128) as u64 }
    }

    fn reset(&mut self) {
        self.os = OsServiceProcess::new(51, 0x60_0000);
        self.store = KvStore::new(8192, 0x70_0000);
        self.clients = MemtierGenerator::new(52, 64 * 1024, 0.9);
    }
}

/// The `<LIGHTTPD, OS>` interactive application.
#[derive(Debug)]
pub struct LighttpdApp {
    scale: ScaleFactor,
    os: OsServiceProcess,
    server: WebServer,
    clients: HttpLoadGenerator,
    insecure_profile: ProcessProfile,
    secure_profile: ProcessProfile,
}

impl LighttpdApp {
    /// Builds the application.
    pub fn new(scale: ScaleFactor) -> Self {
        LighttpdApp {
            scale,
            os: OsServiceProcess::new(61, 0x80_0000),
            server: WebServer::new(2048, 20 * 1024, 0x90_0000),
            clients: HttpLoadGenerator::new(62, 2048),
            insecure_profile: ProcessProfile::new("OS", SecurityClass::Insecure, 0.65, 450, 24),
            secure_profile: ProcessProfile::new("LIGHTTPD", SecurityClass::Secure, 0.30, 12_000, 2),
        }
    }

    fn recorder(&self) -> AccessRecorder {
        AccessRecorder::new(self.scale.sample_rate() * 2, self.scale.trace_cap())
    }

    fn pages_per_interaction(&self) -> usize {
        match self.scale {
            ScaleFactor::Smoke => 1,
            ScaleFactor::Paper => 2,
        }
    }
}

impl InteractiveApp for LighttpdApp {
    fn name(&self) -> &str {
        "<LIGHTTPD, OS>"
    }
    fn insecure_profile(&self) -> &ProcessProfile {
        &self.insecure_profile
    }
    fn secure_profile(&self) -> &ProcessProfile {
        &self.secure_profile
    }
    fn interactions(&self) -> usize {
        self.scale.os_interactions()
    }
    fn interactivity_per_second(&self) -> f64 {
        220_000.0
    }

    fn interaction(&mut self, _idx: usize) -> Interaction {
        // Insecure: the OS performs the fread/writev work for the connections.
        let mut rec = self.recorder();
        for _ in 0..(self.pages_per_interaction() * 4) {
            let call = self.os.pick_call();
            self.os.service(call, 1024, &mut rec);
        }
        let insecure_touches = rec.total_touches();
        let insecure = WorkUnit::new(insecure_touches * 6 + 1_800, rec.take());

        // Secure: serve the requested pages from the file-content cache.
        let mut rec = self.recorder();
        let mut bytes = 0usize;
        for _ in 0..self.pages_per_interaction() {
            let page = self.clients.next_page();
            bytes += self.server.serve(page, &mut rec);
        }
        let secure_touches = rec.total_touches();
        let secure = WorkUnit::new(secure_touches * 5 + 2_500, rec.take());
        Interaction { insecure, secure, ipc_bytes: bytes as u64 / 8 }
    }

    fn reset(&mut self) {
        self.os = OsServiceProcess::new(61, 0x80_0000);
        self.server = WebServer::new(2048, 20 * 1024, 0x90_0000);
        self.clients = HttpLoadGenerator::new(62, 2048);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_apps_instantiate_and_generate_interactions() {
        for id in AppId::ALL {
            let mut app = id.instantiate(&ScaleFactor::Smoke);
            assert_eq!(app.name(), id.label());
            assert!(app.interactions() > 0);
            let i0 = app.interaction(0);
            assert!(
                !i0.insecure.accesses.is_empty(),
                "{}: the insecure process must touch memory",
                id.label()
            );
            assert!(
                !i0.secure.accesses.is_empty(),
                "{}: the secure process must touch memory",
                id.label()
            );
            assert!(i0.ipc_bytes > 0);
            assert!(i0.secure.compute_cycles > 0);
        }
    }

    #[test]
    fn user_and_os_split_matches_paper() {
        assert_eq!(AppId::user_level().len(), 7);
        assert_eq!(AppId::os_level().len(), 2);
        assert!(AppId::MemcachedOs.is_os_level());
        assert!(!AppId::QueryAes.is_os_level());
    }

    #[test]
    fn os_apps_have_higher_interactivity_and_smaller_units() {
        let mut user = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
        let mut os = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);
        assert!(os.interactivity_per_second() > user.interactivity_per_second() * 100.0);
        let u = user.interaction(0);
        let o = os.interaction(0);
        assert!(
            o.secure.compute_cycles < u.secure.compute_cycles,
            "OS-interactive work per interaction must be smaller"
        );
    }

    #[test]
    fn secure_profiles_encode_scalability_differences() {
        let tc = GraphApp::new(GraphAlgo::TriangleCount, ScaleFactor::Smoke);
        let pr = GraphApp::new(GraphAlgo::PageRank, ScaleFactor::Smoke);
        assert!(tc.secure_profile().max_useful_cores < pr.secure_profile().max_useful_cores);
        assert!(
            tc.secure_profile().sync_cycles_per_core > pr.secure_profile().sync_cycles_per_core
        );
        let httpd = LighttpdApp::new(ScaleFactor::Smoke);
        assert!(httpd.secure_profile().max_useful_cores <= 4);
    }

    #[test]
    fn reset_makes_interaction_streams_repeatable() {
        for id in [AppId::QueryAes, AppId::MemcachedOs, AppId::SsspGraph] {
            let mut app = id.instantiate(&ScaleFactor::Smoke);
            let first: Vec<_> = (0..3).map(|i| app.interaction(i).secure.accesses.len()).collect();
            app.reset();
            let second: Vec<_> = (0..3).map(|i| app.interaction(i).secure.accesses.len()).collect();
            assert_eq!(first, second, "{} must be repeatable after reset", id.label());
        }
    }

    #[test]
    fn aes_hot_set_is_rereferenced_across_interactions() {
        let mut app = QueryAesApp::new(ScaleFactor::Smoke);
        let a = app.interaction(0);
        let b = app.interaction(1);
        let keys_a: std::collections::HashSet<u64> =
            a.secure.accesses.iter().filter(|r| !r.write).map(|r| r.vaddr).collect();
        let reuse =
            b.secure.accesses.iter().filter(|r| !r.write && keys_a.contains(&r.vaddr)).count();
        assert!(reuse > 0, "the AES key schedule must be re-referenced every interaction");
    }

    #[test]
    fn paper_scale_is_larger_than_smoke() {
        assert!(ScaleFactor::Paper.user_interactions() > ScaleFactor::Smoke.user_interactions());
        assert!(ScaleFactor::Paper.trace_cap() > ScaleFactor::Smoke.trace_cap());
    }
}
