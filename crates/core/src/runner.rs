//! The experiment driver.
//!
//! [`ExperimentRunner`] executes one interactive application on a freshly
//! built machine under a chosen [`Architecture`] and produces the
//! [`CompletionReport`] the figure benches consume: the completion-time
//! breakdown of Figure 6 (compute vs. enclave/purge overhead, plus the number
//! of secure-cluster cores), the cache miss rates of Figure 7 and the
//! isolation summary used to argue that no run violated strong isolation.

use std::fmt;

use ironhide_cache::SliceId;
use ironhide_mesh::{ClusterId, NodeId};
use ironhide_sim::config::MachineConfig;
use ironhide_sim::machine::Machine;
use ironhide_sim::process::{ProcessId, SecurityClass};

use crate::app::{Interaction, InteractiveApp, ProcessProfile, RefRun, RefStream, WorkUnit};
use crate::arch::{ArchParams, Architecture};
use crate::boundary::mi6_boundary_cost;
use crate::cluster::{ClusterError, ClusterManager};
use crate::ipc::SharedIpcBuffer;
use crate::isolation::{IsolationAuditor, IsolationSummary};
use crate::kernel::{AppDomain, AttestationError, SecureKernel};
use crate::realloc::ReallocPolicy;
use crate::speccheck::SpeculativeAccessCheck;

/// Signing key of the simulated enclave author. The kernel only needs
/// signatures to be *verifiable* inside the simulation, not secret.
const AUTHOR_KEY: u64 = 0x1234_5678_9ABC_DEF0;

/// Errors produced while running an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Cluster formation or reconfiguration failed.
    Cluster(ClusterError),
    /// The secure process failed attestation.
    Attestation(AttestationError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Cluster(e) => write!(f, "cluster error: {e}"),
            RunError::Attestation(e) => write!(f, "attestation error: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<ClusterError> for RunError {
    fn from(e: ClusterError) -> Self {
        RunError::Cluster(e)
    }
}

impl From<AttestationError> for RunError {
    fn from(e: AttestationError) -> Self {
        RunError::Attestation(e)
    }
}

/// The outcome of running one interactive application under one architecture.
#[derive(Debug, Clone)]
pub struct CompletionReport {
    /// Application name.
    pub app: String,
    /// Architecture the application ran under.
    pub arch: Architecture,
    /// Total completion cycles (compute + overhead + reconfiguration).
    pub total_cycles: u64,
    /// Cycles spent executing the processes (including their memory time and
    /// the IPC transfers).
    pub compute_cycles: u64,
    /// Cycles spent on enclave entry/exit costs and microarchitecture state
    /// purging.
    pub overhead_cycles: u64,
    /// One-time cluster formation / reconfiguration cycles (IRONHIDE only).
    pub reconfig_cycles: u64,
    /// Interaction events executed in the measured phase.
    pub interactions: u64,
    /// Cores allocated to the secure cluster (equals the machine size for the
    /// temporally shared architectures).
    pub secure_cores: usize,
    /// Private L1 miss rate over both processes (Figure 7a).
    pub l1_miss_rate: f64,
    /// Shared L2 miss rate over both processes (Figure 7b).
    pub l2_miss_rate: f64,
    /// Strong-isolation audit results.
    pub isolation: IsolationSummary,
    /// Clock frequency used for time conversion, in GHz.
    pub clock_ghz: f64,
    /// Total simulated memory accesses across *every* phase of the run —
    /// predictor probes, warm-up/reconfiguration and the measured phase —
    /// not just the measured phase the `machine` snapshot covers (whose
    /// counters are reset at the measured-phase boundary). Every one of
    /// these accesses is a full simulation through the same hot path, so
    /// this is the honest denominator for simulator-throughput metrics.
    /// Deliberately absent from the serialised report: the JSON schema is
    /// pinned by the golden-stats tests, and this is a harness metric, not
    /// a simulated result.
    pub sim_accesses_total: u64,
    /// Machine-wide counter snapshot at the end of the measured phase
    /// (aggregate L1/TLB/L2, memory-controller and NoC counters plus purge /
    /// re-homing event counts). Consumed by the golden-stats regression tests
    /// and the serialised sweep matrix.
    pub machine: ironhide_sim::stats::MachineStats,
}

impl CompletionReport {
    /// Total completion time in milliseconds.
    pub fn total_time_ms(&self) -> f64 {
        self.cycles_to_ms(self.total_cycles)
    }

    /// Compute component in milliseconds.
    pub fn compute_time_ms(&self) -> f64 {
        self.cycles_to_ms(self.compute_cycles)
    }

    /// Enclave entry/exit and purge overhead in milliseconds.
    pub fn overhead_time_ms(&self) -> f64 {
        self.cycles_to_ms(self.overhead_cycles)
    }

    /// One-time reconfiguration overhead in milliseconds.
    pub fn reconfig_time_ms(&self) -> f64 {
        self.cycles_to_ms(self.reconfig_cycles)
    }

    /// Overhead per interaction in milliseconds (the paper quotes ~0.19 ms per
    /// interaction event for MI6).
    pub fn overhead_per_interaction_ms(&self) -> f64 {
        if self.interactions == 0 {
            0.0
        } else {
            self.overhead_time_ms() / self.interactions as f64
        }
    }

    /// Speedup of this run relative to `other` (>1 means this run is faster).
    pub fn speedup_over(&self, other: &CompletionReport) -> f64 {
        other.total_cycles as f64 / self.total_cycles.max(1) as f64
    }

    /// Completion time normalised to `baseline` (>1 means this run is slower
    /// than the baseline), the form used by Figure 1(a).
    pub fn normalized_to(&self, baseline: &CompletionReport) -> f64 {
        self.total_cycles as f64 / baseline.total_cycles.max(1) as f64
    }

    fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1_000_000.0)
    }
}

/// Per-run mutable state bundled together so the helper methods stay readable.
#[derive(Debug)]
struct RunState {
    machine: Machine,
    spec: SpeculativeAccessCheck,
    ipc: SharedIpcBuffer,
    insecure: ProcessId,
    secure: ProcessId,
    insecure_cores: Vec<NodeId>,
    secure_cores: Vec<NodeId>,
    insecure_profile: ProcessProfile,
    secure_profile: ProcessProfile,
    cluster: Option<ClusterManager>,
    compute_cycles: u64,
    overhead_cycles: u64,
    /// Reusable per-lane memory-time accumulator; cleared by every work unit
    /// so the interaction loop never re-allocates it.
    lane_cycles: Vec<u64>,
}

/// Which of a run's two pinned processes issues a work unit. The helper
/// methods select the matching cores/profile/pid from [`RunState`] internally
/// so callers never have to clone those fields to satisfy borrows.
#[derive(Debug, Clone, Copy)]
enum Issuer {
    /// The untrusted producer process.
    Insecure,
    /// The attested secure process.
    Secure,
}

/// Runs interactive applications on simulated machines.
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    config: MachineConfig,
    params: ArchParams,
    realloc: ReallocPolicy,
}

impl ExperimentRunner {
    /// Creates a runner for machines built from `config`, using the default
    /// architecture parameters and the paper's gradient heuristic for
    /// IRONHIDE's core re-allocation.
    pub fn new(config: MachineConfig) -> Self {
        ExperimentRunner {
            config,
            params: ArchParams::default(),
            realloc: ReallocPolicy::Heuristic,
        }
    }

    /// Overrides the architecture parameters.
    pub fn with_params(mut self, params: ArchParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the core re-allocation policy (used by the Figure 8 bench).
    pub fn with_realloc(mut self, realloc: ReallocPolicy) -> Self {
        self.realloc = realloc;
        self
    }

    /// The machine configuration used for each run.
    pub fn machine_config(&self) -> &MachineConfig {
        &self.config
    }

    /// The re-allocation policy in use.
    pub fn realloc_policy(&self) -> ReallocPolicy {
        self.realloc
    }

    /// Runs `app` under `arch` and reports the completion-time breakdown.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if cluster formation fails or the secure
    /// process cannot be attested.
    pub fn run(
        &self,
        arch: Architecture,
        app: &mut dyn InteractiveApp,
    ) -> Result<CompletionReport, RunError> {
        self.run_recycled(arch, app, None).map(|(report, _)| report)
    }

    /// Like [`ExperimentRunner::run`], but recycles `machine` (from a prior
    /// run on the **same configuration**) instead of allocating a fresh one,
    /// and hands the run's machine back for the next caller. Results are
    /// byte-identical to a fresh-machine run ([`Machine::reset_pristine`]);
    /// the sweep runner threads its cells through a pool of these.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if cluster formation fails or the secure
    /// process cannot be attested (the recycled machine is lost in that
    /// case).
    pub fn run_recycled(
        &self,
        arch: Architecture,
        app: &mut dyn InteractiveApp,
        machine: Option<Machine>,
    ) -> Result<(CompletionReport, Machine), RunError> {
        // Decide the secure-cluster size first (IRONHIDE only): the predictor
        // probes candidate allocations on scratch machines so the main run's
        // state is untouched.
        let total_cores = self.config.cores();
        let initial_secure = ((total_cores as f64 * self.params.initial_secure_fraction).round()
            as usize)
            .clamp(1, total_cores - 1);
        let mut decision_secure = initial_secure;
        let mut charge_reconfig = true;
        // One scratch machine is recycled through every predictor probe and
        // then the measured run itself (Machine::reset_pristine), instead of
        // paying ~0.5 ms of way-array allocation per probe.
        let mut scratch: Option<Machine> = machine;
        // Simulated accesses performed outside the measured phase (predictor
        // probes, then warm-up); the stats resets at each phase boundary
        // would otherwise erase them from the completion report.
        let mut unmeasured_accesses = 0u64;
        if arch.spatial_clusters() {
            // Every candidate probe replays the same post-reset interaction
            // prefix, so the sample is generated once and shared: the
            // predictor's cost is the probe simulations, not re-running the
            // workload kernels per candidate (the exhaustive Optimal policy
            // previously regenerated the sample up to cores-1 times).
            app.reset();
            let sample_len = self.params.predictor_sample.min(app.interactions()).max(1);
            let sample: Vec<Interaction> = (0..sample_len).map(|i| app.interaction(i)).collect();
            let decision = self.realloc.decide(total_cores, initial_secure, |candidate| {
                self.predict(&*app, &sample, &mut scratch, &mut unmeasured_accesses, candidate)
            });
            decision_secure = decision.secure_cores;
            charge_reconfig = decision.charge_overhead;
        }
        app.reset();
        let mut run = self.prepare(arch, app, initial_secure, scratch.take())?;

        // Warm up (not measured), as the paper does before timing each setup.
        let warmup = self.params.warmup_interactions.min(app.interactions());
        for idx in 0..warmup {
            let interaction = app.interaction(idx);
            self.run_interaction(&mut run, arch, &interaction);
        }

        // IRONHIDE reconfigures once per application invocation, after the
        // warm-up/profiling phase, when real data is resident and must be
        // re-homed. The stall is charged unless the policy is the idealised
        // Optimal.
        let mut reconfig_cycles = 0u64;
        if arch.spatial_clusters() && decision_secure != initial_secure {
            let manager =
                run.cluster.as_mut().expect("IRONHIDE runs always have a cluster manager");
            let cycles =
                manager.reconfigure(&mut run.machine, run.secure, run.insecure, decision_secure)?;
            run.secure_cores.clear();
            run.secure_cores.extend(manager.cores_iter(ClusterId::Secure));
            run.insecure_cores.clear();
            run.insecure_cores.extend(manager.cores_iter(ClusterId::Insecure));
            if charge_reconfig {
                reconfig_cycles = cycles;
            }
        }

        // Warm-up (and cluster formation) accesses since prepare's pristine
        // reset, banked before the measured-phase counter reset clears them.
        unmeasured_accesses += run.machine.stats().l1.accesses;
        run.machine.reset_stats();
        run.compute_cycles = 0;
        run.overhead_cycles = 0;

        // Measured phase.
        let measured = app.interactions();
        for idx in 0..measured {
            let interaction = app.interaction(idx);
            self.run_interaction(&mut run, arch, &interaction);
        }

        // Gather the report.
        let sec_stats = run.machine.process_stats(run.secure).clone();
        let ins_stats = run.machine.process_stats(run.insecure).clone();
        let l1_accesses = sec_stats.l1.accesses + ins_stats.l1.accesses;
        let l1_misses = sec_stats.l1.misses + ins_stats.l1.misses;
        let l2_accesses = sec_stats.l2.accesses + ins_stats.l2.accesses;
        let l2_misses = sec_stats.l2.misses + ins_stats.l2.misses;
        let isolation = IsolationAuditor::new().audit(&run.machine, arch, &run.spec);
        let secure_cores = if arch.spatial_clusters() { decision_secure } else { total_cores };
        let machine_stats = run.machine.stats();
        let sim_accesses_total = unmeasured_accesses + machine_stats.l1.accesses;
        let report = CompletionReport {
            app: app.name().to_string(),
            arch,
            total_cycles: run.compute_cycles + run.overhead_cycles + reconfig_cycles,
            compute_cycles: run.compute_cycles,
            overhead_cycles: run.overhead_cycles,
            reconfig_cycles,
            interactions: measured as u64,
            secure_cores,
            l1_miss_rate: ratio(l1_misses, l1_accesses),
            l2_miss_rate: ratio(l2_misses, l2_accesses),
            isolation,
            clock_ghz: self.config.clock_ghz,
            sim_accesses_total,
            machine: machine_stats,
        };
        Ok((report, run.machine))
    }

    /// Predicts the completion cycles of a short pre-generated `sample` of
    /// the application's interactions when the secure cluster has
    /// `secure_cores` cores. Used by the re-allocation policies; runs on a
    /// scratch machine.
    fn predict(
        &self,
        app: &dyn InteractiveApp,
        sample: &[Interaction],
        scratch: &mut Option<Machine>,
        accesses: &mut u64,
        secure_cores: usize,
    ) -> f64 {
        let mut run = match self.prepare(Architecture::Ironhide, app, secure_cores, scratch.take())
        {
            Ok(run) => run,
            Err(_) => return f64::INFINITY,
        };
        for interaction in sample {
            self.run_interaction(&mut run, Architecture::Ironhide, interaction);
        }
        // The secure kernel's objective is load balance: when two candidate
        // bindings predict (nearly) the same completion time, it prefers to
        // leave the spare cores with the insecure cluster rather than parking
        // them idle in the secure cluster. A 1 % bias encodes that tie-break
        // without overriding real performance gradients.
        let bias = 1.0 + 0.01 * secure_cores as f64 / self.config.cores() as f64;
        let score = (run.compute_cycles + run.overhead_cycles) as f64 * bias;
        // Bank this probe's simulated accesses before the machine is
        // recycled (the next prepare's pristine reset clears its counters).
        *accesses += run.machine.stats().l1.accesses;
        *scratch = Some(run.machine);
        score
    }

    fn prepare(
        &self,
        arch: Architecture,
        app: &dyn InteractiveApp,
        secure_cores: usize,
        recycled: Option<Machine>,
    ) -> Result<RunState, RunError> {
        let mut machine = match recycled {
            Some(mut m) => {
                m.reset_pristine();
                m
            }
            None => Machine::new(self.config.clone()),
        };
        let insecure_profile = app.insecure_profile().clone();
        let secure_profile = app.secure_profile().clone();
        let insecure =
            machine.create_process(insecure_profile.name.clone(), SecurityClass::Insecure);
        let secure = machine.create_process(secure_profile.name.clone(), SecurityClass::Secure);

        // Attest the secure process before it is allowed to execute under any
        // enclave-capable architecture.
        let mut kernel = SecureKernel::new();
        let image = secure_profile.name.clone().into_bytes();
        let signature = SecureKernel::sign(&image, AUTHOR_KEY);
        kernel.register(secure, &image, signature, AUTHOR_KEY, AppDomain(1))?;
        kernel.admit(secure, &image)?;

        let total = self.config.cores();
        let all_cores: Vec<NodeId> = (0..total).map(NodeId).collect();
        let mut cluster = None;
        let (secure_cores_vec, insecure_cores_vec) = match arch {
            // The temporal fence shares all cores and slices exactly like the
            // insecure baseline — its defence happens at boundary crossings
            // (see boundary_cost), not in the placement.
            Architecture::Insecure | Architecture::SgxLike | Architecture::TemporalFence => {
                (all_cores.clone(), all_cores.clone())
            }
            Architecture::Mi6 => {
                // Static partitioning of the shared L2 slices (half each, as in
                // the paper's 32/32 example); cores remain time-shared.
                let half = (total / 2).max(1);
                let low: Vec<SliceId> = (0..half).map(SliceId).collect();
                let high: Vec<SliceId> = (half..total).map(SliceId).collect();
                machine.set_process_slices(secure, &low);
                machine.set_process_slices(insecure, &high);
                (all_cores.clone(), all_cores.clone())
            }
            Architecture::Ironhide => {
                let (manager, _setup) =
                    ClusterManager::form(&mut machine, secure, insecure, secure_cores)?;
                let s = manager.cores_of(ClusterId::Secure);
                let i = manager.cores_of(ClusterId::Insecure);
                cluster = Some(manager);
                (s, i)
            }
        };

        Ok(RunState {
            machine,
            spec: SpeculativeAccessCheck::new(),
            ipc: SharedIpcBuffer::paper_default(),
            insecure,
            secure,
            insecure_cores: insecure_cores_vec,
            secure_cores: secure_cores_vec,
            insecure_profile,
            secure_profile,
            cluster,
            compute_cycles: 0,
            overhead_cycles: 0,
            lane_cycles: Vec::new(),
        })
    }

    fn run_interaction(&self, run: &mut RunState, arch: Architecture, interaction: &Interaction) {
        // 1. The insecure process produces the next input.
        let t_produce = self.exec_unit(run, Issuer::Insecure, &interaction.insecure, arch);

        // 2. It publishes the input through the shared IPC buffer.
        let produce_refs = run.ipc.produce(interaction.ipc_bytes);
        let insecure = run.insecure;
        let ipc_core_ins = run.insecure_cores[0];
        run.machine.set_ipc_marker(true);
        let t_ipc_write = self.issue_refs(run, insecure, ipc_core_ins, &produce_refs, arch, true);
        run.machine.set_ipc_marker(false);

        // 3. Enclave entry.
        let t_entry = self.boundary_cost(run, arch);

        // 4. The secure process reads the input from the shared buffer. The
        //    buffer is insecure data, so the accesses are issued against the
        //    insecure process's address space from a secure-cluster core.
        let consume_refs = run.ipc.consume(interaction.ipc_bytes);
        let ipc_core_sec = run.secure_cores[0];
        run.machine.set_ipc_marker(true);
        let t_ipc_read = self.issue_refs(run, insecure, ipc_core_sec, &consume_refs, arch, false);
        run.machine.set_ipc_marker(false);

        // 5. The secure process consumes the input.
        let t_consume = self.exec_unit(run, Issuer::Secure, &interaction.secure, arch);

        // 6. Enclave exit.
        let t_exit = self.boundary_cost(run, arch);

        run.compute_cycles += t_produce + t_ipc_write + t_ipc_read + t_consume;
        run.overhead_cycles += t_entry + t_exit;
    }

    /// The cost of crossing the secure/insecure boundary once (entry or exit).
    fn boundary_cost(&self, run: &mut RunState, arch: Architecture) -> u64 {
        let clock = run.machine.clock();
        match arch {
            // Ordinary shared-memory interaction: the producer and consumer
            // are already resident, nothing is flushed.
            Architecture::Insecure => 0,
            // The HotCalls-measured enclave transition cost (pipeline flush,
            // enclave data crypto and integrity checks), modelled as the
            // paper does by a constant ~5 us.
            Architecture::SgxLike => clock.us_to_cycles(self.params.sgx_entry_exit_us),
            // The shared MI6 boundary: SGX transition cost plus the
            // strong-isolation purge of all time-shared private state, the
            // memory-controller queues and the in-flight network state —
            // the same model the attack runner charges (see
            // crate::boundary).
            Architecture::Mi6 => mi6_boundary_cost(&mut run.machine, &self.params),
            // Pinned clusters interact through shared memory without enclave
            // transitions; the IPC traffic itself is already accounted for.
            Architecture::Ironhide => 0,
            // The temporal fence: functionally erase the configured flush
            // set, then charge the state-independent worst-case flush cost
            // (the flush pads to capacity so its duration cannot itself leak
            // — see ironhide_sim::fence). The policy is read from the
            // runner's own config, never from the possibly-recycled
            // machine's stored copy.
            Architecture::TemporalFence => {
                let fence = self.config.temporal_fence;
                run.machine.temporal_flush(fence.set);
                fence.switch_cost(&self.config)
            }
        }
    }

    fn exec_unit(
        &self,
        run: &mut RunState,
        issuer: Issuer,
        unit: &WorkUnit,
        arch: Architecture,
    ) -> u64 {
        // Borrow the run state field-by-field so the cores/profile of the
        // issuing process can be read while the machine is driven mutably —
        // no per-interaction clones.
        let RunState {
            machine,
            spec,
            insecure,
            secure,
            insecure_cores,
            secure_cores,
            insecure_profile,
            secure_profile,
            lane_cycles,
            ..
        } = run;
        let (pid, cores, profile, issuer_is_insecure): (_, &[NodeId], &ProcessProfile, bool) =
            match issuer {
                Issuer::Insecure => (*insecure, insecure_cores, insecure_profile, true),
                Issuer::Secure => (*secure, secure_cores, secure_profile, false),
            };
        // The process picks its own thread count, as real applications do: it
        // never spawns more threads than profitable under its Amdahl +
        // synchronisation profile, and never more than the cores its cluster
        // (or the whole machine, for the temporally shared architectures)
        // provides.
        let limit = cores.len().min(profile.max_useful_cores).max(1);
        let parallel_part = unit.compute_cycles as f64 * profile.parallel_fraction;
        let sync = profile.sync_cycles_per_core.max(1) as f64;
        let preferred = (parallel_part / sync).sqrt().round().max(1.0) as usize;
        let n_eff = preferred.min(limit);
        let active = &cores[..n_eff];
        // Memory-controller pressure scales with the concurrently issuing
        // cores divided over the controllers they can reach.
        machine.set_load_hint((n_eff as u64 / self.config.controllers.max(1) as u64).max(1));
        lane_cycles.clear();
        lane_cycles.resize(n_eff, 0);
        if !unit.accesses.is_empty() {
            // Carve the stream into per-lane chunks by reference index (the
            // same chunking the materialised path used), then feed each
            // chunk's sub-runs to the batched access engine.
            let total = unit.accesses.len() as u64;
            let chunk = total.div_ceil(n_eff as u64);
            let screened = arch.speculative_check() && issuer_is_insecure;
            let mut start = 0u64;
            let mut lane = 0usize;
            while start < total {
                let end = (start + chunk).min(total);
                let core = active[lane % n_eff];
                let mut cycles = 0u64;
                for run in unit.accesses.ref_range(start, end) {
                    cycles += issue_run(machine, spec, pid, core, run, screened);
                }
                lane_cycles[lane % n_eff] += cycles;
                lane += 1;
                start = end;
            }
        }
        let mem_time = lane_cycles.iter().copied().max().unwrap_or(0);
        let serial =
            (unit.compute_cycles as f64 * (1.0 - profile.parallel_fraction)).round() as u64;
        let parallel =
            (unit.compute_cycles as f64 * profile.parallel_fraction / n_eff as f64).round() as u64;
        let sync = profile.sync_cycles_per_core * n_eff as u64;
        serial + parallel + mem_time + sync
    }

    fn issue_refs(
        &self,
        run: &mut RunState,
        pid: ProcessId,
        core: NodeId,
        refs: &RefStream,
        arch: Architecture,
        issuer_is_insecure: bool,
    ) -> u64 {
        let RunState { machine, spec, .. } = run;
        let screened = arch.speculative_check() && issuer_is_insecure;
        let mut cycles = 0;
        for r in refs.runs() {
            cycles += issue_run(machine, spec, pid, core, *r, screened);
        }
        cycles
    }
}

/// Issues one reference run on `core` against `pid`'s address space through
/// the batched access engine, screening insecure-issued references through
/// the hardware speculative-access check when `screened`.
///
/// The check consumes *physical* addresses, so it splits the run at page
/// boundaries like the engine does: the first reference of a page segment is
/// screened against the pre-access page table (an untouched page yields no
/// physical address and therefore no check, as on the scalar path), and the
/// remaining references — whose page the first access is guaranteed to have
/// mapped, onto a single region — are screened as one bulk counter update.
/// Shared by the performance and attack runners.
pub(crate) fn issue_run(
    machine: &mut Machine,
    spec: &mut SpeculativeAccessCheck,
    pid: ProcessId,
    core: NodeId,
    run: RefRun,
    screened: bool,
) -> u64 {
    if !screened {
        return machine.access_run(core, pid, run);
    }
    let page_bytes = machine.page_bytes();
    let mut cycles = 0;
    for seg in run.segments(page_bytes) {
        if let Some(paddr) = machine.peek_paddr(pid, seg.base) {
            spec.check(machine.regions(), SecurityClass::Insecure, paddr);
        }
        cycles += machine.access_run(core, pid, seg);
        if seg.len > 1 {
            let paddr = machine
                .peek_paddr(pid, seg.addr(1))
                .expect("page mapped by the segment's first access");
            spec.check_run(machine.regions(), SecurityClass::Insecure, paddr, seg.len as u64 - 1);
        }
    }
    cycles
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny synthetic interactive application: the insecure process streams
    /// over a buffer, the secure process re-reads a hot table every
    /// interaction (so MI6's purges hurt it and IRONHIDE's pinning helps).
    #[derive(Debug)]
    struct ToyApp {
        insecure: ProcessProfile,
        secure: ProcessProfile,
        interactions: usize,
    }

    impl ToyApp {
        fn new(interactions: usize) -> Self {
            ToyApp {
                insecure: ProcessProfile::new("toy-producer", SecurityClass::Insecure, 0.9, 50, 64),
                secure: ProcessProfile::new("toy-enclave", SecurityClass::Secure, 0.8, 100, 32),
                interactions,
            }
        }
    }

    impl InteractiveApp for ToyApp {
        fn name(&self) -> &str {
            "<TOY, GEN>"
        }
        fn insecure_profile(&self) -> &ProcessProfile {
            &self.insecure
        }
        fn secure_profile(&self) -> &ProcessProfile {
            &self.secure
        }
        fn interactions(&self) -> usize {
            self.interactions
        }
        fn interactivity_per_second(&self) -> f64 {
            400.0
        }
        fn interaction(&mut self, idx: usize) -> Interaction {
            use crate::app::MemRef;
            let insecure =
                RefStream::from_refs((0..64u64).map(|i| MemRef::write((idx as u64 * 64 + i) * 64)));
            // A hot table re-read every interaction.
            let secure =
                RefStream::from_refs((0..128u64).map(|i| MemRef::read(0x10_0000 + (i % 64) * 64)));
            Interaction {
                insecure: WorkUnit::new(2_000, insecure),
                secure: WorkUnit::new(4_000, secure),
                ipc_bytes: 256,
            }
        }
        fn reset(&mut self) {}
    }

    fn runner() -> ExperimentRunner {
        let params =
            ArchParams { warmup_interactions: 2, predictor_sample: 2, ..ArchParams::default() };
        ExperimentRunner::new(MachineConfig::small_test()).with_params(params)
    }

    #[test]
    fn all_architectures_complete() {
        let r = runner();
        for arch in Architecture::ALL {
            let mut app = ToyApp::new(6);
            let report = r.run(arch, &mut app).unwrap();
            assert_eq!(report.arch, arch);
            assert_eq!(report.interactions, 6);
            assert!(report.total_cycles > 0);
            assert!(report.total_time_ms() > 0.0);
            assert!(report.isolation.is_clean(), "{arch}: {:?}", report.isolation.violations);
        }
    }

    #[test]
    fn security_costs_are_ordered() {
        let r = runner();
        let insecure = r.run(Architecture::Insecure, &mut ToyApp::new(8)).unwrap();
        let sgx = r.run(Architecture::SgxLike, &mut ToyApp::new(8)).unwrap();
        let mi6 = r.run(Architecture::Mi6, &mut ToyApp::new(8)).unwrap();
        assert!(
            sgx.total_cycles > insecure.total_cycles,
            "SGX must pay enclave entry/exit costs over the insecure baseline"
        );
        assert!(
            mi6.total_cycles > sgx.total_cycles,
            "MI6 must pay purge costs on top of the SGX costs"
        );
        assert!(mi6.overhead_cycles > sgx.overhead_cycles);
    }

    #[test]
    fn ironhide_avoids_per_interaction_overheads() {
        let r = runner();
        let mi6 = r.run(Architecture::Mi6, &mut ToyApp::new(8)).unwrap();
        let ih = r.run(Architecture::Ironhide, &mut ToyApp::new(8)).unwrap();
        assert_eq!(ih.overhead_cycles, 0, "IRONHIDE has no per-interaction purge/crypto cost");
        assert!(ih.total_cycles < mi6.total_cycles, "IRONHIDE must beat MI6 on this workload");
        assert!(ih.l1_miss_rate <= mi6.l1_miss_rate);
    }

    #[test]
    fn mi6_overhead_scales_with_interactions() {
        let r = runner();
        let short = r.run(Architecture::Mi6, &mut ToyApp::new(4)).unwrap();
        let long = r.run(Architecture::Mi6, &mut ToyApp::new(12)).unwrap();
        assert!(long.overhead_cycles > short.overhead_cycles);
        assert!(long.overhead_per_interaction_ms() > 0.0);
    }

    #[test]
    fn report_time_conversions_consistent() {
        let r = runner();
        let rep = r.run(Architecture::SgxLike, &mut ToyApp::new(4)).unwrap();
        let sum = rep.compute_time_ms() + rep.overhead_time_ms() + rep.reconfig_time_ms();
        assert!((sum - rep.total_time_ms()).abs() < 1e-9);
        assert!((rep.speedup_over(&rep) - 1.0).abs() < 1e-12);
        assert!((rep.normalized_to(&rep) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn realloc_policy_is_respected() {
        let r = runner().with_realloc(ReallocPolicy::Static);
        let rep = r.run(Architecture::Ironhide, &mut ToyApp::new(4)).unwrap();
        // Static keeps the initial half-and-half split on the 4-core test
        // machine (2 secure cores).
        assert_eq!(rep.secure_cores, 2);
        assert_eq!(rep.reconfig_cycles, 0);
    }
}
