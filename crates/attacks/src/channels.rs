//! The covert-channel workload library.
//!
//! Each [`ChannelKind`] builds a [`StreamChannel`] — a concrete
//! [`CovertChannel`] made of four fixed reference streams (prime, protocol,
//! secret, probe) sized from the attacked machine's geometry. The victim
//! encodes a 1 by executing its secret burst and a 0 by staying idle; the
//! attacker decodes from the latency of its probe stream.
//!
//! All four channels share one design rule: the *protocol* traffic (the
//! interaction both parties legitimately perform, e.g. reading the shared
//! IPC buffer) is identical in every slot, so any decodable signal must come
//! from secret-dependent microarchitectural residue — exactly the leakage
//! IRONHIDE's spatial isolation claims to remove.
//!
//! The base virtual addresses of every stream are shifted by a seed-derived
//! page-aligned offset, so the attacks do not depend on one lucky address
//! layout; sizes derive from the machine configuration. The supported
//! testbench is [`MachineConfig::attack_testbench`], whose one-page-fills-
//! one-slice L2 geometry makes page-granular occupancy eviction exact.

use ironhide_core::app::{MemRef, RefRun, RefStream};
use ironhide_core::attack::{ChannelPlacement, CovertChannel};
use ironhide_core::ipc::SharedIpcBuffer;
use ironhide_sim::config::MachineConfig;

/// The four covert channels of the suite, each targeting a different piece
/// of shared microarchitecture state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// Prime+probe on the distributed shared L2: the attacker fills half the
    /// slices with its own lines; the victim's secret burst sweeps a working
    /// set large enough to evict them, turning the attacker's re-probe from
    /// L2 hits into DRAM round trips.
    L2SliceOccupancy,
    /// NoC link-contention timing: the attacker streams requests over a row
    /// of mesh links; the victim's secret burst is write-back-heavy (5-flit
    /// packets) traffic that raises those links' congestion estimate, which
    /// the analytical NoC model converts into extra per-hop cycles.
    NocLinkContention,
    /// TLB occupancy: attacker and victim time-share a core (where the
    /// architecture allows it); the victim's secret burst touches enough
    /// pages to evict the attacker's TLB entries, so the re-probe pays page
    /// walks.
    TlbOccupancy,
    /// Timing probe on the shared IPC buffer: the buffer itself is the one
    /// legitimately shared region, and the attacker times re-reads of it.
    /// The victim's *fixed* buffer read carries no information; its secret
    /// burst (private-data processing) evicts the buffer's lines from the
    /// shared L2 only when L2 slices are shared.
    IpcBufferTiming,
    /// Coherence-state channel through directory conflicts ("attack
    /// directories, not caches"): the attacker primes a small working set
    /// that *fits its own L1* — so an undisturbed probe is pure L1 hits —
    /// and whose directory entries live at one home slice. The victim's
    /// secret burst writes a sweep wide enough to claim that slice's
    /// bounded directory with Modified entries; the displaced entries'
    /// copies are **back-invalidated** out of the attacker's L1, and the
    /// attacker reads the bit from the invalidation-induced misses of its
    /// re-probe. No cache the attacker owns was ever evicted — only the
    /// coherence metadata moved.
    CoherenceState,
}

impl ChannelKind {
    /// All channels, in presentation order.
    pub const ALL: [ChannelKind; 5] = [
        ChannelKind::L2SliceOccupancy,
        ChannelKind::NocLinkContention,
        ChannelKind::TlbOccupancy,
        ChannelKind::IpcBufferTiming,
        ChannelKind::CoherenceState,
    ];

    /// The channel's display label (also its attack-matrix axis label).
    pub fn label(self) -> &'static str {
        match self {
            ChannelKind::L2SliceOccupancy => "l2-slice-occupancy",
            ChannelKind::NocLinkContention => "noc-link-contention",
            ChannelKind::TlbOccupancy => "tlb-occupancy",
            ChannelKind::IpcBufferTiming => "ipc-buffer-timing",
            ChannelKind::CoherenceState => "coherence-state",
        }
    }

    /// Builds the channel's reference streams for a machine of `config`'s
    /// geometry, with all stream bases shifted by a `seed`-derived offset.
    pub fn build(self, config: &MachineConfig, seed: u64) -> StreamChannel {
        let g = Geometry::of(config, seed);
        match self {
            ChannelKind::L2SliceOccupancy => g.l2_slice_occupancy(),
            ChannelKind::NocLinkContention => g.noc_link_contention(),
            ChannelKind::TlbOccupancy => g.tlb_occupancy(),
            ChannelKind::IpcBufferTiming => g.ipc_buffer_timing(),
            ChannelKind::CoherenceState => g.coherence_state(),
        }
    }
}

/// A covert channel described by four fixed, run-encoded reference streams.
#[derive(Debug, Clone)]
pub struct StreamChannel {
    name: &'static str,
    placement: ChannelPlacement,
    prime: RefStream,
    protocol: RefStream,
    secret: RefStream,
    probe: RefStream,
}

impl CovertChannel for StreamChannel {
    fn name(&self) -> &str {
        self.name
    }
    fn placement(&self) -> ChannelPlacement {
        self.placement
    }
    fn prime(&self) -> &RefStream {
        &self.prime
    }
    fn victim_protocol(&self) -> &RefStream {
        &self.protocol
    }
    fn victim_secret(&self) -> &RefStream {
        &self.secret
    }
    fn probe(&self) -> &RefStream {
        &self.probe
    }
}

/// Geometry-derived stream sizes plus the seed-shifted address bases.
struct Geometry {
    line: u64,
    page: u64,
    cores: usize,
    tlb_entries: usize,
    l1_lines: usize,
    /// Entries one home slice's coherence directory can hold.
    dir_entries: usize,
    /// Seed-derived page-aligned shift applied to every stream base.
    shift: u64,
}

/// Virtual base of the attacker's private streams (pre-shift).
const ATTACKER_BASE: u64 = 0x1000_0000;
/// Virtual base of the victim's private streams (pre-shift).
const VICTIM_BASE: u64 = 0x2000_0000;
/// Virtual base of the shared region (the IPC buffer's address range).
const SHARED_BASE: u64 = 0x4000_0000;

impl Geometry {
    fn of(config: &MachineConfig, seed: u64) -> Self {
        Geometry {
            line: config.l1.line_bytes as u64,
            page: config.tlb.page_bytes as u64,
            cores: config.cores(),
            tlb_entries: config.tlb.entries,
            l1_lines: config.l1.lines(),
            dir_entries: config.directory.entries(),
            shift: (splitmix(seed) % 64) * config.tlb.page_bytes as u64,
        }
    }

    /// `pages` pages of back-to-back line touches starting at `base` — one
    /// line-stride run.
    fn page_stream(&self, base: u64, pages: usize, write: bool) -> RefStream {
        let lines_per_page = self.page / self.line;
        let mut s = RefStream::new();
        s.push_run(RefRun::new(
            base + self.shift,
            self.line,
            (pages as u64 * lines_per_page) as u32,
            write,
        ));
        s
    }

    /// One line touched on each of `pages` consecutive pages at `base` — one
    /// page-stride run.
    fn page_heads(&self, base: u64, pages: usize) -> RefStream {
        let mut s = RefStream::new();
        s.push_run(RefRun::new(base + self.shift, self.page, pages as u32, false));
        s
    }

    /// The fixed interaction: the victim streams a shared region of twice
    /// its L1's capacity every slot, whatever it transmits.
    ///
    /// The stream being larger than the L1 makes the protocol *data
    /// oblivious*: it misses the victim's private cache on every pass, so
    /// its downstream footprint in the (shared-region) L2 slices is the
    /// same whether or not the preceding secret burst wiped the victim's
    /// L1. A smaller protocol would hit or miss depending on the secret and
    /// re-export the bit into attacker-visible L2 state one slot later —
    /// the "Shield Bash" effect of a defence's own interaction mechanism
    /// carrying the leak, which showed up as a one-slot-delayed echo in an
    /// earlier version of this suite.
    fn oblivious_protocol(&self) -> RefStream {
        let mut s = RefStream::new();
        s.push_run(RefRun::new(
            SHARED_BASE + self.shift,
            self.line,
            2 * self.l1_lines as u32,
            false,
        ));
        s
    }

    /// Pages the oblivious protocol stream spans.
    fn protocol_pages(&self) -> usize {
        (2 * self.l1_lines as u64 * self.line).div_ceil(self.page) as usize
    }

    fn l2_slice_occupancy(&self) -> StreamChannel {
        // Half the machine's slices worth of pages: under spatial isolation
        // this fits the attacker's own slice allocation exactly (one page
        // per slice), while on a shared machine the victim's double-coverage
        // sweep evicts every primed line.
        let prime = self.page_stream(ATTACKER_BASE, self.cores / 2, false);
        StreamChannel {
            name: ChannelKind::L2SliceOccupancy.label(),
            placement: ChannelPlacement::DistinctCores,
            probe: prime.clone(),
            prime,
            protocol: self.oblivious_protocol(),
            secret: self.page_stream(VICTIM_BASE, self.cores * 2, false),
        }
    }

    fn noc_link_contention(&self) -> StreamChannel {
        // The attacker's stream spans enough pages to reach remote slices,
        // thrashing its own L1 so every probe access becomes a NoC round
        // trip. The victim's burst is a *write* sweep: dirty evictions emit
        // 5-flit write-back packets that drag the shared links' flit-mix
        // estimate (and with it the per-hop contention penalty) upward.
        let prime = self.page_stream(ATTACKER_BASE, self.cores / 2, false);
        StreamChannel {
            name: ChannelKind::NocLinkContention.label(),
            placement: ChannelPlacement::SharedCore,
            probe: prime.clone(),
            prime,
            protocol: self.oblivious_protocol(),
            secret: self.page_stream(VICTIM_BASE, self.cores * 2, true),
        }
    }

    fn tlb_occupancy(&self) -> StreamChannel {
        // One line per page: the prime fills the shared core's TLB — minus
        // the entries the protocol stream occupies every slot, so the
        // protocol never starts an LRU eviction cascade through the primed
        // entries — the victim's page-spray evicts it, and every re-probe
        // then pays a page walk.
        let pages = self.tlb_entries.saturating_sub(self.protocol_pages()).max(1);
        let prime = self.page_heads(ATTACKER_BASE, pages);
        StreamChannel {
            name: ChannelKind::TlbOccupancy.label(),
            placement: ChannelPlacement::SharedCore,
            probe: prime.clone(),
            prime,
            protocol: self.oblivious_protocol(),
            secret: self.page_heads(VICTIM_BASE, self.tlb_entries * 4),
        }
    }

    fn coherence_state(&self) -> StreamChannel {
        // The prime reads consecutive lines sized to fit BOTH the
        // attacker's private L1 (a clean re-probe costs l1_hit × lines,
        // with no L2 or NoC trip to add noise) AND one page, so it homes on
        // a single slice and its directory entries sit in one bounded
        // directory. The victim's secret is a *write* sweep sized from the
        // machine's directory geometry — per slice it streams twice the
        // directory's entry capacity, so its Modified-entry claims flood
        // every directory set of every slice its pages home on, and the
        // LRU displacement of the attacker's entries back-invalidates the
        // primed lines out of the attacker's L1. Under IRONHIDE the
        // victim's pages — and therefore its directory claims — are
        // confined to its own cluster's slices, so the attacker's entries
        // are never displaced and the probe stays flat at L1-hit latency.
        let lines_per_page = (self.page / self.line).max(1) as usize;
        let prime_lines = self.l1_lines.min(lines_per_page);
        let prime = {
            let mut s = RefStream::new();
            s.push_run(RefRun::new(
                ATTACKER_BASE + self.shift,
                self.line,
                prime_lines as u32,
                false,
            ));
            s
        };
        // Pages whose lines double-cover one slice's directory; the
        // round-robin page pinning spreads `cores` times that over all
        // (allowed) slices.
        let pages_per_slice = (2 * self.dir_entries).div_ceil(lines_per_page).max(1);
        StreamChannel {
            name: ChannelKind::CoherenceState.label(),
            placement: ChannelPlacement::DistinctCores,
            probe: prime.clone(),
            prime,
            protocol: self.oblivious_protocol(),
            secret: self.page_stream(VICTIM_BASE, self.cores * pages_per_slice, true),
        }
    }

    fn ipc_buffer_timing(&self) -> StreamChannel {
        // The monitored structure is the shared IPC buffer itself, built
        // through the same ring-buffer descriptor the performance runner
        // uses. The attacker produces (writes) the whole buffer as its
        // prime and times a full re-read as its probe; the victim's fixed
        // protocol consumes one page of it every slot.
        let buffer_bytes = (self.cores as u64 / 2) * self.page;
        let mut buffer = SharedIpcBuffer::new(SHARED_BASE + self.shift, buffer_bytes, self.line);
        let prime = buffer.produce(buffer_bytes);
        let probe = RefStream::from_refs(prime.iter().map(|r| MemRef::read(r.vaddr)));
        StreamChannel {
            name: ChannelKind::IpcBufferTiming.label(),
            placement: ChannelPlacement::DistinctCores,
            protocol: buffer.consume(self.page),
            secret: self.page_stream(VICTIM_BASE, self.cores * 2, false),
            prime,
            probe,
        }
    }
}

/// The SplitMix64 stream increment ("golden gamma").
pub(crate) const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64: one crate-wide scrambler for seed-derived decisions (stream
/// base shifts here, payload shuffling in [`crate::oracle`]).
pub(crate) fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(SPLITMIX_GAMMA);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn testbench() -> MachineConfig {
        MachineConfig::attack_testbench()
    }

    #[test]
    fn channels_are_seed_deterministic() {
        for kind in ChannelKind::ALL {
            let a = kind.build(&testbench(), 42);
            let b = kind.build(&testbench(), 42);
            assert_eq!(a.prime, b.prime, "{}", kind.label());
            assert_eq!(a.probe, b.probe);
            assert_eq!(a.secret, b.secret);
            assert_eq!(a.protocol, b.protocol);
        }
    }

    #[test]
    fn seed_shifts_stream_bases_page_aligned() {
        let page = testbench().tlb.page_bytes as u64;
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..16u64 {
            let c = ChannelKind::L2SliceOccupancy.build(&testbench(), seed);
            let base = c.prime.iter().next().unwrap().vaddr;
            assert_eq!(base % page, 0, "stream base must stay page aligned");
            distinct.insert(base);
        }
        assert!(distinct.len() > 1, "different seeds must shift the layout");
    }

    #[test]
    fn stream_shapes_match_geometry() {
        let config = testbench();
        let lines_per_page = (config.tlb.page_bytes / config.l1.line_bytes) as u64;

        let l2 = ChannelKind::L2SliceOccupancy.build(&config, 0);
        assert_eq!(l2.prime.len() as u64, (config.cores() as u64 / 2) * lines_per_page);
        assert_eq!(l2.prime.len(), l2.probe.len());
        assert_eq!(l2.secret.len() as u64, config.cores() as u64 * 2 * lines_per_page);
        assert_eq!(l2.placement, ChannelPlacement::DistinctCores);
        // The protocol is data-oblivious: it streams twice the L1's capacity.
        assert_eq!(l2.protocol.len(), 2 * config.l1.lines());

        let tlb = ChannelKind::TlbOccupancy.build(&config, 0);
        // The prime leaves TLB room for the protocol's pages so the fixed
        // interaction cannot start an eviction cascade through it.
        assert_eq!(tlb.prime.len(), config.tlb.entries - 1);
        assert_eq!(tlb.secret.len(), config.tlb.entries * 4);
        assert_eq!(tlb.placement, ChannelPlacement::SharedCore);

        let noc = ChannelKind::NocLinkContention.build(&config, 0);
        assert!(noc.secret.iter().all(|r| r.write), "NoC burst must be write-back heavy");
        assert!(noc.probe.iter().all(|r| !r.write));

        let coh = ChannelKind::CoherenceState.build(&config, 0);
        assert_eq!(
            coh.prime.len() as u64,
            (config.l1.lines() as u64).min(lines_per_page),
            "prime must fit both the L1 and one page"
        );
        assert_eq!(coh.prime.len(), coh.probe.len());
        assert!(coh.secret.iter().all(|r| r.write), "the secret claims Modified dir entries");
        // Per slice the sweep double-covers the directory's entry capacity
        // (on the testbench: 2 pages/slice × 8 slices = 16 pages).
        let pages_per_slice =
            (2 * config.directory.entries() as u64).div_ceil(lines_per_page).max(1);
        assert_eq!(
            coh.secret.len() as u64,
            config.cores() as u64 * pages_per_slice * lines_per_page
        );
        // One page ⇒ one home slice ⇒ one bounded directory holds the prime.
        let base = coh.prime.iter().map(|r| r.vaddr).min().unwrap();
        let top = coh.prime.iter().map(|r| r.vaddr).max().unwrap();
        assert!(top - base < config.tlb.page_bytes as u64, "prime must stay inside one page");
        assert_eq!(coh.placement, ChannelPlacement::DistinctCores);

        // The sizing premises must hold for *any* machine configuration,
        // not just the testbench: check the paper machine too.
        let paper = MachineConfig::paper_default();
        let coh_paper = ChannelKind::CoherenceState.build(&paper, 0);
        let paper_lpp = paper.tlb.page_bytes as u64 / paper.l1.line_bytes as u64;
        let span = coh_paper.prime.iter().map(|r| r.vaddr).max().unwrap()
            - coh_paper.prime.iter().map(|r| r.vaddr).min().unwrap();
        assert!(span < paper.tlb.page_bytes as u64, "paper-scale prime must fit one page");
        assert!(coh_paper.prime.len() <= paper.l1.lines(), "paper-scale prime must fit the L1");
        let paper_pps = (2 * paper.directory.entries() as u64).div_ceil(paper_lpp);
        assert_eq!(coh_paper.secret.len() as u64, paper.cores() as u64 * paper_pps * paper_lpp);

        let ipc = ChannelKind::IpcBufferTiming.build(&config, 0);
        assert!(ipc.prime.iter().all(|r| r.write), "IPC prime produces the buffer");
        assert!(ipc.probe.iter().all(|r| !r.write), "IPC probe re-reads the buffer");
        assert_eq!(ipc.prime.len(), ipc.probe.len());
        // The fixed protocol consumes one page of the buffer.
        assert_eq!(ipc.protocol.len() as u64, lines_per_page);
    }

    #[test]
    fn streams_keep_address_spaces_disjoint() {
        for kind in ChannelKind::ALL {
            let c = kind.build(&testbench(), 7);
            let secret_min = c.secret.iter().map(|r| r.vaddr).min().unwrap();
            let secret_max = c.secret.iter().map(|r| r.vaddr).max().unwrap();
            // The victim's secret range sits strictly between the attacker's
            // private window and the shared region (distinct vaddr windows
            // keep the shared-core TLB from aliasing streams into each
            // other). The IPC channel's attacker streams legitimately live
            // in the shared region instead.
            if kind == ChannelKind::IpcBufferTiming {
                assert!(c.prime.iter().chain(c.probe.iter()).all(|r| r.vaddr >= SHARED_BASE));
            } else {
                let attacker_max =
                    c.prime.iter().chain(c.probe.iter()).map(|r| r.vaddr).max().unwrap();
                assert!(attacker_max < secret_min, "{}", kind.label());
            }
            assert!(secret_max < SHARED_BASE, "{}", kind.label());
            assert!(c.protocol.iter().all(|r| r.vaddr >= SHARED_BASE));
        }
    }
}
