//! Cache access statistics.

/// Counters maintained by every cache and TLB in the hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lines evicted to make room for a fill.
    pub evictions: u64,
    /// Dirty lines written back (on eviction or flush).
    pub writebacks: u64,
    /// Lines invalidated by flush/purge operations.
    pub flushed_lines: u64,
    /// Number of whole-structure purge operations performed.
    pub purges: u64,
}

impl CacheStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Miss rate in `[0, 1]`; zero when no accesses have been made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Hit rate in `[0, 1]`; zero when no accesses have been made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.flushed_lines += other.flushed_lines;
        self.purges += other.purges;
    }

    /// Resets all counters to zero.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let s = CacheStats { accesses: 10, hits: 7, misses: 3, ..Default::default() };
        assert!((s.miss_rate() - 0.3).abs() < 1e-12);
        assert!((s.hit_rate() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = CacheStats::new();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = CacheStats { accesses: 1, hits: 1, ..Default::default() };
        let b = CacheStats { accesses: 2, misses: 2, purges: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.accesses, 3);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
        assert_eq!(a.purges, 1);
    }

    #[test]
    fn reset_zeroes() {
        let mut s = CacheStats { accesses: 5, ..Default::default() };
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
