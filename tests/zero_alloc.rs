//! Proof of the hot path's zero-allocation invariant.
//!
//! Installs a counting global allocator, warms a paper-scale machine until
//! every page is allocated and every NoC link has been seen, then asserts
//! that 10,000 further `Machine::access` calls — covering L1 hits, L1 misses
//! serviced by a remote L2 slice, and L2 misses serviced by DRAM with dirty
//! evictions, under an active cluster map — perform **zero** heap
//! allocations. The same is then asserted with the per-access latency-trace
//! hook attached (the observability the leakage oracle relies on): the ring
//! buffer is allocated once at attach time, and recording into it is free.
//!
//! Runs with `harness = false` so nothing but this code touches the
//! allocator between the two counter reads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ironhide::ironhide_cache::SliceId;
use ironhide::ironhide_core::ClusterManager;
use ironhide::ironhide_mesh::{ClusterId, NodeId};
use ironhide::ironhide_sim::config::MachineConfig;
use ironhide::ironhide_sim::machine::Machine;
use ironhide::ironhide_sim::process::SecurityClass;
use ironhide::ironhide_sim::stream::{MemRef, RefStream};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Delegates to the system allocator, counting every allocation and
/// reallocation (deallocations are free to stay silent: the invariant is
/// about acquiring memory).
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// The replayed access pattern: core 0 streams a working set that thrashes
/// its L1 *and* its single allowed L2 slice (so the DRAM path and dirty
/// write-backs stay hot), while core 1 re-reads one hot line (the L1-hit
/// path) and core 9 re-reads a line homed remotely (the L2-hit path).
fn replay(machine: &mut Machine, pid: ironhide::ironhide_sim::process::ProcessId) -> u64 {
    let mut accesses = 0;
    // 8192 lines x 64 B = 512 KB streamed through a 256 KB L2 slice.
    for i in 0..8192u64 {
        machine.access(NodeId(0), pid, i * 64, i % 3 == 0);
        accesses += 1;
        if i % 8 == 0 {
            machine.access(NodeId(1), pid, 0x100_0000, false);
            machine.access(NodeId(9), pid, 0x100_2000, false);
            accesses += 2;
        }
    }
    accesses
}

fn main() {
    let mut machine = Machine::new(MachineConfig::paper_default());
    let pid = machine.create_process("steady", SecurityClass::Insecure);
    let enclave = machine.create_process("enclave", SecurityClass::Secure);
    // Form real clusters (the same 32/32 row-major split the manual map used
    // to provide) so the per-interaction cluster-membership queries below go
    // through a live ClusterManager, then route every page to slice 0 so the
    // streamed working set exceeds one slice's capacity, keeping L2 misses
    // (and their write-backs) in the steady-state mix; the cluster map keeps
    // the audited contained-route path the one being measured.
    let (manager, _) =
        ClusterManager::form(&mut machine, enclave, pid, 32).expect("paper-scale clusters form");
    machine.set_process_slices(pid, &[SliceId(0)]);

    // Warm up: two full replays allocate every page, fill the TLBs/caches and
    // touch every NoC link the pattern will ever use.
    for _ in 0..2 {
        replay(&mut machine, pid);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut measured = 0u64;
    while measured < 10_000 {
        measured += replay(&mut machine, pid);
        // The runner's per-interaction bookkeeping queries cluster
        // membership and the process's slice restriction; the borrowing
        // variants must stay allocation-free too.
        let secure_cores = manager.cores_iter(ClusterId::Secure).count();
        let first = manager.cores_iter(ClusterId::Insecure).next();
        assert_eq!(secure_cores, 32, "cluster membership must be queryable mid-run");
        assert!(first.is_some(), "insecure cluster must have cores");
        assert_eq!(machine.process_slices_ref(pid), &[SliceId(0)]);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    let stats = machine.stats();
    assert!(stats.l1.misses > 0, "pattern must exercise the miss path");
    assert!(stats.mem.requests > 0, "pattern must exercise the DRAM path");
    assert!(stats.l1.writebacks > 0, "pattern must exercise dirty evictions");
    assert_eq!(
        after - before,
        0,
        "steady-state Machine::access must not allocate \
         ({} allocations over {measured} accesses)",
        after - before
    );
    println!("zero_alloc: OK — {measured} steady-state accesses, 0 heap allocations");

    // Same invariant with the latency-trace hook attached: attaching
    // allocates the ring once, recording into it never does — including
    // wrap-around (the trace is far smaller than a replay) and the
    // clear-between-windows pattern the attack runner uses.
    machine.enable_latency_trace(4096);
    replay(&mut machine, pid);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut measured = 0u64;
    while measured < 10_000 {
        machine.latency_trace_mut().expect("trace attached").clear();
        measured += replay(&mut machine, pid);
    }
    let traced = machine.latency_trace().expect("trace attached").recorded();
    let sampled = machine.latency_trace().expect("trace attached").total_cycles();
    let after = ALLOCATIONS.load(Ordering::SeqCst);

    assert!(traced > 0, "the hook must have observed the replay");
    assert!(sampled > 0, "observed latencies must be non-trivial");
    assert_eq!(
        after - before,
        0,
        "hook-enabled Machine::access must not allocate \
         ({} allocations over {measured} accesses)",
        after - before
    );
    println!("zero_alloc: OK — {measured} hook-enabled accesses, 0 heap allocations");

    // The batched engine: the same invariant over `Machine::access_stream`
    // with a run-encoded replay (line sweeps straddling pages, a stride-0 hot
    // line, sub-line walks, page-stride sprints and descending runs), with
    // the latency trace still attached. The stream itself is encoded once up
    // front; issuing it in steady state — including the engine's cached-route
    // and page-memo scratch, which grows once during warm-up — must not
    // allocate.
    let mut stream = RefStream::new();
    for i in 0..4096u64 {
        stream.push(MemRef { vaddr: 0xf00 + i * 64, write: i % 3 == 0 });
    }
    for _ in 0..512 {
        stream.push(MemRef::read(0x100_0000));
    }
    for i in 0..512u64 {
        stream.push(MemRef::read(0x200_0000 + i * 24));
    }
    for i in 0..256u64 {
        stream.push(MemRef::read(0x300_0000 + i * 4096));
    }
    for i in 0..512u64 {
        stream.push(MemRef::read(0x400_0000 - i * 64));
    }
    // Warm up: allocate the pages, grow the engine scratch, touch the links.
    machine.access_stream(NodeId(0), pid, &stream);
    machine.access_stream(NodeId(1), pid, &stream);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut measured = 0u64;
    while measured < 10_000 {
        machine.latency_trace_mut().expect("trace attached").clear();
        machine.access_stream(NodeId(0), pid, &stream);
        machine.access_stream(NodeId(1), pid, &stream);
        measured += 2 * stream.len() as u64;
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "steady-state Machine::access_stream must not allocate \
         ({} allocations over {measured} batched accesses)",
        after - before
    );
    println!("zero_alloc: OK — {measured} batched accesses, 0 heap allocations");
}
