//! Variable-latency memory controllers with purgeable queues.

use crate::dram::DramConfig;
use crate::stats::MemStats;

/// A bit-mask selecting a subset of the machine's memory controllers, mirroring
/// the `pos` argument of `tmc_alloc_set_nodes_interleaved` on the prototype
/// (e.g. `0b0011` dedicates MC0 and MC1 to the secure cluster).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ControllerMask(pub u32);

impl ControllerMask {
    /// A mask selecting controllers `[0, count)`.
    pub fn first(count: usize) -> Self {
        assert!(count <= 32, "at most 32 controllers are supported");
        if count == 32 {
            ControllerMask(u32::MAX)
        } else {
            ControllerMask((1u32 << count) - 1)
        }
    }

    /// A mask selecting controllers `[start, start + count)`.
    ///
    /// # Panics
    ///
    /// Panics if `start + count > 32` — the range would silently shift
    /// selected bits off the top of the mask otherwise.
    pub fn range(start: usize, count: usize) -> Self {
        assert!(
            start.checked_add(count).is_some_and(|end| end <= 32),
            "controller range [{start}, {start} + {count}) exceeds the 32-controller mask"
        );
        ControllerMask(ControllerMask::first(count).0 << start)
    }

    /// Whether controller `id` is selected.
    pub fn contains(self, id: usize) -> bool {
        id < 32 && (self.0 >> id) & 1 == 1
    }

    /// Number of selected controllers.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the selected controller ids in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..32usize).filter(move |i| self.contains(*i))
    }

    /// Whether this mask shares any controller with `other` (strong isolation
    /// requires cluster masks to be disjoint).
    pub fn overlaps(self, other: ControllerMask) -> bool {
        self.0 & other.0 != 0
    }
}

/// A single memory controller: open-row tracking per bank plus an occupancy
/// based queueing-delay model, and the purge operation used by MI6.
#[derive(Debug, Clone)]
pub struct MemoryController {
    id: usize,
    config: DramConfig,
    open_rows: Vec<Option<u64>>,
    queue_occupancy: f64,
    /// Injected fault stall: extra cycles charged on every request while the
    /// controller is degraded (0 on a healthy controller).
    fault_stall_cycles: u64,
    stats: MemStats,
}

impl MemoryController {
    /// Creates controller `id` with the given DRAM parameters.
    pub fn new(id: usize, config: DramConfig) -> Self {
        MemoryController {
            id,
            config,
            open_rows: vec![None; config.banks],
            queue_occupancy: 0.0,
            fault_stall_cycles: 0,
            stats: MemStats::new(),
        }
    }

    /// Degrades (or, with 0, repairs) the controller: every subsequent request
    /// is charged `cycles` extra, modelling a controller stalling on retries
    /// after an internal fault. Used by the fault-injection layer.
    pub fn set_fault_stall(&mut self, cycles: u64) {
        self.fault_stall_cycles = cycles;
    }

    /// The injected per-request fault stall currently in effect (0 when
    /// healthy).
    pub fn fault_stall(&self) -> u64 {
        self.fault_stall_cycles
    }

    /// This controller's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// DRAM parameters in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets statistics without touching device state.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Current estimated queue occupancy (requests waiting).
    pub fn queue_occupancy(&self) -> f64 {
        self.queue_occupancy
    }

    /// Services one request for `addr`. `concurrent_pressure` is the number of
    /// other requests the caller knows to be outstanding (used to scale the
    /// queueing term when many cores share the controller). Returns the total
    /// latency in cycles.
    pub fn access(&mut self, addr: u64, write: bool, concurrent_pressure: u64) -> u64 {
        let bank = self.config.bank_of(addr);
        let row = self.config.row_of(addr);
        let row_hit = self.open_rows[bank] == Some(row);
        self.open_rows[bank] = Some(row);

        // Queue model: exponential moving average of occupancy, nudged by the
        // caller-reported pressure, capped at the physical queue depth.
        let target = (concurrent_pressure as f64).min(self.config.queue_depth as f64);
        self.queue_occupancy = 0.9 * self.queue_occupancy + 0.1 * target;
        let queue_delay =
            (self.queue_occupancy.round() as u64) * self.config.queue_cycles_per_entry;

        let device = if row_hit { self.config.row_hit_cycles } else { self.config.row_miss_cycles };
        let total = device + queue_delay + self.fault_stall_cycles;

        self.stats.requests += 1;
        if write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if row_hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        self.stats.total_latency_cycles += total;
        total
    }

    /// Resets the controller to its just-constructed state (closed rows,
    /// empty queue estimate, statistics zeroed). Used when a scratch machine
    /// is recycled.
    pub fn reset_pristine(&mut self) {
        for r in &mut self.open_rows {
            *r = None;
        }
        self.queue_occupancy = 0.0;
        self.fault_stall_cycles = 0;
        self.stats.reset();
    }

    /// Purges the controller's queues and open-row state
    /// (`tmc_mem_fence_node` on the prototype): all buffered state that could
    /// leak across an enclave boundary is drained. Returns the cycles charged
    /// for draining, proportional to the estimated occupancy.
    pub fn purge(&mut self) -> u64 {
        let drain = (self.queue_occupancy.round() as u64) * self.config.queue_cycles_per_entry * 2;
        self.queue_occupancy = 0.0;
        for r in &mut self.open_rows {
            *r = None;
        }
        self.stats.purges += 1;
        drain + self.config.row_miss_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_construction() {
        assert_eq!(ControllerMask::first(2).0, 0b0011);
        assert_eq!(ControllerMask::range(2, 2).0, 0b1100);
        assert!(ControllerMask::first(2).contains(0));
        assert!(!ControllerMask::first(2).contains(2));
        assert_eq!(ControllerMask::first(4).count(), 4);
        assert_eq!(ControllerMask::range(1, 3).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn range_at_the_top_of_the_mask_is_exact() {
        assert_eq!(ControllerMask::range(28, 4).0, 0xF000_0000);
        assert_eq!(ControllerMask::range(0, 32).0, u32::MAX);
        assert_eq!(ControllerMask::range(31, 1).iter().collect::<Vec<_>>(), vec![31]);
    }

    #[test]
    #[should_panic(expected = "exceeds the 32-controller mask")]
    fn range_past_the_top_is_rejected() {
        let _ = ControllerMask::range(30, 3);
    }

    #[test]
    fn disjoint_masks_do_not_overlap() {
        let secure = ControllerMask::first(2);
        let insecure = ControllerMask::range(2, 2);
        assert!(!secure.overlaps(insecure));
        assert!(secure.overlaps(ControllerMask::first(1)));
    }

    #[test]
    fn row_hit_is_cheaper_than_row_miss() {
        let mut mc = MemoryController::new(0, DramConfig::default());
        let miss = mc.access(0x0, false, 0);
        let hit = mc.access(0x40, false, 0);
        assert!(hit < miss);
        assert_eq!(mc.stats().row_hits, 1);
        assert_eq!(mc.stats().row_misses, 1);
    }

    #[test]
    fn queue_pressure_raises_latency() {
        let mut quiet = MemoryController::new(0, DramConfig::default());
        let mut busy = MemoryController::new(1, DramConfig::default());
        let mut quiet_total = 0;
        let mut busy_total = 0;
        for i in 0..100u64 {
            quiet_total += quiet.access(i * 64, false, 0);
            busy_total += busy.access(i * 64, false, 16);
        }
        assert!(busy_total > quiet_total);
    }

    #[test]
    fn purge_resets_row_buffers_and_counts() {
        let mut mc = MemoryController::new(0, DramConfig::default());
        mc.access(0x0, false, 4);
        let hit_before = mc.access(0x40, false, 4);
        let drain = mc.purge();
        assert!(drain > 0);
        assert_eq!(mc.stats().purges, 1);
        // After a purge the open row is lost, so the same address misses again.
        let after = mc.access(0x80, false, 0);
        assert!(after >= hit_before);
        assert_eq!(mc.queue_occupancy(), 0.0);
    }

    #[test]
    fn fault_stall_charges_every_request_until_repaired() {
        let mut healthy = MemoryController::new(0, DramConfig::default());
        let mut degraded = MemoryController::new(1, DramConfig::default());
        degraded.set_fault_stall(123);
        assert_eq!(degraded.fault_stall(), 123);
        for i in 0..10u64 {
            let h = healthy.access(i * 64, false, 4);
            let d = degraded.access(i * 64, false, 4);
            assert_eq!(d, h + 123, "request {i}");
        }
        degraded.set_fault_stall(0);
        assert_eq!(degraded.access(0x4000, false, 4), healthy.access(0x4000, false, 4));
        degraded.set_fault_stall(7);
        degraded.reset_pristine();
        assert_eq!(degraded.fault_stall(), 0, "pristine reset must repair the controller");
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let mut mc = MemoryController::new(0, DramConfig::default());
        mc.access(0x0, false, 0);
        mc.access(0x1000, true, 0);
        assert_eq!(mc.stats().reads, 1);
        assert_eq!(mc.stats().writes, 1);
        assert_eq!(mc.stats().requests, 2);
        assert!(mc.stats().mean_latency() > 0.0);
    }
}
