//! A functional set-associative cache with configurable replacement.
//!
//! Storage is a single contiguous `Vec<Way>` indexed by `set * ways + way`
//! (no per-set inner vectors), set/tag extraction uses shift/mask when the
//! geometry is a power of two, and victim selection reads the way metadata in
//! place — so a steady-state access performs **zero heap allocations**.

use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;

/// A line evicted by a fill or flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Physical address of the first byte of the evicted line.
    pub addr: u64,
    /// Whether the line was dirty (and therefore needs a write-back).
    pub dirty: bool,
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled, possibly evicting a victim.
    Miss {
        /// The victim line displaced by the fill, if the set was full.
        evicted: Option<Evicted>,
    },
}

impl AccessOutcome {
    /// Whether this outcome is a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Whether this outcome is a miss.
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// The evicted victim, if any.
    pub fn evicted(&self) -> Option<Evicted> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => *evicted,
        }
    }
}

/// Metadata of one way of a set: validity, dirtiness, the tag, and the
/// recency/fill stamps the replacement policies read. Exposed so
/// [`ReplacementPolicy::victim`] can select a victim directly from the set's
/// slice without the cache copying stamps into temporaries.
#[derive(Debug, Clone, Copy, Default)]
pub struct Way {
    pub(crate) valid: bool,
    pub(crate) dirty: bool,
    pub(crate) tag: u64,
    pub(crate) last_use: u64,
    pub(crate) filled_at: u64,
}

impl Way {
    /// Whether the way holds a valid line.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// Whether the line is dirty.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// The line's tag.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// Monotonic stamp of the last access (LRU input).
    pub fn last_use(&self) -> u64 {
        self.last_use
    }

    /// Monotonic stamp of the fill (FIFO input).
    pub fn filled_at(&self) -> u64 {
        self.filled_at
    }

    /// A valid way with the given recency/fill stamps (for policy tests).
    #[cfg(test)]
    pub(crate) fn stamped(last_use: u64, filled_at: u64) -> Self {
        Way { valid: true, dirty: false, tag: 0, last_use, filled_at }
    }
}

/// Allocates `n` default (all-invalid) ways from zeroed memory.
///
/// `vec![Way::default(); n]` writes every byte eagerly, faulting in the whole
/// allocation; for a paper-scale machine that is ~12 MB of `Way` arrays per
/// simulated machine, and sweeps build thousands of scratch machines (one per
/// cell plus one per re-allocation predictor probe). Requesting *zeroed*
/// memory instead lets the allocator hand back untouched copy-on-write zero
/// pages, so sets that are never filled are never faulted in.
fn zeroed_ways(n: usize) -> Vec<Way> {
    if n == 0 {
        return Vec::new();
    }
    let layout = std::alloc::Layout::array::<Way>(n).expect("way array layout fits in memory");
    // SAFETY: `Way` is a plain-old-data struct of bools and unsigned integers
    // whose all-zero byte pattern is exactly `Way::default()` (`false` is 0,
    // every counter starts at 0), so `n` zeroed `Way`s are fully initialised.
    // The pointer comes from the global allocator with the same layout
    // `Vec` expects for a `Vec<Way>` of capacity `n`, which makes
    // `Vec::from_raw_parts` sound; the `Vec` takes ownership and frees it
    // through the same allocator.
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout) as *mut Way;
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Vec::from_raw_parts(ptr, n, n)
    }
}

/// How set index and tag are carved out of an address. Power-of-two
/// geometries (the only ones [`CacheConfig::new`] admits) use shift/mask; the
/// div/mod fallback keeps directly-constructed odd geometries working.
#[derive(Debug, Clone, Copy)]
enum IndexScheme {
    /// `line = addr >> line_shift`, `index = line & set_mask`,
    /// `tag = line >> set_shift`.
    Pow2 { line_shift: u32, set_mask: u64, set_shift: u32 },
    /// General division/remainder form.
    Generic { line_bytes: u64, sets: u64 },
}

/// A functional set-associative cache.
///
/// The cache tracks tags, validity and dirtiness only — no data payloads —
/// which is all the timing model needs. All operations are O(associativity).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    policy: ReplacementPolicy,
    /// All ways of all sets, contiguous: way `w` of set `s` lives at
    /// `s * config.ways + w`.
    ways: Vec<Way>,
    scheme: IndexScheme,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with LRU replacement.
    pub fn new(config: CacheConfig) -> Self {
        SetAssocCache::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with the given replacement policy.
    pub fn with_policy(config: CacheConfig, policy: ReplacementPolicy) -> Self {
        let sets = config.sets();
        let scheme = if config.line_bytes.is_power_of_two() && sets.is_power_of_two() {
            IndexScheme::Pow2 {
                line_shift: config.line_bytes.trailing_zeros(),
                set_mask: sets as u64 - 1,
                set_shift: sets.trailing_zeros(),
            }
        } else {
            IndexScheme::Generic { line_bytes: config.line_bytes as u64, sets: sets as u64 }
        };
        SetAssocCache {
            config,
            policy,
            ways: zeroed_ways(sets * config.ways),
            scheme,
            tick: 0,
            stats: CacheStats::new(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    #[inline]
    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        match self.scheme {
            IndexScheme::Pow2 { line_shift, set_mask, set_shift } => {
                let line = addr >> line_shift;
                ((line & set_mask) as usize, line >> set_shift)
            }
            IndexScheme::Generic { line_bytes, sets } => {
                let line = addr / line_bytes;
                ((line % sets) as usize, line / sets)
            }
        }
    }

    #[inline]
    fn line_addr(&self, index: usize, tag: u64) -> u64 {
        match self.scheme {
            IndexScheme::Pow2 { line_shift, set_mask: _, set_shift } => {
                ((tag << set_shift) | index as u64) << line_shift
            }
            IndexScheme::Generic { line_bytes, sets } => (tag * sets + index as u64) * line_bytes,
        }
    }

    /// The ways of set `index` as a contiguous slice.
    #[inline]
    fn set(&self, index: usize) -> &[Way] {
        let base = index * self.config.ways;
        &self.ways[base..base + self.config.ways]
    }

    /// Looks up `addr` without modifying any state (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.set(index).iter().any(|w| w.valid && w.tag == tag)
    }

    /// Performs a read (`write == false`) or write (`write == true`) access to
    /// the line containing `addr`, filling it on a miss.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let (index, tag) = self.index_and_tag(addr);
        let assoc = self.config.ways;
        let policy = self.policy;
        let tick = self.tick;
        let base = index * assoc;
        let set = &mut self.ways[base..base + assoc];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = tick;
            way.dirty |= write;
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        // Fill: find an invalid way, otherwise evict a victim chosen directly
        // from the way metadata (no temporary stamp vectors).
        let victim_idx = match set.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => policy.victim(set, tick),
        };
        let victim = set[victim_idx];
        let evicted = if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            Some(Evicted { addr: self.line_addr(index, victim.tag), dirty: victim.dirty })
        } else {
            None
        };
        self.ways[base + victim_idx] =
            Way { valid: true, dirty: write, tag, last_use: tick, filled_at: tick };
        AccessOutcome::Miss { evicted }
    }

    /// Invalidates the line containing `addr` if present, returning it.
    pub fn invalidate(&mut self, addr: u64) -> Option<Evicted> {
        let (index, tag) = self.index_and_tag(addr);
        let line_addr = self.line_addr(index, tag);
        let base = index * self.config.ways;
        let set = &mut self.ways[base..base + self.config.ways];
        let way = set.iter_mut().find(|w| w.valid && w.tag == tag)?;
        let dirty = way.dirty;
        way.valid = false;
        way.dirty = false;
        self.stats.flushed_lines += 1;
        if dirty {
            self.stats.writebacks += 1;
        }
        Some(Evicted { addr: line_addr, dirty })
    }

    /// Flushes and invalidates the whole cache (the MI6 purge operation),
    /// returning the number of dirty lines that had to be written back.
    pub fn purge(&mut self) -> u64 {
        let mut dirty = 0;
        let mut valid = 0;
        for way in &mut self.ways {
            if way.valid {
                valid += 1;
                if way.dirty {
                    dirty += 1;
                }
            }
            *way = Way::default();
        }
        self.stats.purges += 1;
        self.stats.flushed_lines += valid;
        self.stats.writebacks += dirty;
        dirty
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Number of valid dirty lines currently resident.
    pub fn dirty_lines(&self) -> usize {
        self.ways.iter().filter(|w| w.valid && w.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64-byte lines = 512 bytes.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(c.access(0x0, false).is_miss());
        assert!(c.access(0x0, false).is_hit());
        assert!(c.access(0x3f, false).is_hit(), "same line must hit");
        assert!(c.access(0x40, false).is_miss(), "next line must miss");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets * line = 256 bytes).
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 so 0x100 becomes LRU
        let out = c.access(0x200, false);
        let ev = out.evicted().expect("full set must evict");
        assert_eq!(ev.addr, 0x100);
        assert!(!ev.dirty);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x000, true);
        c.access(0x100, false);
        let out = c.access(0x200, false);
        let ev = out.evicted().unwrap();
        assert_eq!(ev.addr, 0x000);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn purge_empties_and_counts() {
        let mut c = small();
        for i in 0..8u64 {
            c.access(i * 64, i % 2 == 0);
        }
        assert_eq!(c.resident_lines(), 8);
        assert_eq!(c.dirty_lines(), 4);
        let dirty = c.purge();
        assert_eq!(dirty, 4);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().purges, 1);
        assert_eq!(c.stats().flushed_lines, 8);
        // Everything misses again after the purge: this is the MI6 cold-start.
        assert!(c.access(0x0, false).is_miss());
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = small();
        c.access(0x80, true);
        let ev = c.invalidate(0x80).unwrap();
        assert!(ev.dirty);
        assert!(!c.probe(0x80));
        assert!(c.invalidate(0x80).is_none());
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = small();
        c.access(0x40, false);
        assert_eq!(c.dirty_lines(), 0);
        c.access(0x40, true);
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x100, false);
        let before = *c.stats();
        // Probing 0x000 must not refresh its recency, count as an access, or
        // change any other statistic.
        assert!(c.probe(0x000));
        assert_eq!(c.stats().accesses, before.accesses);
        assert_eq!(c.stats().hits, before.hits);
        assert_eq!(c.stats().misses, before.misses);
        c.access(0x200, false);
        // LRU victim must still be 0x000: the probe did not touch recency.
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small(); // 8 lines capacity
        for round in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64, false);
            }
            let _ = round;
        }
        // With a cyclic working set of twice the capacity under LRU, every
        // access misses after the first round too.
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn fifo_policy_differs_from_lru() {
        let mut c =
            SetAssocCache::with_policy(CacheConfig::new(512, 2, 64), ReplacementPolicy::Fifo);
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // does not matter for FIFO
        let ev = c.access(0x200, false).evicted().unwrap();
        assert_eq!(ev.addr, 0x000, "FIFO evicts the first-filled way");
    }

    #[test]
    fn generic_fallback_matches_pow2_indexing() {
        // Construct a non-power-of-two set count directly (bypassing
        // `CacheConfig::new`'s assertion) to exercise the div/mod fallback.
        let odd = CacheConfig { size_bytes: 3 * 2 * 64, ways: 2, line_bytes: 64 };
        assert_eq!(odd.sets(), 3);
        let mut c = SetAssocCache::new(odd);
        assert!(c.access(0x000, false).is_miss());
        assert!(c.access(0x000, false).is_hit());
        // Lines 0 and 3 share set 0 under mod-3 indexing.
        c.access(3 * 64, true);
        let ev = c.access(6 * 64, false).evicted().expect("2-way set 0 overflows");
        assert_eq!(ev.addr, 0x000);
        assert!(c.probe(3 * 64));
    }
}
