//! The per-home-slice MESI coherence directory.
//!
//! The Tile-Gx-class machine this reproduction models keeps the logically
//! shared L2 physically distributed: every physical line has a *home* slice,
//! and that home is the serialisation point for coherence. Each home slice
//! owns a [`Directory`] — a set-associative array of entries tracking, per
//! line, the MESI state, the set of cores whose private L1 may hold a copy
//! (a [`NodeSet`] bitset) and the owning core for the exclusive-side
//! states. The machine consults the home directory on every L1 fill and on
//! every write-upgrade of a Shared line, and turns the returned
//! [`DirOutcome`] into cross-core invalidation/downgrade messages charged on
//! the real mesh routes.
//!
//! # The state machine
//!
//! A line tracked by a directory entry is in one of three states (absence of
//! a live entry is the Invalid state):
//!
//! * **Exclusive** — exactly one core holds the line, clean. Granted to the
//!   sole reader of a line. The owner may silently upgrade its copy to
//!   Modified (an ordinary write hit, no message), which is why every
//!   foreign access to an Exclusive entry still interrogates the owner.
//! * **Modified** — exactly one core holds the line and has announced a
//!   write (a write fill or a write-upgrade). Foreign reads force a
//!   write-back and a downgrade to Shared; foreign writes force an
//!   invalidation.
//! * **Shared** — more than one core may hold the line, all clean. Reads
//!   join the sharer set silently; a write must invalidate every other
//!   sharer before it completes (the write-upgrade).
//!
//! The sharer set is maintained *conservatively*: clean L1 evictions are
//! silent (as on real directory hardware), so a recorded sharer may no
//! longer hold the line. Stale sharers cost useless invalidation messages,
//! never correctness — an invalidation of an absent line is a no-op at the
//! cache.
//!
//! # Capacity and back-invalidation
//!
//! The directory is a real SRAM structure with bounded capacity
//! ([`DirectoryConfig`]). When a fill needs a slot in a full set, an LRU
//! victim entry is evicted and every copy it tracked must be
//! **back-invalidated** — the protocol cannot track a line it has no entry
//! for. This is exactly the structural property behind
//! directory-conflict attacks ("attack directories, not caches"): a
//! process that fills directory sets evicts *other processes'* entries and
//! thereby knocks their lines out of private L1s they never touched. The
//! `coherence-state` covert channel in `ironhide-attacks` exploits it, and
//! IRONHIDE's per-cluster slice (and therefore directory) partitioning is
//! what closes it.
//!
//! # Purging
//!
//! [`Directory::purge`] is O(1): entries are generation-tagged like the
//! cache [`Way`](crate::set_assoc::Way)s, so one generation bump kills every
//! entry without walking the array. A bare directory purge deliberately does
//! **not** back-invalidate the copies its entries tracked — it is only
//! coherent when the caller purges the affected private caches in the same
//! stalled operation, which is exactly how the two call sites use it: the
//! MI6 enclave boundary purges every private L1 alongside every directory,
//! and IRONHIDE's cluster reconfiguration purges the moved slices'
//! directories after the moved tiles' private state is flushed and the
//! re-homed pages' lines are scrubbed.

use ironhide_mesh::{NodeId, NodeSet};

use crate::config::CacheConfig;

/// Geometry of one home slice's coherence directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DirectoryConfig {
    /// Number of directory sets.
    pub sets: usize,
    /// Entries per set.
    pub ways: usize,
}

/// A zero-dimension directory geometry, reported as a value so campaign
/// harnesses can log the bad configuration instead of aborting mid-sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectoryConfigError {
    /// Requested set count.
    pub sets: usize,
    /// Requested ways per set.
    pub ways: usize,
}

impl std::fmt::Display for DirectoryConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "directory geometry must be non-zero (sets = {}, ways = {})",
            self.sets, self.ways
        )
    }
}

impl std::error::Error for DirectoryConfigError {}

impl DirectoryConfig {
    /// Creates a directory geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; fallible callers use
    /// [`DirectoryConfig::try_new`].
    pub fn new(sets: usize, ways: usize) -> Self {
        DirectoryConfig::try_new(sets, ways).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a directory geometry, reporting a zero dimension as a typed
    /// [`DirectoryConfigError`] instead of panicking.
    pub fn try_new(sets: usize, ways: usize) -> Result<Self, DirectoryConfigError> {
        if sets == 0 || ways == 0 {
            return Err(DirectoryConfigError { sets, ways });
        }
        Ok(DirectoryConfig { sets, ways })
    }

    /// The conventional sizing for a home slice of geometry `l2`: one
    /// directory entry per slice line (1× coverage) at an associativity of
    /// `min(l2.ways, 4)`. 1× coverage is deliberately *tight* — it keeps the
    /// directory an honest bounded structure whose conflict behaviour (and
    /// conflict channel) exists, as on real parts, instead of an unbounded
    /// full map.
    pub fn for_l2_slice(l2: &CacheConfig) -> Self {
        let ways = l2.ways.clamp(1, 4);
        DirectoryConfig { sets: (l2.lines() / ways).max(1), ways }
    }

    /// Total entries the directory can hold.
    pub fn entries(&self) -> usize {
        self.sets * self.ways
    }
}

/// The MESI state a directory entry records for its line (Invalid is the
/// absence of a live entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum MesiState {
    /// Multiple cores may hold clean copies.
    #[default]
    Shared = 0,
    /// Exactly one core holds a clean copy (and may silently modify it).
    Exclusive = 1,
    /// Exactly one core holds the line and has announced a write.
    Modified = 2,
}

/// One directory entry: the tracked line, its MESI state, the conservative
/// sharer set and the owning core for the exclusive-side states.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    /// Line number (physical address / line size) this entry tracks.
    line: u64,
    /// Cores whose L1 may hold a copy.
    sharers: NodeSet,
    /// LRU stamp.
    last_use: u64,
    /// Liveness generation (see [`Directory::purge`]).
    generation: u32,
    /// Owning core, meaningful in the Exclusive/Modified states.
    owner: u16,
    /// MESI state of the line.
    state: MesiState,
    /// Whether the entry has ever been filled (dead entries are reused
    /// before live victims are evicted).
    valid: bool,
}

/// Counters of one directory's activity (aggregated machine-wide into
/// `MachineStats` by the simulator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirectoryStats {
    /// Directory transactions (one per L1 fill or write-upgrade at this
    /// home).
    pub lookups: u64,
    /// Transactions that found a live entry for their line.
    pub hits: u64,
    /// Entries allocated (one per tracked-line fill).
    pub allocations: u64,
    /// Foreign copies invalidated on behalf of writers.
    pub invalidations: u64,
    /// Foreign owners downgraded to Shared on behalf of readers.
    pub downgrades: u64,
    /// Copies back-invalidated because their entry was evicted for capacity.
    pub back_invalidations: u64,
    /// O(1) whole-directory purges performed.
    pub purges: u64,
    /// Live entries dropped by purges and explicit line drops.
    pub flushed_entries: u64,
}

impl DirectoryStats {
    /// Merges another block into this one.
    pub fn merge(&mut self, other: &DirectoryStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.allocations += other.allocations;
        self.invalidations += other.invalidations;
        self.downgrades += other.downgrades;
        self.back_invalidations += other.back_invalidations;
        self.purges += other.purges;
        self.flushed_entries += other.flushed_entries;
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = DirectoryStats::default();
    }
}

/// A directory entry displaced for capacity: its line and the copies that
/// must be back-invalidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedEntry {
    /// Line number the evicted entry tracked.
    pub line: u64,
    /// Cores whose copy of that line must be back-invalidated.
    pub sharers: NodeSet,
}

/// What the machine must do to complete one directory transaction: the
/// foreign copies to invalidate or downgrade (each costs a maintenance
/// round trip on the requester's critical path), an optional capacity
/// eviction (back-invalidations, charged off the critical path like
/// ordinary victim write-backs), and the Shared bit the requester's own L1
/// line ends with.
#[derive(Debug, Clone, Copy)]
pub struct DirOutcome {
    /// Foreign cores whose copy must be invalidated before the access
    /// completes (writes only).
    pub invalidate: NodeSet,
    /// Foreign cores whose copy must be downgraded Modified/Exclusive →
    /// Shared before the access completes (reads of owned lines).
    pub downgrade: NodeSet,
    /// Live entry displaced to make room for this transaction's line.
    pub evicted: Option<EvictedEntry>,
    /// Whether the requester's L1 line ends in the Shared state.
    pub shared: bool,
}

/// Allocates `n` default (all-dead) entries from zeroed memory, the same
/// lazy-zero-page trick `zeroed_ways` uses for the cache way arrays: a
/// paper-scale machine carries ~16 MB of directory entries across its 64
/// slices, and sets that are never filled should never be faulted in.
fn zeroed_entries(n: usize) -> Vec<DirEntry> {
    if n == 0 {
        return Vec::new();
    }
    let layout = std::alloc::Layout::array::<DirEntry>(n).expect("entry array layout fits");
    // SAFETY: `DirEntry` is plain old data — bools, unsigned integers, a
    // `NodeSet` of four `u64` words and the `repr(u8)` `MesiState` whose
    // zero discriminant is the valid `Shared` variant — so the all-zero
    // byte pattern is exactly `DirEntry::default()` and `n` zeroed entries
    // are fully initialised. The pointer comes from the global allocator
    // with the layout `Vec` expects for capacity `n`, making
    // `Vec::from_raw_parts` sound; the `Vec` owns and frees it through the
    // same allocator.
    unsafe {
        let ptr = std::alloc::alloc_zeroed(layout) as *mut DirEntry;
        if ptr.is_null() {
            std::alloc::handle_alloc_error(layout);
        }
        Vec::from_raw_parts(ptr, n, n)
    }
}

/// The coherence directory of one home slice (see the module docs).
#[derive(Debug, Clone)]
pub struct Directory {
    config: DirectoryConfig,
    /// All entries of all sets, contiguous: way `w` of set `s` lives at
    /// `s * config.ways + w`.
    entries: Vec<DirEntry>,
    /// LRU clock.
    tick: u64,
    /// Current liveness generation (entries of older generations are dead).
    generation: u32,
    /// Live entries, maintained incrementally so purges and occupancy
    /// queries never walk the array.
    live_count: usize,
    stats: DirectoryStats,
    /// Transactions served by [`Directory::access_private_fast`]. A pure
    /// diagnostic — deliberately *not* part of [`DirectoryStats`], because
    /// whether the fast path fired is an implementation detail the
    /// scalar/batched byte-identity contract must not observe.
    fast_hits: u64,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new(config: DirectoryConfig) -> Self {
        Directory {
            entries: zeroed_entries(config.entries()),
            config,
            tick: 0,
            generation: 0,
            live_count: 0,
            stats: DirectoryStats::default(),
            fast_hits: 0,
        }
    }

    /// The directory geometry.
    pub fn config(&self) -> &DirectoryConfig {
        &self.config
    }

    /// Activity counters accumulated so far.
    pub fn stats(&self) -> &DirectoryStats {
        &self.stats
    }

    /// Resets the counters without touching directory contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Number of live entries (O(1), maintained incrementally).
    pub fn resident_entries(&self) -> usize {
        self.live_count
    }

    #[inline]
    fn set_range(&self, line: u64) -> (usize, usize) {
        let base = (line % self.config.sets as u64) as usize * self.config.ways;
        (base, base + self.config.ways)
    }

    #[inline]
    fn live(&self, e: &DirEntry) -> bool {
        e.valid && e.generation == self.generation
    }

    /// Performs one directory transaction for `core`'s access to `line`
    /// (`write` selects the invalidating transitions), updating the entry
    /// and returning the copy-set actions the machine must charge. Called
    /// on every L1 fill and on every write-upgrade of a Shared L1 line.
    pub fn access(&mut self, line: u64, core: NodeId, write: bool) -> DirOutcome {
        self.access_locate(line, core, write).0
    }

    /// [`Directory::access`], additionally returning the index of the entry
    /// the line ended in (`set * ways + way`) — the hint a caller can replay
    /// through [`Directory::access_private_fast`] on its next access to the
    /// same line.
    pub fn access_locate(&mut self, line: u64, core: NodeId, write: bool) -> (DirOutcome, u32) {
        self.tick += 1;
        self.stats.lookups += 1;
        let tick = self.tick;
        let generation = self.generation;
        let (lo, hi) = self.set_range(line);
        let mut outcome = DirOutcome {
            invalidate: NodeSet::default(),
            downgrade: NodeSet::default(),
            evicted: None,
            shared: false,
        };
        if let Some((way, e)) = self.entries[lo..hi]
            .iter_mut()
            .enumerate()
            .find(|(_, e)| e.valid && e.generation == generation && e.line == line)
        {
            self.stats.hits += 1;
            e.last_use = tick;
            if write {
                // Write (fill or upgrade): every other tracked copy dies
                // before the write completes; the line is Modified, owned
                // by the requester.
                let mut others = e.sharers;
                others.remove(core);
                outcome.invalidate = others;
                e.sharers.clear();
                e.sharers.insert(core);
                e.owner = core.0 as u16;
                e.state = MesiState::Modified;
                self.stats.invalidations += others.len() as u64;
            } else {
                // Read: a foreign owner (Exclusive may hide a silent
                // Modified) is interrogated and downgraded; the requester
                // joins the sharer set.
                let owner = NodeId(e.owner as usize);
                if matches!(e.state, MesiState::Exclusive | MesiState::Modified) && owner != core {
                    outcome.downgrade.insert(owner);
                    self.stats.downgrades += 1;
                }
                e.sharers.insert(core);
                if e.sharers.len() == 1 {
                    // The requester is the only tracked copy: (re-)grant
                    // exclusivity. This also covers a core re-fetching a
                    // line it silently evicted while owning it.
                    e.owner = core.0 as u16;
                    if e.state == MesiState::Shared {
                        e.state = MesiState::Exclusive;
                    }
                } else {
                    e.state = MesiState::Shared;
                    outcome.shared = true;
                }
            }
            return (outcome, (lo + way) as u32);
        }

        // Allocate: dead entry first, else the LRU victim of the set — whose
        // tracked copies must all be back-invalidated, because a line
        // without a directory entry cannot be kept coherent.
        let set = &self.entries[lo..hi];
        let victim_idx = match set.iter().position(|e| !(e.valid && e.generation == generation)) {
            Some(i) => i,
            None => {
                let mut best = 0;
                for (i, e) in set.iter().enumerate() {
                    if e.last_use < set[best].last_use {
                        best = i;
                    }
                }
                best
            }
        };
        let victim = self.entries[lo + victim_idx];
        if victim.valid && victim.generation == generation {
            outcome.evicted = Some(EvictedEntry { line: victim.line, sharers: victim.sharers });
            self.stats.back_invalidations += victim.sharers.len() as u64;
        } else {
            self.live_count += 1;
        }
        self.stats.allocations += 1;
        let mut sharers = NodeSet::default();
        sharers.insert(core);
        self.entries[lo + victim_idx] = DirEntry {
            line,
            sharers,
            last_use: tick,
            generation,
            owner: core.0 as u16,
            state: if write { MesiState::Modified } else { MesiState::Exclusive },
            valid: true,
        };
        (outcome, (lo + victim_idx) as u32)
    }

    /// Attempts the private-line fast path for `core`'s access to `line`
    /// through a `slot` hint previously returned by
    /// [`Directory::access_locate`]. Applies — and returns `true` — only
    /// when the hinted entry still tracks `line`, is live, and `core` is
    /// its sole sharer: exactly the case where the full transaction would
    /// return an empty [`DirOutcome`] (no invalidations, no downgrades, no
    /// eviction, `shared == false`). It then performs, byte-identically,
    /// the updates the full transaction would: the LRU touch, the
    /// lookup/hit accounting, the ownership re-grant and the Modified
    /// (write) / Shared→Exclusive (read) transition. A `false` return means
    /// the hint was stale — the probe mutates nothing (not even the LRU
    /// clock or counters) and the caller runs the full transaction.
    pub fn access_private_fast(&mut self, line: u64, core: NodeId, write: bool, slot: u32) -> bool {
        let generation = self.generation;
        let tick = self.tick + 1;
        let e = match self.entries.get_mut(slot as usize) {
            Some(e)
                if e.valid
                    && e.generation == generation
                    && e.line == line
                    && e.sharers.len() == 1
                    && e.sharers.contains(core) =>
            {
                e
            }
            _ => return false,
        };
        e.last_use = tick;
        e.owner = core.0 as u16;
        if write {
            e.state = MesiState::Modified;
        } else if e.state == MesiState::Shared {
            e.state = MesiState::Exclusive;
        }
        self.tick = tick;
        self.stats.lookups += 1;
        self.stats.hits += 1;
        self.fast_hits += 1;
        true
    }

    /// Transactions served by the private-line fast path so far (a
    /// diagnostic counter outside [`DirectoryStats`]; see the field docs).
    pub fn fast_hits(&self) -> u64 {
        self.fast_hits
    }

    /// Drops the live entry tracking `line`, if any, without generating any
    /// back-invalidation (the caller is responsible for scrubbing the
    /// tracked copies — used when a page is re-homed away from this slice
    /// during a stalled reconfiguration). Returns whether an entry was
    /// dropped.
    pub fn drop_line(&mut self, line: u64) -> bool {
        let generation = self.generation;
        let (lo, hi) = self.set_range(line);
        match self.entries[lo..hi]
            .iter_mut()
            .find(|e| e.valid && e.generation == generation && e.line == line)
        {
            Some(e) => {
                e.valid = false;
                self.live_count -= 1;
                self.stats.flushed_entries += 1;
                true
            }
            None => false,
        }
    }

    /// Drops the live entries of the `count`-line run starting at
    /// `base_line` (a re-homed page's worth of consecutive lines) in one
    /// pass, returning the union of the dropped entries' sharer sets and
    /// the number of entries dropped. Byte-identical in effects and
    /// statistics to `count` scalar [`Directory::drop_line`] calls —
    /// `flushed_entries` only counts entries that existed — but short-
    /// circuits entirely when the directory is empty, and the union sharer
    /// set lets the caller scrub only L1s the inclusivity invariant says
    /// can still hold a tracked copy.
    pub fn drop_page_lines(&mut self, base_line: u64, count: u64) -> (NodeSet, u64) {
        let mut union = NodeSet::default();
        let mut dropped = 0u64;
        if self.live_count == 0 {
            return (union, 0);
        }
        let generation = self.generation;
        for line in base_line..base_line + count {
            let (lo, hi) = self.set_range(line);
            if let Some(e) = self.entries[lo..hi]
                .iter_mut()
                .find(|e| e.valid && e.generation == generation && e.line == line)
            {
                union.union_with(&e.sharers);
                e.valid = false;
                self.live_count -= 1;
                dropped += 1;
            }
        }
        self.stats.flushed_entries += dropped;
        (union, dropped)
    }

    /// The live entry for `line`, as `(state, sharers, owner)`, without
    /// disturbing any state. Observability for invariant checks and tests.
    pub fn probe(&self, line: u64) -> Option<(MesiState, NodeSet, NodeId)> {
        let (lo, hi) = self.set_range(line);
        self.entries[lo..hi]
            .iter()
            .find(|e| self.live(e) && e.line == line)
            .map(|e| (e.state, e.sharers, NodeId(e.owner as usize)))
    }

    /// Visits every live entry as `(line, state, sharers, owner)`, in array
    /// order. Observability for invariant checks and tests.
    pub fn for_each_live(&self, mut f: impl FnMut(u64, MesiState, NodeSet, NodeId)) {
        for e in &self.entries {
            if self.live(e) {
                f(e.line, e.state, e.sharers, NodeId(e.owner as usize));
            }
        }
    }

    /// Invalidates every entry in O(1) by starting a new liveness
    /// generation, returning the number of live entries dropped. See the
    /// module docs for when a bare directory purge is coherent.
    pub fn purge(&mut self) -> u64 {
        let dropped = self.live_count as u64;
        self.bump_generation();
        self.live_count = 0;
        self.stats.purges += 1;
        self.stats.flushed_entries += dropped;
        dropped
    }

    /// Starts a new liveness generation, falling back to a real clear on
    /// the (practically unreachable) u32 wrap so stale generations can
    /// never alias.
    fn bump_generation(&mut self) {
        if self.generation == u32::MAX {
            self.entries.fill(DirEntry::default());
            self.generation = 0;
        } else {
            self.generation += 1;
        }
    }

    /// Resets the directory to its just-constructed state — empty, counters
    /// zeroed, LRU clock at zero — in O(1), so recycled machines behave
    /// byte-identically to fresh ones.
    pub fn reset_pristine(&mut self) {
        self.bump_generation();
        self.live_count = 0;
        self.tick = 0;
        self.stats.reset();
        self.fast_hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory {
        // 4 sets × 2 ways = 8 entries.
        Directory::new(DirectoryConfig::new(4, 2))
    }

    #[test]
    fn sole_reader_gets_exclusive_then_sharers_downgrade_it() {
        let mut d = dir();
        let out = d.access(7, NodeId(0), false);
        assert!(out.invalidate.is_empty() && out.downgrade.is_empty());
        assert!(!out.shared);
        assert_eq!(d.probe(7).unwrap().0, MesiState::Exclusive);

        // A second reader interrogates the owner and both end Shared.
        let out = d.access(7, NodeId(3), false);
        assert!(out.downgrade.contains(NodeId(0)));
        assert_eq!(out.downgrade.len(), 1);
        assert!(out.shared);
        let (state, sharers, _) = d.probe(7).unwrap();
        assert_eq!(state, MesiState::Shared);
        assert!(sharers.contains(NodeId(0)) && sharers.contains(NodeId(3)));
    }

    #[test]
    fn writer_invalidates_every_other_sharer() {
        let mut d = dir();
        for core in [0usize, 1, 2] {
            d.access(11, NodeId(core), false);
        }
        let out = d.access(11, NodeId(2), true);
        assert!(out.invalidate.contains(NodeId(0)) && out.invalidate.contains(NodeId(1)));
        assert!(!out.invalidate.contains(NodeId(2)), "the writer never invalidates itself");
        let (state, sharers, owner) = d.probe(11).unwrap();
        assert_eq!(state, MesiState::Modified);
        assert_eq!(owner, NodeId(2));
        assert_eq!(sharers.len(), 1);
        assert_eq!(d.stats().invalidations, 2);
    }

    #[test]
    fn modified_owner_is_downgraded_by_a_remote_read() {
        let mut d = dir();
        d.access(5, NodeId(1), true);
        assert_eq!(d.probe(5).unwrap().0, MesiState::Modified);
        let out = d.access(5, NodeId(2), false);
        assert!(out.downgrade.contains(NodeId(1)));
        assert!(out.shared);
        assert_eq!(d.probe(5).unwrap().0, MesiState::Shared);
    }

    #[test]
    fn capacity_eviction_reports_back_invalidations() {
        let mut d = dir();
        // Lines 0, 4, 8 map to set 0 of the 4-set directory; 2-way ⇒ the
        // third allocation evicts the LRU entry (line 0) with its sharers.
        d.access(0, NodeId(0), false);
        d.access(0, NodeId(1), false);
        d.access(4, NodeId(2), false);
        let out = d.access(8, NodeId(3), true);
        let ev = out.evicted.expect("full set must evict");
        assert_eq!(ev.line, 0);
        assert_eq!(ev.sharers.len(), 2);
        assert_eq!(d.stats().back_invalidations, 2);
        assert!(d.probe(0).is_none());
        assert!(d.probe(4).is_some());
    }

    #[test]
    fn purge_is_generational_and_counts() {
        let mut d = dir();
        for line in 0..6u64 {
            d.access(line, NodeId(0), line % 2 == 0);
        }
        assert_eq!(d.resident_entries(), 6);
        assert_eq!(d.purge(), 6);
        assert_eq!(d.resident_entries(), 0);
        assert!(d.probe(0).is_none());
        assert_eq!(d.stats().purges, 1);
        assert_eq!(d.stats().flushed_entries, 6);
        // The array is reusable: a fresh transaction allocates again.
        assert!(d.access(0, NodeId(1), false).evicted.is_none());
        assert_eq!(d.resident_entries(), 1);
    }

    #[test]
    fn drop_line_removes_without_eviction() {
        let mut d = dir();
        d.access(3, NodeId(0), false);
        assert!(d.drop_line(3));
        assert!(!d.drop_line(3));
        assert!(d.probe(3).is_none());
        assert_eq!(d.resident_entries(), 0);
    }

    #[test]
    fn reset_pristine_matches_fresh() {
        let mut d = dir();
        for line in 0..32u64 {
            d.access(line, NodeId(line as usize % 4), true);
        }
        d.reset_pristine();
        let mut fresh = dir();
        // Same transaction on both produces the same outcome and stats.
        let a = d.access(9, NodeId(1), false);
        let b = fresh.access(9, NodeId(1), false);
        assert_eq!(a.shared, b.shared);
        assert_eq!(a.evicted, b.evicted);
        assert_eq!(d.stats(), fresh.stats());
        assert_eq!(d.resident_entries(), fresh.resident_entries());
    }

    #[test]
    fn zero_geometry_is_a_typed_error() {
        assert_eq!(DirectoryConfig::try_new(4, 2), Ok(DirectoryConfig { sets: 4, ways: 2 }));
        let err = DirectoryConfig::try_new(0, 2).unwrap_err();
        assert_eq!(err, DirectoryConfigError { sets: 0, ways: 2 });
        assert!(format!("{err}").contains("must be non-zero"));
        assert!(DirectoryConfig::try_new(4, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "must be non-zero")]
    fn zero_geometry_panics_through_the_infallible_constructor() {
        let _ = DirectoryConfig::new(0, 0);
    }

    #[test]
    fn for_l2_slice_sizing() {
        let cfg = DirectoryConfig::for_l2_slice(&CacheConfig::new(4096, 4, 64));
        assert_eq!(cfg.entries(), 64);
        assert_eq!(cfg.ways, 4);
        assert_eq!(cfg.sets, 16);
        let paper = DirectoryConfig::for_l2_slice(&CacheConfig::paper_l2_slice());
        assert_eq!(paper.entries(), CacheConfig::paper_l2_slice().lines());
    }

    #[test]
    fn zeroed_entries_are_default() {
        let d = Directory::new(DirectoryConfig::new(2, 2));
        assert_eq!(d.resident_entries(), 0);
        for e in &d.entries {
            assert!(!e.valid);
            assert_eq!(e.state, MesiState::Shared);
            assert!(e.sharers.is_empty());
        }
    }
}
