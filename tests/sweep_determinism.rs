//! Property tests of the sweep harness's determinism contract and of the
//! paper's Figure 6 completion-time orderings on the Smoke scale.

use ironhide::prelude::*;
use proptest::prelude::*;

/// Cheap-but-representative parameters: a short warm-up and predictor sample
/// keep the grid fast without changing any determinism property.
fn fast_params() -> ArchParams {
    ArchParams { warmup_interactions: 2, predictor_sample: 2, ..ArchParams::default() }
}

fn runner(seed: u64, threads: usize) -> SweepRunner {
    SweepRunner::new(MachineConfig::paper_default())
        .with_params(fast_params())
        .with_seed(seed)
        .with_threads(threads)
}

fn small_grid() -> SweepGrid {
    sweep_grid(
        &[AppId::QueryAes, AppId::SsspGraph, AppId::MemcachedOs],
        &Architecture::ALL,
        &[ReallocPolicy::Static],
        &[ScaleFactor::Smoke],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The same master seed yields a byte-identical serialised matrix whether
    /// the sweep runs on 1, 2 or 8 worker threads.
    #[test]
    fn matrix_is_byte_identical_across_thread_counts(seed in 0u64..1_000_000) {
        let grid = small_grid();
        let baseline = runner(seed, 1).run(&grid).unwrap().to_json();
        for threads in [2usize, 8] {
            let json = runner(seed, threads).run(&grid).unwrap().to_json();
            prop_assert_eq!(
                &json,
                &baseline,
                "thread count {} changed the matrix under seed {}",
                threads,
                seed
            );
        }
    }

    /// Cell seeds are pure functions of (master seed, cell key): different
    /// master seeds re-seed every cell, and — because the paper's workloads
    /// are deterministic by design — the reports themselves do not move.
    #[test]
    fn reseeding_moves_seeds_but_not_paper_reports(a in 0u64..1_000_000, b in 1_000_000u64..2_000_000) {
        let grid = sweep_grid(
            &[AppId::QueryAes],
            &[Architecture::Ironhide],
            &[ReallocPolicy::Static],
            &[ScaleFactor::Smoke],
        );
        let ma = runner(a, 2).run(&grid).unwrap();
        let mb = runner(b, 2).run(&grid).unwrap();
        prop_assert_ne!(ma.cells[0].seed, mb.cells[0].seed);
        prop_assert_eq!(ma.cells[0].report.total_cycles, mb.cells[0].report.total_cycles);
        prop_assert_eq!(ma.cells[0].report.secure_cores, mb.cells[0].report.secure_cores);
    }
}

/// Figure 6's qualitative result on the Smoke scale, over all nine
/// applications: the insecure baseline is never slower than IRONHIDE, and
/// IRONHIDE is never slower than MI6.
#[test]
fn fig6_orderings_hold_on_smoke_scale() {
    let grid = sweep_grid(
        &AppId::ALL,
        &Architecture::ALL,
        &[ReallocPolicy::Static],
        &[ScaleFactor::Smoke],
    );
    let matrix = runner(0, 0).run(&grid).expect("full smoke sweep runs");
    assert_eq!(matrix.cells.len(), AppId::ALL.len() * Architecture::ALL.len());

    let violations = matrix.fig6_ordering_violations(ReallocPolicy::Static);
    assert!(violations.is_empty(), "Figure 6 orderings violated:\n{}", violations.join("\n"));

    // The aggregate view the paper leads with: geometric-mean completion
    // times order the same way.
    let rows = matrix.fig6(ReallocPolicy::Static);
    assert_eq!(rows.len(), AppId::ALL.len());
    let geo = |f: fn(&Fig6Row) -> f64| {
        ironhide::ironhide_core::sweep::geometric_mean(&rows.iter().map(f).collect::<Vec<_>>())
    };
    let insecure = geo(|r| r.insecure_ms);
    let ironhide = geo(|r| r.ironhide_ms);
    let mi6 = geo(|r| r.mi6_ms);
    let sgx = geo(|r| r.sgx_ms);
    assert!(insecure <= ironhide, "geomean: insecure {insecure} > ironhide {ironhide}");
    assert!(ironhide <= mi6, "geomean: ironhide {ironhide} > mi6 {mi6}");
    assert!(insecure <= sgx, "geomean: insecure {insecure} > sgx {sgx}");

    // Every run upheld strong isolation where the architecture promises it.
    for cell in &matrix.cells {
        assert!(
            cell.report.isolation.is_clean(),
            "{}: {:?}",
            cell.key,
            cell.report.isolation.violations
        );
    }
}

/// Figure 7's qualitative result: MI6's per-interaction purges inflate the
/// private L1 miss rate relative to IRONHIDE on the purge-sensitive
/// workloads; the deltas the matrix reports agree with the raw reports.
#[test]
fn fig7_miss_rate_deltas_are_queryable() {
    let grid = sweep_grid(
        &[AppId::QueryAes, AppId::MemcachedOs],
        &[Architecture::Mi6, Architecture::Ironhide],
        &[ReallocPolicy::Static],
        &[ScaleFactor::Smoke],
    );
    let matrix = runner(0, 0).run(&grid).unwrap();
    let rows = matrix.fig7(ReallocPolicy::Static);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(
            row.l1_delta() >= 0.0,
            "{}: MI6 purging should not *reduce* the L1 miss rate (MI6 {} vs IRONHIDE {})",
            row.app,
            row.mi6_l1,
            row.ironhide_l1
        );
        let mi6 = matrix.get(&row.app, Architecture::Mi6, ReallocPolicy::Static, "Smoke").unwrap();
        assert!((row.mi6_l1 - mi6.report.l1_miss_rate).abs() < 1e-15);
    }
}

/// Figure 8's comparison is queryable: heuristic re-allocation is available
/// per app, and the heuristic-vs-static geometric means come from the same
/// cells fig8() exposes.
#[test]
fn fig8_heuristic_vs_static_is_queryable() {
    let grid = sweep_grid(
        &[AppId::QueryAes],
        &[Architecture::Ironhide],
        &[ReallocPolicy::Static, ReallocPolicy::Heuristic],
        &[ScaleFactor::Smoke],
    );
    let matrix = runner(0, 0).run(&grid).unwrap();
    let fig8 = matrix.fig8();
    assert_eq!(fig8.len(), 2, "one row per policy");
    assert!(fig8.iter().all(|r| r.total_ms > 0.0 && r.secure_cores >= 1));
    let (heuristic, static_) = matrix
        .policy_geomeans(ReallocPolicy::Heuristic, ReallocPolicy::Static)
        .expect("both policies present");
    assert!(heuristic > 0.0 && static_ > 0.0);
}
