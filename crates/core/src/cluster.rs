//! Cluster formation and dynamic hardware isolation.
//!
//! [`ClusterManager`] owns the mapping of tiles (and with them their private
//! L1/TLB, their shared L2 slice) and memory controllers to the secure and
//! insecure clusters. Forming or re-forming the clusters follows the paper's
//! protocol: the system is stalled, the private resources of re-allocated
//! cores are flushed-and-invalidated, the shared-L2 pages of both processes
//! are re-homed onto their clusters' slices, and the memory controllers are
//! re-dedicated so that each cluster reaches its DRAM regions without leaving
//! its side of the mesh.

use std::fmt;

use ironhide_cache::SliceId;
use ironhide_mem::ControllerMask;
use ironhide_mesh::{ClusterId, ClusterMap, MeshTopology, NodeId, NodeSet};
use ironhide_sim::machine::Machine;
use ironhide_sim::process::ProcessId;

/// Errors produced while forming or reconfiguring clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The requested secure-cluster size leaves one cluster empty.
    EmptyCluster {
        /// Requested number of secure cores.
        requested: usize,
        /// Total cores in the machine.
        total: usize,
    },
    /// The requested shape cannot contain its own traffic under bidirectional
    /// deterministic routing.
    Containment(String),
    /// The machine does not have enough memory controllers to dedicate at
    /// least one to each cluster.
    TooFewControllers {
        /// Number of controllers available.
        available: usize,
    },
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::EmptyCluster { requested, total } => write!(
                f,
                "secure cluster of {requested} cores would leave an empty cluster on a {total}-core machine"
            ),
            ClusterError::Containment(v) => write!(f, "cluster shape violates containment: {v}"),
            ClusterError::TooFewControllers { available } => {
                write!(f, "need at least two memory controllers, found {available}")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A typed reconfiguration failure under degraded capacity: either the
/// underlying cluster-shape error, or the quarantine set leaves too little
/// healthy hardware for the requested shape. Returned as a value so storm
/// harnesses can retry with backoff instead of aborting mid-campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// The underlying cluster-shape error (empty cluster, containment,
    /// controller count).
    Cluster(ClusterError),
    /// The requested shape needs more healthy tiles than the quarantine set
    /// leaves available.
    DegradedCapacity {
        /// Secure cores requested.
        requested: usize,
        /// Healthy (non-quarantined) tiles available machine-wide.
        healthy: usize,
    },
    /// Quarantining the tile would leave its cluster with no healthy tile.
    ClusterExhausted {
        /// The cluster that would be left without healthy capacity.
        cluster: ClusterId,
    },
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::Cluster(e) => write!(f, "{e}"),
            ReconfigError::DegradedCapacity { requested, healthy } => write!(
                f,
                "requested {requested} secure cores but only {healthy} healthy tiles remain outside quarantine"
            ),
            ReconfigError::ClusterExhausted { cluster } => {
                write!(f, "quarantine would leave the {cluster:?} cluster with no healthy tile")
            }
        }
    }
}

impl std::error::Error for ReconfigError {}

impl From<ClusterError> for ReconfigError {
    fn from(e: ClusterError) -> Self {
        ReconfigError::Cluster(e)
    }
}

/// Adds two stall-cycle quantities, panicking with a clear message on u64
/// overflow instead of silently wrapping a checksum-bearing total.
fn add_stall(total: u64, add: u64) -> u64 {
    total
        .checked_add(add)
        .unwrap_or_else(|| panic!("reconfiguration stall cycles overflowed u64 ({total} + {add})"))
}

/// The ordering of the purge and re-home steps of a reconfiguration.
///
/// The paper's protocol purges the moved tiles' private state and the moved
/// L2 slices (and drains controllers that change sides) **before** the pages
/// are re-homed and scrubbed — so by the time any other party can issue a
/// memory access, no moved resource holds a stale copy. The violated order
/// exists purely as an injectable fault for the reconfiguration-window
/// attack: it re-homes the pages first and leaves their stale cached copies
/// in place through the window, deferring scrub and purges until after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PurgeOrder {
    /// The shipped protocol: purge moved private state and slices, drain
    /// changed controllers, then re-home and scrub. Nothing stale survives
    /// into the window.
    PurgeThenRehome,
    /// The injected mis-ordering: re-home first with scrubbing deferred, run
    /// the window over the stale residue, then scrub and purge. An attacker
    /// active during the window can observe the victim's footprint.
    RehomeThenPurge,
}

/// A cluster resource binding: how many cores (and their slices) each cluster
/// owns and which memory controllers serve it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Cores (tiles) of the secure cluster.
    pub secure_cores: usize,
    /// Cores (tiles) of the insecure cluster.
    pub insecure_cores: usize,
    /// Memory controllers dedicated to the secure cluster.
    pub secure_controllers: ControllerMask,
    /// Memory controllers dedicated to the insecure cluster.
    pub insecure_controllers: ControllerMask,
}

/// Reusable reconfiguration scratch: the moved tile/slice lists and the
/// per-process slice lists are rebuilt on every [`ClusterManager::reconfigure`],
/// so a reconfiguration storm reuses four vectors instead of allocating per
/// call.
#[derive(Debug, Clone, Default)]
struct ReconfigScratch {
    moved_nodes: Vec<NodeId>,
    moved_slices: Vec<SliceId>,
    secure_slices: Vec<SliceId>,
    insecure_slices: Vec<SliceId>,
}

/// Manages the strongly isolated secure and insecure clusters of a machine.
#[derive(Debug, Clone)]
pub struct ClusterManager {
    map: ClusterMap,
    config: ClusterConfig,
    reconfigurations: u64,
    scratch: ReconfigScratch,
    /// Tiles quarantined after a failure: their slices are filtered out of
    /// every allowed set [`ClusterManager::apply`] installs, so no process
    /// homes pages on failed hardware. Empty on a healthy machine, where the
    /// filter is the identity and the no-op reconfigure rule is preserved.
    quarantined: NodeSet,
}

impl ClusterManager {
    /// Forms the initial clusters with `secure_cores` tiles in the secure
    /// cluster and applies the binding to the machine (slices, controllers,
    /// cluster map). Returns the manager and the setup cost in cycles.
    ///
    /// # Errors
    ///
    /// Fails if either cluster would be empty, if the machine has fewer than
    /// two memory controllers, or if the shape cannot contain its traffic.
    pub fn form(
        machine: &mut Machine,
        secure_pid: ProcessId,
        insecure_pid: ProcessId,
        secure_cores: usize,
    ) -> Result<(Self, u64), ClusterError> {
        let total = machine.config().cores();
        let controllers = machine.config().controllers;
        if controllers < 2 {
            return Err(ClusterError::TooFewControllers { available: controllers });
        }
        let map = Self::build_map(machine.topology(), secure_cores, total)?;
        let config = Self::controller_split(controllers, secure_cores, total);
        let mut manager = ClusterManager {
            map,
            config,
            reconfigurations: 0,
            scratch: ReconfigScratch::default(),
            quarantined: NodeSet::default(),
        };
        let cycles = manager.apply(machine, secure_pid, insecure_pid);
        Ok((manager, cycles))
    }

    fn build_map(
        topology: &MeshTopology,
        secure_cores: usize,
        total: usize,
    ) -> Result<ClusterMap, ClusterError> {
        if secure_cores == 0 || secure_cores >= total {
            return Err(ClusterError::EmptyCluster { requested: secure_cores, total });
        }
        let map = ClusterMap::row_major_split(*topology, secure_cores);
        map.verify_containment().map_err(|v| ClusterError::Containment(v.to_string()))?;
        Ok(map)
    }

    fn controller_split(controllers: usize, secure_cores: usize, total: usize) -> ClusterConfig {
        // Dedicate controllers proportionally to the cluster sizes, but never
        // fewer than one per cluster. The secure cluster occupies the low
        // (north) rows, so it takes the low-index controllers, mirroring the
        // prototype's `pos = 0b0011` / `pos = 0b1100` masks. Round half up in
        // exact integer arithmetic — this feeds checksum-bearing storm runs,
        // so the share must not depend on f64 rounding.
        let share = (2 * controllers * secure_cores + total) / (2 * total);
        let secure_count = share.clamp(1, controllers - 1);
        ClusterConfig {
            secure_cores,
            insecure_cores: total - secure_cores,
            secure_controllers: ControllerMask::first(secure_count),
            insecure_controllers: ControllerMask::range(secure_count, controllers - secure_count),
        }
    }

    fn apply(
        &mut self,
        machine: &mut Machine,
        secure_pid: ProcessId,
        insecure_pid: ProcessId,
    ) -> u64 {
        self.scratch.secure_slices.clear();
        self.scratch.secure_slices.extend(
            self.map
                .nodes_iter(ClusterId::Secure)
                .filter(|n| !self.quarantined.contains(*n))
                .map(|n| SliceId(n.0)),
        );
        self.scratch.insecure_slices.clear();
        self.scratch.insecure_slices.extend(
            self.map
                .nodes_iter(ClusterId::Insecure)
                .filter(|n| !self.quarantined.contains(*n))
                .map(|n| SliceId(n.0)),
        );
        let (_, secure_cycles) =
            machine.set_process_slices(secure_pid, &self.scratch.secure_slices);
        let (_, insecure_cycles) =
            machine.set_process_slices(insecure_pid, &self.scratch.insecure_slices);
        machine.set_process_controllers(secure_pid, self.config.secure_controllers);
        machine.set_process_controllers(insecure_pid, self.config.insecure_controllers);
        machine.set_cluster_map(Some(self.map.clone()));
        add_stall(secure_cycles, insecure_cycles)
    }

    /// The current cluster map.
    pub fn map(&self) -> &ClusterMap {
        &self.map
    }

    /// The current resource binding.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of reconfigurations performed so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Cores of the given cluster.
    pub fn cores_of(&self, cluster: ClusterId) -> Vec<NodeId> {
        self.map.nodes_of(cluster)
    }

    /// Borrowing variant of [`ClusterManager::cores_of`]: iterates the
    /// cluster's cores in the same ascending order without materialising a
    /// `Vec`, for per-interaction queries that must not allocate (see
    /// `tests/zero_alloc.rs`).
    pub fn cores_iter(&self, cluster: ClusterId) -> impl Iterator<Item = NodeId> + '_ {
        self.map.nodes_iter(cluster)
    }

    // ----- graceful degradation --------------------------------------------

    /// Tiles currently quarantined after failures.
    pub fn quarantined(&self) -> &NodeSet {
        &self.quarantined
    }

    /// Healthy (non-quarantined) tiles of `cluster` under the current map.
    pub fn healthy_cores_of(&self, cluster: ClusterId) -> usize {
        self.map.nodes_iter(cluster).filter(|n| !self.quarantined.contains(*n)).count()
    }

    /// Quarantines a failed tile and re-pins both processes around it: the
    /// tile's private state is purged, its L2 slice and directory are flushed
    /// via the existing scrub/purge primitives, and the allowed-slice sets are
    /// re-applied without the failed slice — which re-homes (and scrubs) every
    /// page it homed and bumps `route_epoch`, so no route or pin references
    /// the dead tile afterwards. Returns the stall cycles charged; a tile
    /// already in quarantine costs nothing.
    ///
    /// # Errors
    ///
    /// [`ReconfigError::ClusterExhausted`] if the tile is the last healthy
    /// member of its cluster — the quarantine is not recorded in that case,
    /// because evicting the cluster's only slice would strand its pages.
    pub fn quarantine(
        &mut self,
        machine: &mut Machine,
        secure_pid: ProcessId,
        insecure_pid: ProcessId,
        node: NodeId,
    ) -> Result<u64, ReconfigError> {
        if self.quarantined.contains(node) {
            return Ok(0);
        }
        let cluster = self.map.cluster_of(node);
        if self.healthy_cores_of(cluster) <= 1 {
            return Err(ReconfigError::ClusterExhausted { cluster });
        }
        self.quarantined.insert(node);
        // Failure protocol, in the shipped purge-then-rehome order: dead
        // private state first, then the dead slice, then the re-pin whose
        // scrub erases every re-homed page's residue.
        let mut cycles = machine.purge_private(&[node]);
        cycles = add_stall(cycles, machine.purge_slices(&[SliceId(node.0)]));
        cycles = add_stall(cycles, self.apply(machine, secure_pid, insecure_pid));
        Ok(cycles)
    }

    /// Like [`ClusterManager::reconfigure`], but checking the request against
    /// the quarantine set first: shapes that need more healthy tiles than
    /// remain are rejected with [`ReconfigError::DegradedCapacity`] so the
    /// caller can back off and retry, rather than forming a cluster whose
    /// nominal capacity includes dead hardware.
    ///
    /// # Errors
    ///
    /// [`ReconfigError::DegradedCapacity`] when quarantine leaves fewer
    /// healthy tiles than the shape needs (both clusters must keep at least
    /// one); [`ReconfigError::Cluster`] for the underlying shape errors.
    pub fn reconfigure_degraded(
        &mut self,
        machine: &mut Machine,
        secure_pid: ProcessId,
        insecure_pid: ProcessId,
        new_secure_cores: usize,
    ) -> Result<u64, ReconfigError> {
        let total = machine.config().cores();
        let healthy = total - self.quarantined.len();
        if new_secure_cores >= healthy {
            return Err(ReconfigError::DegradedCapacity { requested: new_secure_cores, healthy });
        }
        // The row-major split assigns the first `new_secure_cores` tiles to
        // the secure cluster; either region consisting entirely of
        // quarantined tiles would strand that cluster's pages.
        let q_secure = self.quarantined.iter().filter(|n| n.0 < new_secure_cores).count();
        if q_secure >= new_secure_cores {
            return Err(ReconfigError::ClusterExhausted { cluster: ClusterId::Secure });
        }
        if self.quarantined.len() - q_secure >= total - new_secure_cores {
            return Err(ReconfigError::ClusterExhausted { cluster: ClusterId::Insecure });
        }
        let cycles = self.reconfigure(machine, secure_pid, insecure_pid, new_secure_cores)?;
        Ok(cycles)
    }

    /// Re-balances the clusters to `new_secure_cores` secure tiles: stalls the
    /// system, purges the private state of every re-allocated tile and the L2
    /// slices that change owner, re-homes both processes' pages and re-applies
    /// the binding. Returns the total stall cycles.
    ///
    /// The paper's security argument allows exactly one such reconfiguration
    /// per interactive-application invocation; enforcing that budget is the
    /// runner's responsibility.
    ///
    /// # Errors
    ///
    /// Fails for shapes that would leave a cluster empty or violate
    /// containment.
    pub fn reconfigure(
        &mut self,
        machine: &mut Machine,
        secure_pid: ProcessId,
        insecure_pid: ProcessId,
        new_secure_cores: usize,
    ) -> Result<u64, ClusterError> {
        self.reconfigure_windowed(
            machine,
            secure_pid,
            insecure_pid,
            new_secure_cores,
            PurgeOrder::PurgeThenRehome,
            |_| {},
        )
    }

    /// Like [`ClusterManager::reconfigure`], but with an explicit
    /// [`PurgeOrder`] and a `window` callback that runs at the point of the
    /// stall sequence where other parties could first issue traffic. Under
    /// the shipped [`PurgeOrder::PurgeThenRehome`] every moved resource has
    /// been purged and every re-homed page scrubbed before the window opens,
    /// so the callback sees a clean machine and `reconfigure` is exactly
    /// this call with a no-op window. Under the injected
    /// [`PurgeOrder::RehomeThenPurge`] the window opens between the re-home
    /// and the (deferred) scrub-and-purge — the reconfiguration-window
    /// attack probes exactly this interval.
    ///
    /// # Errors
    ///
    /// Fails for shapes that would leave a cluster empty or violate
    /// containment.
    pub fn reconfigure_windowed(
        &mut self,
        machine: &mut Machine,
        secure_pid: ProcessId,
        insecure_pid: ProcessId,
        new_secure_cores: usize,
        order: PurgeOrder,
        mut window: impl FnMut(&mut Machine),
    ) -> Result<u64, ClusterError> {
        let total = machine.config().cores();
        let new_map = Self::build_map(machine.topology(), new_secure_cores, total)?;
        // Tiles whose cluster changes must have their private state purged and
        // their L2 slice flushed before the other cluster may use them. The
        // moved set is collected as a bitset first, then spilled into the
        // reusable scratch vectors the purge calls take, so a storm of
        // reconfigurations allocates nothing here.
        let mut moved = NodeSet::default();
        for n in machine.topology().iter_nodes() {
            if self.map.cluster_of(n) != new_map.cluster_of(n) {
                moved.insert(n);
            }
        }
        self.scratch.moved_nodes.clear();
        self.scratch.moved_nodes.extend(moved.iter());
        self.scratch.moved_slices.clear();
        self.scratch.moved_slices.extend(moved.iter().map(|n| SliceId(n.0)));
        let old_secure_mask = self.config.secure_controllers;
        self.map = new_map;
        self.config = Self::controller_split(machine.config().controllers, new_secure_cores, total);
        let changed_controllers = if old_secure_mask != self.config.secure_controllers {
            Some(ControllerMask(old_secure_mask.0 ^ self.config.secure_controllers.0))
        } else {
            None
        };
        let cycles = match order {
            PurgeOrder::PurgeThenRehome => {
                let mut cycles = machine.purge_private(&self.scratch.moved_nodes);
                cycles = add_stall(cycles, machine.purge_slices(&self.scratch.moved_slices));
                // Drain the controllers that change sides as well.
                if let Some(changed) = changed_controllers {
                    cycles = add_stall(cycles, machine.purge_controllers(changed));
                }
                cycles = add_stall(cycles, self.apply(machine, secure_pid, insecure_pid));
                window(machine);
                cycles
            }
            PurgeOrder::RehomeThenPurge => {
                // The fault: re-home with scrubbing deferred, expose the
                // stale residue to the window, only then scrub and purge.
                machine.set_scrub_deferred(true);
                let mut cycles = self.apply(machine, secure_pid, insecure_pid);
                machine.set_scrub_deferred(false);
                window(machine);
                machine.flush_deferred_scrub();
                cycles = add_stall(cycles, machine.purge_private(&self.scratch.moved_nodes));
                cycles = add_stall(cycles, machine.purge_slices(&self.scratch.moved_slices));
                if let Some(changed) = changed_controllers {
                    cycles = add_stall(cycles, machine.purge_controllers(changed));
                }
                cycles
            }
        };
        self.reconfigurations += 1;
        Ok(cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironhide_sim::config::MachineConfig;
    use ironhide_sim::process::SecurityClass;

    fn machine() -> (Machine, ProcessId, ProcessId) {
        let mut m = Machine::new(MachineConfig::paper_default());
        let sec = m.create_process("enclave", SecurityClass::Secure);
        let ins = m.create_process("driver", SecurityClass::Insecure);
        (m, sec, ins)
    }

    #[test]
    fn form_initial_clusters() {
        let (mut m, sec, ins) = machine();
        let (mgr, _cycles) = ClusterManager::form(&mut m, sec, ins, 32).unwrap();
        assert_eq!(mgr.config().secure_cores, 32);
        assert_eq!(mgr.config().insecure_cores, 32);
        assert_eq!(mgr.config().secure_controllers.count(), 2);
        assert!(!mgr.config().secure_controllers.overlaps(mgr.config().insecure_controllers));
        assert_eq!(m.process_slices(sec).len(), 32);
        assert_eq!(m.process_slices(ins).len(), 32);
        assert!(m.cluster_map().is_some());
    }

    #[test]
    fn asymmetric_clusters_keep_one_controller_each() {
        let (mut m, sec, ins) = machine();
        let (mgr, _) = ClusterManager::form(&mut m, sec, ins, 2).unwrap();
        assert_eq!(mgr.config().secure_cores, 2);
        assert_eq!(mgr.config().insecure_cores, 62);
        assert!(mgr.config().secure_controllers.count() >= 1);
        assert!(mgr.config().insecure_controllers.count() >= 1);
        assert!(!mgr.config().secure_controllers.overlaps(mgr.config().insecure_controllers));
    }

    #[test]
    fn controller_split_is_pinned_for_every_storm_shape() {
        // The churn storm sweeps these secure-cluster shapes on the 64-core,
        // 4-controller paper machine. The share is round-half-up, clamped so
        // each cluster keeps at least one controller; these values are part of
        // the pinned storm checksum and must never move.
        for (shape, secure_mcs) in [(8, 1), (16, 1), (24, 2), (32, 2), (40, 3), (56, 3)] {
            let cfg = ClusterManager::controller_split(4, shape, 64);
            assert_eq!(
                cfg.secure_controllers.count(),
                secure_mcs,
                "secure controller share changed for shape {shape}"
            );
            assert_eq!(cfg.secure_controllers.count() + cfg.insecure_controllers.count(), 4);
            assert!(!cfg.secure_controllers.overlaps(cfg.insecure_controllers));
        }
        // Half-way cases round up before the clamp: 2·24/64 rounds to 2,
        // 4·56/64 rounds to 4 and clamps to 3.
        assert_eq!(ClusterManager::controller_split(2, 24, 64).secure_controllers.count(), 1);
        assert_eq!(ClusterManager::controller_split(8, 4, 64).secure_controllers.count(), 1);
    }

    #[test]
    fn empty_cluster_rejected() {
        let (mut m, sec, ins) = machine();
        assert!(matches!(
            ClusterManager::form(&mut m, sec, ins, 0),
            Err(ClusterError::EmptyCluster { .. })
        ));
        assert!(matches!(
            ClusterManager::form(&mut m, sec, ins, 64),
            Err(ClusterError::EmptyCluster { .. })
        ));
    }

    #[test]
    fn reconfigure_purges_moved_tiles_and_rehomes() {
        let (mut m, sec, ins) = machine();
        let (mut mgr, _) = ClusterManager::form(&mut m, sec, ins, 32).unwrap();
        // Touch some secure data so there are pages to re-home.
        for p in 0..32u64 {
            m.access(NodeId(0), sec, p * 4096, true);
        }
        let before = m.stats().core_purges;
        let cycles = mgr.reconfigure(&mut m, sec, ins, 16).unwrap();
        assert!(cycles > 0);
        assert_eq!(mgr.reconfigurations(), 1);
        assert_eq!(mgr.config().secure_cores, 16);
        // The 16 tiles that moved from secure to insecure were purged.
        assert_eq!(m.stats().core_purges - before, 16);
        assert_eq!(m.process_slices(sec).len(), 16);
        assert_eq!(m.process_slices(ins).len(), 48);
    }

    #[test]
    fn reconfigure_to_invalid_shape_fails_and_keeps_state() {
        let (mut m, sec, ins) = machine();
        let (mut mgr, _) = ClusterManager::form(&mut m, sec, ins, 32).unwrap();
        assert!(mgr.reconfigure(&mut m, sec, ins, 0).is_err());
        assert_eq!(mgr.config().secure_cores, 32);
        assert_eq!(mgr.reconfigurations(), 0);
    }

    #[test]
    fn quarantine_evicts_the_failed_slice_and_repins_around_it() {
        let (mut m, sec, ins) = machine();
        let (mut mgr, _) = ClusterManager::form(&mut m, sec, ins, 32).unwrap();
        for p in 0..64u64 {
            m.access(NodeId(0), sec, p * 4096, true);
        }
        let epoch_before = m.route_epoch();
        let cycles = mgr.quarantine(&mut m, sec, ins, NodeId(3)).unwrap();
        assert!(cycles > 0);
        assert!(mgr.quarantined().contains(NodeId(3)));
        assert_eq!(mgr.healthy_cores_of(ClusterId::Secure), 31);
        assert!(!m.process_slices(sec).contains(&SliceId(3)));
        assert_eq!(m.process_slices(sec).len(), 31);
        assert!(m.route_epoch() > epoch_before, "re-pin must recompute routes");
        // Idempotent: re-quarantining the same tile is free.
        assert_eq!(mgr.quarantine(&mut m, sec, ins, NodeId(3)).unwrap(), 0);
    }

    #[test]
    fn stall_accumulation_sums_up_to_the_boundary() {
        assert_eq!(add_stall(u64::MAX - 3, 3), u64::MAX);
        assert_eq!(add_stall(0, 0), 0);
    }

    #[test]
    #[should_panic(expected = "reconfiguration stall cycles overflowed u64")]
    fn stall_accumulation_overflow_is_loud_not_wrapped() {
        add_stall(u64::MAX, 1);
    }

    #[test]
    fn quarantine_refuses_to_exhaust_a_cluster() {
        let (mut m, sec, ins) = machine();
        let (mut mgr, _) = ClusterManager::form(&mut m, sec, ins, 2).unwrap();
        mgr.quarantine(&mut m, sec, ins, NodeId(0)).unwrap();
        assert_eq!(
            mgr.quarantine(&mut m, sec, ins, NodeId(1)),
            Err(ReconfigError::ClusterExhausted { cluster: ClusterId::Secure })
        );
        assert_eq!(mgr.quarantined().len(), 1, "the refused quarantine must not be recorded");
    }

    #[test]
    fn degraded_reconfigure_rejects_shapes_beyond_healthy_capacity() {
        let (mut m, sec, ins) = machine();
        let (mut mgr, _) = ClusterManager::form(&mut m, sec, ins, 32).unwrap();
        mgr.quarantine(&mut m, sec, ins, NodeId(5)).unwrap();
        mgr.quarantine(&mut m, sec, ins, NodeId(40)).unwrap();
        let err = mgr.reconfigure_degraded(&mut m, sec, ins, 62).unwrap_err();
        assert_eq!(err, ReconfigError::DegradedCapacity { requested: 62, healthy: 62 });
        assert!(format!("{err}").contains("healthy tiles"));
        // A shape the healthy capacity can carry still reconfigures, and the
        // new binding keeps excluding the quarantined slices.
        let cycles = mgr.reconfigure_degraded(&mut m, sec, ins, 16).unwrap();
        assert!(cycles > 0);
        assert!(!m.process_slices(sec).contains(&SliceId(5)));
        assert!(!m.process_slices(ins).contains(&SliceId(40)));
        assert_eq!(m.process_slices(sec).len(), 15);
        assert_eq!(m.process_slices(ins).len(), 47);
    }

    #[test]
    fn cores_of_clusters_partition_the_machine() {
        let (mut m, sec, ins) = machine();
        let (mgr, _) = ClusterManager::form(&mut m, sec, ins, 20).unwrap();
        let s = mgr.cores_of(ClusterId::Secure);
        let i = mgr.cores_of(ClusterId::Insecure);
        assert_eq!(s.len(), 20);
        assert_eq!(i.len(), 44);
        assert!(s.iter().all(|n| !i.contains(n)));
    }
}
