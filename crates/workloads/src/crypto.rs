//! Query-encryption workload: an AES-256 implementation (the secure process)
//! and a YCSB-style query generator (the insecure process).
//!
//! The paper's `<AES, QUERY>` application periodically generates database
//! queries (e.g. from an ATM front-end) and hands them to a secure enclave
//! that encrypts them with a 256-bit key. The AES here is a complete,
//! table-free byte-oriented AES-256 (key expansion + 14-round encryption)
//! validated against the FIPS-197 test vector.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// AES-256
// ---------------------------------------------------------------------------

/// AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 15] =
    [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a];

fn xtime(b: u8) -> u8 {
    let hi = b & 0x80;
    let mut r = b << 1;
    if hi != 0 {
        r ^= 0x1b;
    }
    r
}

/// An expanded AES-256 key schedule (15 round keys of 16 bytes).
#[derive(Debug, Clone)]
pub struct Aes256 {
    round_keys: [[u8; 16]; 15],
}

impl Aes256 {
    /// Expands a 256-bit key.
    pub fn new(key: &[u8; 32]) -> Self {
        // 8 words of key, expanded to 60 words (15 round keys).
        let mut w = [[0u8; 4]; 60];
        for (i, chunk) in key.chunks(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 8..60 {
            let mut temp = w[i - 1];
            if i % 8 == 0 {
                temp.rotate_left(1);
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
                temp[0] ^= RCON[i / 8 - 1];
            } else if i % 8 == 4 {
                for b in &mut temp {
                    *b = SBOX[*b as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - 8][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 15];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes256 { round_keys }
    }

    /// The expanded round keys (exposed so the workload can declare them as a
    /// hot memory region).
    pub fn round_keys(&self) -> &[[u8; 16]; 15] {
        &self.round_keys
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk.iter()) {
            *s ^= *k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn shift_rows(state: &mut [u8; 16]) {
        // State is column-major: state[4*c + r].
        let mut out = [0u8; 16];
        for c in 0..4 {
            for r in 0..4 {
                out[4 * c + r] = state[4 * ((c + r) % 4) + r];
            }
        }
        *state = out;
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
            state[4 * c] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
            state[4 * c + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
            state[4 * c + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
            state[4 * c + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..14 {
            Self::sub_bytes(&mut state);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[14]);
        state
    }

    /// Encrypts a buffer in ECB fashion (zero-padded), returning the
    /// ciphertext. The workload uses whole-block payloads so padding never
    /// carries information.
    pub fn encrypt(&self, data: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(data.len().div_ceil(16) * 16);
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            out.extend_from_slice(&self.encrypt_block(&block));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// YCSB-style query generator
// ---------------------------------------------------------------------------

/// The kind of query the generator produces (a simplified YCSB mix).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// Point read of one record.
    Read,
    /// Update of one record.
    Update,
    /// Insert of a new record.
    Insert,
    /// Short range scan.
    Scan,
}

/// One generated query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Query class.
    pub kind: QueryKind,
    /// Primary key the query addresses.
    pub key: u64,
    /// Serialised payload to be encrypted by the secure process.
    pub payload: Vec<u8>,
}

/// A YCSB-style generator with a Zipfian-ish skewed key distribution.
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    rng: StdRng,
    records: u64,
    payload_bytes: usize,
}

impl QueryGenerator {
    /// Creates a generator over `records` records with `payload_bytes`-byte
    /// payloads.
    pub fn new(seed: u64, records: u64, payload_bytes: usize) -> Self {
        QueryGenerator { rng: StdRng::seed_from_u64(seed), records: records.max(1), payload_bytes }
    }

    /// Generates the next query.
    pub fn next_query(&mut self) -> Query {
        let kind = match self.rng.gen_range(0..100) {
            0..=49 => QueryKind::Read,
            50..=79 => QueryKind::Update,
            80..=89 => QueryKind::Insert,
            _ => QueryKind::Scan,
        };
        // Skewed key popularity: square a uniform draw so low keys dominate.
        let u: f64 = self.rng.gen();
        let key = ((u * u) * self.records as f64) as u64 % self.records;
        let payload: Vec<u8> = (0..self.payload_bytes).map(|_| self.rng.gen()).collect();
        Query { kind, key, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_197_aes256_vector() {
        // FIPS-197 Appendix C.3.
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
            0x60, 0x89,
        ];
        let aes = Aes256::new(&key);
        assert_eq!(aes.encrypt_block(&plaintext), expected);
    }

    #[test]
    fn encryption_is_deterministic_and_block_padded() {
        let aes = Aes256::new(&[7u8; 32]);
        let a = aes.encrypt(b"hello world");
        let b = aes.encrypt(b"hello world");
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        let c = aes.encrypt(&[0u8; 33]);
        assert_eq!(c.len(), 48);
    }

    #[test]
    fn different_keys_give_different_ciphertexts() {
        let a = Aes256::new(&[1u8; 32]).encrypt_block(&[0u8; 16]);
        let b = Aes256::new(&[2u8; 32]).encrypt_block(&[0u8; 16]);
        assert_ne!(a, b);
    }

    #[test]
    fn key_schedule_has_15_round_keys() {
        let aes = Aes256::new(&[0u8; 32]);
        assert_eq!(aes.round_keys().len(), 15);
    }

    #[test]
    fn query_generator_is_deterministic_per_seed() {
        let mut a = QueryGenerator::new(42, 1000, 64);
        let mut b = QueryGenerator::new(42, 1000, 64);
        for _ in 0..50 {
            let qa = a.next_query();
            let qb = b.next_query();
            assert_eq!(qa.kind, qb.kind);
            assert_eq!(qa.key, qb.key);
            assert_eq!(qa.payload, qb.payload);
        }
    }

    #[test]
    fn query_mix_contains_all_kinds_and_valid_keys() {
        let mut g = QueryGenerator::new(7, 500, 32);
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..500 {
            let q = g.next_query();
            assert!(q.key < 500);
            assert_eq!(q.payload.len(), 32);
            kinds.insert(format!("{:?}", q.kind));
        }
        assert_eq!(kinds.len(), 4);
    }
}
