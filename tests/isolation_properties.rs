//! Property-based tests of the strong-isolation invariants.

use proptest::prelude::*;

use ironhide::ironhide_core::speccheck::SpeculativeAccessCheck;
use ironhide::ironhide_mem::{RegionMap, RegionOwner};
use ironhide::ironhide_mesh::{ClusterId, ClusterMap, MeshTopology, NodeId};
use ironhide::ironhide_sim::machine::Machine;
use ironhide::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Row-major cluster splits of any size can always contain their own
    /// traffic under bidirectional deterministic routing.
    #[test]
    fn row_major_clusters_always_contain_their_traffic(secure_cores in 0usize..=64) {
        let map = ClusterMap::row_major_split(MeshTopology::new(8, 8), secure_cores);
        prop_assert!(map.verify_containment().is_ok());
        prop_assert_eq!(map.size_of(ClusterId::Secure), secure_cores);
        prop_assert_eq!(map.size_of(ClusterId::Insecure), 64 - secure_cores);
    }

    /// The speculative-access hardware check never lets an insecure access to
    /// a secure DRAM region proceed, and never blocks a secure access.
    #[test]
    fn spec_check_blocks_exactly_insecure_to_secure(addr in 0u64..0x8000, controllers in 1usize..=4) {
        let regions = RegionMap::paper_layout(controllers, 0x1000);
        let mut check = SpeculativeAccessCheck::new();
        let insecure = check.check(&regions, SecurityClass::Insecure, addr);
        let secure = check.check(&regions, SecurityClass::Secure, addr);
        prop_assert!(secure.allowed());
        match regions.owner_of(addr) {
            Ok(RegionOwner::Secure) => prop_assert!(!insecure.allowed()),
            _ => prop_assert!(insecure.allowed()),
        }
    }

    /// Every physical page the machine hands to a process lives in a DRAM
    /// region owned by that process's security class, whatever the virtual
    /// addresses look like.
    #[test]
    fn allocated_pages_stay_in_owned_regions(vaddrs in prop::collection::vec(0u64..0x4000_0000, 1..40)) {
        let mut machine = Machine::new(MachineConfig::small_test());
        let secure = machine.create_process("s", SecurityClass::Secure);
        let insecure = machine.create_process("i", SecurityClass::Insecure);
        for (i, v) in vaddrs.iter().enumerate() {
            let pid = if i % 2 == 0 { secure } else { insecure };
            machine.access(NodeId(i % 4), pid, *v, i % 3 == 0);
        }
        for (pid, owner) in [(secure, RegionOwner::Secure), (insecure, RegionOwner::Insecure)] {
            for page in machine.process_physical_pages(pid) {
                let paddr = page.0 * machine.page_bytes();
                prop_assert_eq!(machine.regions().owner_of(paddr).unwrap(), owner);
            }
        }
    }

    /// Purging leaves zero attacker-observable residue: whatever two victim
    /// workloads V1 and V2 did before the purge — different addresses,
    /// different cores, different write mixes — an attacker probing after a
    /// full purge (private state, shared slices, controllers, network)
    /// observes byte-identical per-access latencies on both machines. This
    /// is the property that makes purge-on-reassignment sound: no probe
    /// sequence can distinguish which victim ran.
    #[test]
    fn purge_erases_all_attacker_observable_victim_residue(
        v1 in prop::collection::vec(0u64..0x80_0000, 0..48),
        v2 in prop::collection::vec(0u64..0x80_0000, 0..48),
        probe in prop::collection::vec(0u64..0x80_0000, 1..48),
    ) {
        let observe = |victim_trace: &[u64]| -> Vec<u64> {
            let mut m = Machine::new(MachineConfig::small_test());
            let cores = m.config().cores();
            let victim = m.create_process("victim", SecurityClass::Secure);
            let attacker = m.create_process("attacker", SecurityClass::Insecure);
            for (i, v) in victim_trace.iter().enumerate() {
                // Vary core and write-ness with the trace so V1/V2 touch
                // TLBs, L1s, slices, link loads and controller rows
                // differently.
                m.access(NodeId(i % cores), victim, *v, v % 3 == 0);
            }
            // The full purge a tile re-assignment performs.
            let all: Vec<NodeId> = (0..cores).map(NodeId).collect();
            m.purge_private(&all);
            m.purge_slices(&(0..cores).map(ironhide::ironhide_cache::SliceId).collect::<Vec<_>>());
            m.purge_controllers(ironhide::ironhide_mem::ControllerMask::first(
                m.config().controllers,
            ));
            m.purge_network();
            // The attacker's probe, observed through the latency trace.
            m.enable_latency_trace(probe.len());
            for (i, p) in probe.iter().enumerate() {
                m.access(NodeId(i % cores), attacker, *p, p % 5 == 0);
            }
            m.latency_trace().expect("trace attached").iter().collect()
        };
        prop_assert_eq!(observe(&v1), observe(&v2));
    }

    /// A full-flush `TemporalFence` domain switch leaves zero
    /// attacker-observable residue, exactly like the purge invariant above:
    /// whatever two victim workloads V1 and V2 did before the switch, an
    /// attacker probing after `temporal_flush(FlushSet::FULL)` observes
    /// byte-identical per-access latencies on both machines. This is the
    /// property that makes the SIMF preset a defence at all — and the reason
    /// its charged cost must be state-independent (a cost that tracked the
    /// erased residue would leak through the one thing the flush cannot
    /// remove: its own duration).
    #[test]
    fn full_temporal_flush_erases_all_attacker_observable_victim_residue(
        v1 in prop::collection::vec(0u64..0x80_0000, 0..48),
        v2 in prop::collection::vec(0u64..0x80_0000, 0..48),
        probe in prop::collection::vec(0u64..0x80_0000, 1..48),
    ) {
        let observe = |victim_trace: &[u64]| -> Vec<u64> {
            let mut m = Machine::new(MachineConfig::small_test());
            let cores = m.config().cores();
            let victim = m.create_process("victim", SecurityClass::Secure);
            let attacker = m.create_process("attacker", SecurityClass::Insecure);
            for (i, v) in victim_trace.iter().enumerate() {
                m.access(NodeId(i % cores), victim, *v, v % 3 == 0);
            }
            // The one-instruction domain switch the fence architecture
            // performs with everything selected.
            m.temporal_flush(FlushSet::FULL);
            m.enable_latency_trace(probe.len());
            for (i, p) in probe.iter().enumerate() {
                m.access(NodeId(i % cores), attacker, *p, p % 5 == 0);
            }
            m.latency_trace().expect("trace attached").iter().collect()
        };
        prop_assert_eq!(observe(&v1), observe(&v2));
    }

    /// The purge invariant above must *survive failure*: a
    /// partial-completion fault that eats a fraction of the purge packets
    /// (whole slice purges and page scrubs alike) still leaves zero
    /// attacker-observable victim residue once the audited recovery replays
    /// the dropped packets. The faulted-then-recovered machine is
    /// byte-identical, through the attacker's latency probe, to a healthy
    /// machine that purged cleanly — for any victim trace, drop rate and
    /// fault seed — and the teardown audit confirms nothing stayed behind.
    #[test]
    fn audited_purge_recovery_erases_all_attacker_observable_victim_residue(
        victim_trace in prop::collection::vec(0u64..0x80_0000, 0..48),
        probe in prop::collection::vec(0u64..0x80_0000, 1..32),
        fault_seed in any::<u64>(),
        rate in 1u32..=1000,
    ) {
        let observe = |faulted: bool| -> Vec<u64> {
            let mut m = Machine::new(MachineConfig::small_test());
            let cores = m.config().cores();
            let victim = m.create_process("victim", SecurityClass::Secure);
            let attacker = m.create_process("attacker", SecurityClass::Insecure);
            for (i, v) in victim_trace.iter().enumerate() {
                m.access(NodeId(i % cores), victim, *v, v % 3 == 0);
            }
            if faulted {
                m.set_scrub_drop_fault(fault_seed, rate);
            }
            let all: Vec<NodeId> = (0..cores).map(NodeId).collect();
            m.purge_private(&all);
            m.purge_slices(&(0..cores).map(ironhide::ironhide_cache::SliceId).collect::<Vec<_>>());
            m.purge_controllers(ironhide::ironhide_mem::ControllerMask::first(
                m.config().controllers,
            ));
            m.purge_network();
            if faulted {
                // Detection, then recovery, then proof of completion: the
                // audit names every dropped packet, the replay discharges
                // them, and teardown asserts the logs drained.
                let detected = (m.dropped_purge_log().len() + m.dropped_scrub_log().len()) as u64;
                let recovered = m.recover_dropped_scrubs();
                assert_eq!(detected, recovered, "audit/recovery mismatch");
                assert_eq!(m.clear_scrub_drop_fault(), 0, "unrecovered packets after replay");
            }
            m.enable_latency_trace(probe.len());
            for (i, p) in probe.iter().enumerate() {
                m.access(NodeId(i % cores), attacker, *p, p % 5 == 0);
            }
            m.latency_trace().expect("trace attached").iter().collect()
        };
        prop_assert_eq!(observe(true), observe(false));
    }

    /// A report produced under IRONHIDE never contains non-IPC cross-cluster
    /// traffic, for any (valid) static secure-cluster size.
    #[test]
    fn ironhide_cross_cluster_traffic_is_only_ipc(secure_fraction in 0.15f64..0.85) {
        let params = ArchParams {
            warmup_interactions: 1,
            predictor_sample: 1,
            initial_secure_fraction: secure_fraction,
            ..ArchParams::default()
        };
        let runner = ExperimentRunner::new(MachineConfig::paper_default())
            .with_params(params)
            .with_realloc(ReallocPolicy::Static);
        let mut app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
        let report = runner.run(Architecture::Ironhide, app.as_mut()).unwrap();
        prop_assert!(report.isolation.is_clean(), "violations: {:?}", report.isolation.violations);
        prop_assert!(report.isolation.cross_cluster_packets <= report.isolation.ipc_packets);
    }
}
