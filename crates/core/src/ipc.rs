//! The shared inter-process-communication buffer.
//!
//! Interactions between secure and insecure processes are carried out through
//! a shared memory region — the *shared IPC buffer* — exactly as in MI6 and
//! HotCalls. Strong isolation is preserved because the buffer is allocated in
//! the **insecure** process's DRAM region(s): the secure process may read and
//! write insecure data without leaking any of its own, whereas the insecure
//! process never gains a mapping of secure memory.
//!
//! The buffer here is an address-space descriptor: it turns "send N bytes"
//! into the list of memory references the producer and consumer issue, which
//! the experiment runner feeds to the machine so IPC traffic shows up in the
//! caches, the NoC and (under IRONHIDE) the cross-cluster packet counters.

use crate::app::{MemRef, RefStream};

/// A ring-buffer shaped shared IPC region inside the insecure process's
/// address space.
#[derive(Debug, Clone)]
pub struct SharedIpcBuffer {
    base_vaddr: u64,
    size_bytes: u64,
    line_bytes: u64,
    cursor: u64,
    messages: u64,
    bytes_transferred: u64,
}

impl SharedIpcBuffer {
    /// Creates a buffer of `size_bytes` at `base_vaddr` in the insecure
    /// process's address space.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is zero or smaller than one cache line.
    pub fn new(base_vaddr: u64, size_bytes: u64, line_bytes: u64) -> Self {
        assert!(
            size_bytes >= line_bytes && line_bytes > 0,
            "IPC buffer must hold at least one line"
        );
        SharedIpcBuffer {
            base_vaddr,
            size_bytes,
            line_bytes,
            cursor: 0,
            messages: 0,
            bytes_transferred: 0,
        }
    }

    /// A 64 KB buffer at a fixed offset high in the insecure address space,
    /// the configuration used by the experiments.
    pub fn paper_default() -> Self {
        SharedIpcBuffer::new(0x4000_0000, 64 * 1024, 64)
    }

    /// Base virtual address (within the insecure process).
    pub fn base_vaddr(&self) -> u64 {
        self.base_vaddr
    }

    /// Buffer capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Messages sent so far.
    pub fn messages(&self) -> u64 {
        self.messages
    }

    /// Total payload bytes moved through the buffer.
    pub fn bytes_transferred(&self) -> u64 {
        self.bytes_transferred
    }

    /// Returns the store stream the producer issues to publish a message of
    /// `bytes` bytes, advancing the ring cursor.
    pub fn produce(&mut self, bytes: u64) -> RefStream {
        let refs = self.refs_for(bytes, true);
        self.cursor = (self.cursor + bytes.max(self.line_bytes)) % self.size_bytes;
        self.messages += 1;
        self.bytes_transferred += bytes;
        refs
    }

    /// Returns the load stream the consumer issues to read the most recently
    /// produced message of `bytes` bytes.
    pub fn consume(&self, bytes: u64) -> RefStream {
        // The consumer reads the region the producer just wrote: rewind the
        // cursor by the producer's advance.
        let advance = bytes.max(self.line_bytes);
        let start = (self.cursor + self.size_bytes - advance) % self.size_bytes;
        self.refs_from(start, bytes, false)
    }

    fn refs_for(&self, bytes: u64, write: bool) -> RefStream {
        self.refs_from(self.cursor, bytes, write)
    }

    /// Run-encodes the line touches of one transfer: one line-stride run,
    /// split where the ring wraps.
    fn refs_from(&self, start: u64, bytes: u64, write: bool) -> RefStream {
        let lines = bytes.div_ceil(self.line_bytes).max(1);
        RefStream::from_refs((0..lines).map(|i| {
            let offset = (start + i * self.line_bytes) % self.size_bytes;
            MemRef { vaddr: self.base_vaddr + offset, write }
        }))
    }
}

impl Default for SharedIpcBuffer {
    fn default() -> Self {
        SharedIpcBuffer::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produce_generates_one_store_per_line() {
        let mut buf = SharedIpcBuffer::new(0x1000, 4096, 64);
        let refs = buf.produce(200);
        assert_eq!(refs.len(), 4); // ceil(200/64)
        assert!(refs.iter().all(|r| r.write));
        assert_eq!(refs.iter().next().unwrap().vaddr, 0x1000);
        assert_eq!(refs.runs().len(), 1, "a line-contiguous transfer is one run");
        assert_eq!(buf.messages(), 1);
        assert_eq!(buf.bytes_transferred(), 200);
    }

    #[test]
    fn consume_reads_what_was_produced() {
        let mut buf = SharedIpcBuffer::new(0x1000, 4096, 64);
        let produced = buf.produce(128);
        let consumed = buf.consume(128);
        assert_eq!(produced.len(), consumed.len());
        for (p, c) in produced.iter().zip(consumed.iter()) {
            assert_eq!(p.vaddr, c.vaddr);
            assert!(p.write);
            assert!(!c.write);
        }
    }

    #[test]
    fn ring_wraps_around() {
        let mut buf = SharedIpcBuffer::new(0, 256, 64);
        for _ in 0..10 {
            let refs = buf.produce(128);
            for r in refs.iter() {
                assert!(r.vaddr < 256, "refs must stay inside the buffer");
            }
        }
        assert_eq!(buf.messages(), 10);
    }

    #[test]
    fn zero_byte_message_still_touches_a_line() {
        let mut buf = SharedIpcBuffer::new(0, 256, 64);
        assert_eq!(buf.produce(0).len(), 1);
        assert_eq!(buf.consume(0).len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn undersized_buffer_rejected() {
        SharedIpcBuffer::new(0, 32, 64);
    }

    #[test]
    fn addresses_live_in_insecure_space() {
        let buf = SharedIpcBuffer::paper_default();
        assert!(buf.base_vaddr() >= 0x4000_0000);
        assert_eq!(buf.size_bytes(), 64 * 1024);
    }
}
