//! Replacement policies for set-associative structures.

use crate::set_assoc::Way;

/// Replacement policy used when a set is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used way (the Tile-Gx caches are LRU-like).
    #[default]
    Lru,
    /// Evict the way that was filled first.
    Fifo,
    /// Evict a pseudo-random way (a simple xorshift over an internal counter,
    /// so the simulation stays deterministic).
    Random,
}

impl ReplacementPolicy {
    /// Picks the victim way directly from the set's way metadata (`last_use`
    /// access stamps for LRU, `filled_at` fill stamps for FIFO). `tick` is a
    /// deterministic seed for `Random`. Operating on the ways in place keeps
    /// victim selection allocation-free on the miss path.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is empty.
    pub fn victim(self, ways: &[Way], tick: u64) -> usize {
        assert!(!ways.is_empty(), "victim selection requires at least one way");
        match self {
            ReplacementPolicy::Lru => index_of_min_by(ways, |w| w.last_use),
            ReplacementPolicy::Fifo => index_of_min_by(ways, |w| w.filled_at),
            ReplacementPolicy::Random => {
                let mut x = tick.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                x ^= x >> 29;
                (x as usize) % ways.len()
            }
        }
    }
}

/// Index of the way minimising `key`, preferring the first on ties.
fn index_of_min_by(ways: &[Way], key: impl Fn(&Way) -> u64) -> usize {
    let mut best = 0;
    for (i, w) in ways.iter().enumerate() {
        if key(w) < key(&ways[best]) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a set of valid ways with the given recency/fill stamps.
    fn ways(last_use: &[u64], filled_at: &[u64]) -> Vec<Way> {
        last_use.iter().zip(filled_at).map(|(lu, fa)| Way::stamped(*lu, *fa)).collect()
    }

    #[test]
    fn lru_picks_least_recent() {
        let set = ways(&[10, 3, 7, 9], &[0, 1, 2, 3]);
        assert_eq!(ReplacementPolicy::Lru.victim(&set, 0), 1);
    }

    #[test]
    fn fifo_picks_oldest_fill() {
        let set = ways(&[10, 3, 7, 9], &[5, 6, 1, 3]);
        assert_eq!(ReplacementPolicy::Fifo.victim(&set, 0), 2);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let set = ways(&[0; 8], &[0; 8]);
        let a = ReplacementPolicy::Random.victim(&set, 42);
        let b = ReplacementPolicy::Random.victim(&set, 42);
        assert_eq!(a, b);
        assert!(a < 8);
        let c = ReplacementPolicy::Random.victim(&set, 43);
        assert!(c < 8);
    }

    #[test]
    fn min_index_prefers_first_on_tie() {
        let set = ways(&[2, 2, 2], &[0, 0, 0]);
        assert_eq!(ReplacementPolicy::Lru.victim(&set, 0), 0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn empty_set_rejected() {
        ReplacementPolicy::Lru.victim(&[], 0);
    }
}
