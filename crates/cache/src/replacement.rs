//! Replacement policies for set-associative structures.

/// Replacement policy used when a set is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used way (the Tile-Gx caches are LRU-like).
    #[default]
    Lru,
    /// Evict the way that was filled first.
    Fifo,
    /// Evict a pseudo-random way (a simple xorshift over an internal counter,
    /// so the simulation stays deterministic).
    Random,
}

impl ReplacementPolicy {
    /// Picks the victim way given the per-way metadata maintained by the
    /// cache: `last_use` (monotonic access stamps) and `filled_at`
    /// (monotonic fill stamps). `tick` is a deterministic seed for `Random`.
    pub fn victim(self, last_use: &[u64], filled_at: &[u64], tick: u64) -> usize {
        match self {
            ReplacementPolicy::Lru => index_of_min(last_use),
            ReplacementPolicy::Fifo => index_of_min(filled_at),
            ReplacementPolicy::Random => {
                let mut x = tick.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                x ^= x >> 29;
                (x as usize) % last_use.len()
            }
        }
    }
}

fn index_of_min(values: &[u64]) -> usize {
    let mut best = 0;
    for (i, v) in values.iter().enumerate() {
        if *v < values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_picks_least_recent() {
        let last_use = [10, 3, 7, 9];
        let filled_at = [0, 1, 2, 3];
        assert_eq!(ReplacementPolicy::Lru.victim(&last_use, &filled_at, 0), 1);
    }

    #[test]
    fn fifo_picks_oldest_fill() {
        let last_use = [10, 3, 7, 9];
        let filled_at = [5, 6, 1, 3];
        assert_eq!(ReplacementPolicy::Fifo.victim(&last_use, &filled_at, 0), 2);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let last_use = [0u64; 8];
        let filled_at = [0u64; 8];
        let a = ReplacementPolicy::Random.victim(&last_use, &filled_at, 42);
        let b = ReplacementPolicy::Random.victim(&last_use, &filled_at, 42);
        assert_eq!(a, b);
        assert!(a < 8);
        let c = ReplacementPolicy::Random.victim(&last_use, &filled_at, 43);
        assert!(c < 8);
    }

    #[test]
    fn min_index_prefers_first_on_tie() {
        assert_eq!(index_of_min(&[2, 2, 2]), 0);
    }
}
