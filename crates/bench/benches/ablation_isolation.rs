//! Ablation study of IRONHIDE's design choices (Section III-B):
//!
//! 1. **Dynamic vs. static hardware isolation** — run IRONHIDE with the
//!    re-allocation predictor disabled (a fixed 32/32 split) and compare
//!    against the full design. The paper motivates dynamic isolation with the
//!    load imbalance of applications like `<TC, GRAPH>` (2 vs. 62 cores).
//! 2. **Strong isolation cost** — compare IRONHIDE against the SGX-like model
//!    that shares caches and DRAM freely, quantifying what spatial
//!    partitioning costs when purges are already eliminated.

use ironhide_bench::{geometric_mean, print_header, print_row, Sweep};
use ironhide_core::arch::Architecture;
use ironhide_core::realloc::ReallocPolicy;
use ironhide_workloads::app::AppId;

fn main() {
    let sweep = Sweep::default();
    println!("# Ablation: dynamic hardware isolation and partitioning cost\n");
    print_header(&[
        "Application",
        "IRONHIDE static 32/32 (ms)",
        "IRONHIDE dynamic (ms)",
        "Dynamic speedup",
        "SGX-like (ms)",
        "Partitioning cost vs SGX (%)",
    ]);

    let mut static_times = Vec::new();
    let mut dynamic_times = Vec::new();
    for app in AppId::ALL {
        let fixed = sweep.run_one(app, Architecture::Ironhide, ReallocPolicy::Static);
        let dynamic = sweep.run_one(app, Architecture::Ironhide, ReallocPolicy::Heuristic);
        let sgx = sweep.run_one(app, Architecture::SgxLike, ReallocPolicy::Heuristic);
        print_row(&[
            app.label().to_string(),
            format!("{:.2}", fixed.total_time_ms()),
            format!("{:.2}", dynamic.total_time_ms()),
            format!("{:.2}x", dynamic.speedup_over(&fixed)),
            format!("{:.2}", sgx.total_time_ms()),
            format!("{:+.1}", (dynamic.total_time_ms() / sgx.total_time_ms() - 1.0) * 100.0),
        ]);
        static_times.push(fixed.total_time_ms());
        dynamic_times.push(dynamic.total_time_ms());
    }

    println!(
        "\nGeomean benefit of dynamic hardware isolation: {:.2}x",
        geometric_mean(&static_times) / geometric_mean(&dynamic_times)
    );
}
