//! Page-to-L2-slice homing policies.
//!
//! On the Tile-Gx, the shared L2 is physically distributed: each tile owns a
//! slice and every physical page has a *home* slice that caches it. The
//! default policy hashes pages across all slices; MI6 and IRONHIDE override it
//! with *local homing* (`tmc_alloc_set_home`) so that each process's pages are
//! homed only on L2 slices that belong to that process (MI6) or to its cluster
//! (IRONHIDE). IRONHIDE's dynamic hardware isolation re-homes pages when L2
//! slices move between clusters.

use std::fmt;

use ironhide_fx::FxHashMap;

/// Identifier of a physical page (physical address divided by the page size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(pub u64);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page{:#x}", self.0)
    }
}

/// Identifier of an L2 slice; slices are co-located with tiles, so this is the
/// tile/node index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SliceId(pub usize);

impl fmt::Display for SliceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice{}", self.0)
    }
}

/// The homing policy in effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HomePolicy {
    /// The machine default: hash every page across the allowed slices.
    /// Leaks inter-process interference through shared slices, so the secure
    /// baselines never use it for partitioned data.
    #[default]
    HashForHome,
    /// Strong-isolation policy: every page is pinned to a single slice chosen
    /// from the owner's allowed slices, and explicit pins always win.
    LocalHoming,
}

/// Error returned when a page cannot be homed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HomingError {
    /// The page that could not be homed.
    pub page: PageId,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for HomingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot home {}: {}", self.page, self.reason)
    }
}

impl std::error::Error for HomingError {}

/// Maps physical pages to their home L2 slice.
#[derive(Debug, Clone, Default)]
pub struct HomeMap {
    policy: HomePolicy,
    allowed: Vec<SliceId>,
    /// Membership bitset over `allowed` (one bit per slice id), rebuilt by
    /// [`HomeMap::set_allowed`]: the pin/rehome paths test membership in O(1)
    /// instead of scanning the allowed vector per page.
    allowed_bits: Vec<u64>,
    /// Page pins, consulted on every L1 miss. Keyed with the deterministic Fx
    /// hasher: it is both faster than SipHash and gives the map a
    /// process-independent iteration order, which [`HomeMap::rehome_all`]'s
    /// round-robin assignment depends on for reproducible reconfigurations.
    pins: FxHashMap<PageId, SliceId>,
    /// Reverse index: how many pages are currently pinned to each slice,
    /// maintained by `pin`/`rehome`/`rehome_all_logged`. Lets a
    /// reconfiguration decide in O(distinct pinned slices) — not O(pins) —
    /// whether any page is homed on a now-disallowed slice, which is the
    /// common no-op case under churn. The *enumeration* of moved pages still
    /// walks the pin table when pages do move: the round-robin target
    /// assignment is defined over the pin table's iteration order, and that
    /// order (hence the simulated-cycle checksums) cannot be reconstructed
    /// from a per-slice index.
    pins_per_slice: FxHashMap<SliceId, u32>,
    rehomes: u64,
}

impl HomeMap {
    /// Creates a home map over the given allowed slices using the default
    /// hash-for-home policy.
    pub fn new(allowed: impl IntoIterator<Item = SliceId>) -> Self {
        let mut m = HomeMap {
            policy: HomePolicy::HashForHome,
            allowed: allowed.into_iter().collect(),
            allowed_bits: Vec::new(),
            pins: FxHashMap::default(),
            pins_per_slice: FxHashMap::default(),
            rehomes: 0,
        };
        m.rebuild_allowed_bits();
        m
    }

    /// Rebuilds the membership bitset from the allowed vector.
    fn rebuild_allowed_bits(&mut self) {
        self.allowed_bits.iter_mut().for_each(|w| *w = 0);
        let max = self.allowed.iter().map(|s| s.0).max();
        if let Some(max) = max {
            if self.allowed_bits.len() <= max / 64 {
                self.allowed_bits.resize(max / 64 + 1, 0);
            }
        }
        for s in &self.allowed {
            self.allowed_bits[s.0 / 64] |= 1 << (s.0 % 64);
        }
    }

    /// O(1) membership test against the allowed set.
    #[inline]
    fn is_allowed(&self, slice: SliceId) -> bool {
        self.allowed_bits.get(slice.0 / 64).is_some_and(|w| w & (1 << (slice.0 % 64)) != 0)
    }

    /// Records in the reverse index that a pin moved `from` one slice onto
    /// another (`None` for a fresh pin).
    #[inline]
    fn index_repin(&mut self, from: Option<SliceId>, to: SliceId) {
        if let Some(old) = from {
            if old == to {
                return;
            }
            if let Some(n) = self.pins_per_slice.get_mut(&old) {
                *n -= 1;
                if *n == 0 {
                    self.pins_per_slice.remove(&old);
                }
            }
        }
        *self.pins_per_slice.entry(to).or_insert(0) += 1;
    }

    /// Creates a local-homing map (the strong-isolation configuration).
    pub fn local(allowed: impl IntoIterator<Item = SliceId>) -> Self {
        let mut m = HomeMap::new(allowed);
        m.policy = HomePolicy::LocalHoming;
        m
    }

    /// The active policy.
    pub fn policy(&self) -> HomePolicy {
        self.policy
    }

    /// The slices pages may currently be homed on.
    pub fn allowed_slices(&self) -> &[SliceId] {
        &self.allowed
    }

    /// Number of re-homing operations performed (each corresponds to an
    /// unmap/set-home/remap sequence on the prototype).
    pub fn rehome_count(&self) -> u64 {
        self.rehomes
    }

    /// Replaces the set of allowed slices (used when a cluster gains or loses
    /// tiles). Existing pins outside the new set must be re-homed explicitly
    /// by the caller via [`HomeMap::rehome_all`].
    pub fn set_allowed(&mut self, allowed: impl IntoIterator<Item = SliceId>) {
        self.allowed.clear();
        self.allowed.extend(allowed);
        self.rebuild_allowed_bits();
    }

    /// Whether any pinned page currently lives outside the allowed set —
    /// i.e. whether [`HomeMap::rehome_all`] would move anything. O(distinct
    /// pinned slices) via the reverse index, not O(pins).
    pub fn has_disallowed_pins(&self) -> bool {
        self.pins_per_slice.keys().any(|s| !self.is_allowed(*s))
    }

    /// Pins `page` to `slice` (the `tmc_alloc_set_home` call).
    ///
    /// # Errors
    ///
    /// Fails if `slice` is not in the allowed set.
    pub fn pin(&mut self, page: PageId, slice: SliceId) -> Result<(), HomingError> {
        if !self.is_allowed(slice) {
            return Err(HomingError { page, reason: "target slice is not owned by this domain" });
        }
        let prev = self.pins.insert(page, slice);
        self.index_repin(prev, slice);
        Ok(())
    }

    /// The home slice of `page`.
    ///
    /// # Errors
    ///
    /// Fails if no slices are allowed, or if the policy is local homing and the
    /// page has not been pinned (strong isolation forbids silently hashing it
    /// onto an arbitrary slice).
    pub fn home_of(&self, page: PageId) -> Result<SliceId, HomingError> {
        if let Some(s) = self.pins.get(&page) {
            return Ok(*s);
        }
        if self.allowed.is_empty() {
            return Err(HomingError { page, reason: "no slices allowed for this domain" });
        }
        match self.policy {
            HomePolicy::HashForHome => {
                let idx = (page.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) as usize
                    % self.allowed.len();
                Ok(self.allowed[idx])
            }
            HomePolicy::LocalHoming => {
                // Local homing defaults to a deterministic spread over the
                // owner's slices for pages that were never explicitly pinned
                // (e.g. stack pages); the spread still never leaves the
                // allowed set.
                let idx = (page.0 % self.allowed.len() as u64) as usize;
                Ok(self.allowed[idx])
            }
        }
    }

    /// Re-homes a single page to `new_slice` (the unmap/set-home/remap
    /// sequence of the prototype).
    ///
    /// # Errors
    ///
    /// Fails if `new_slice` is not allowed.
    pub fn rehome(&mut self, page: PageId, new_slice: SliceId) -> Result<(), HomingError> {
        self.pin(page, new_slice)?;
        self.rehomes += 1;
        Ok(())
    }

    /// Re-homes every pinned page that currently lives outside the allowed
    /// set, spreading them round-robin over the allowed slices. Returns the
    /// number of pages moved. This is the bulk page-migration step of
    /// IRONHIDE's cluster reconfiguration.
    pub fn rehome_all(&mut self) -> Result<u64, HomingError> {
        let mut log = Vec::new();
        self.rehome_all_logged(&mut log)
    }

    /// Like [`HomeMap::rehome_all`], but also appends each moved page and
    /// the slice it was homed on *before* the move to `log`. The machine
    /// uses the log to scrub the moved pages' cache lines and directory
    /// entries — on the prototype the unmap/set-home/remap sequence flushes
    /// the page from every cache, so a re-homed page must not leave copies
    /// (or coherence metadata) behind at its old home.
    pub fn rehome_all_logged(
        &mut self,
        log: &mut Vec<(PageId, SliceId)>,
    ) -> Result<u64, HomingError> {
        if self.allowed.is_empty() {
            return Err(HomingError {
                page: PageId(0),
                reason: "cannot re-home pages: no slices allowed",
            });
        }
        // Fast path: the reverse index knows in O(distinct pinned slices)
        // whether anything is pinned outside the allowed set. Under churn
        // most calls restrict to a superset (or re-apply the same set) and
        // move nothing — they must not pay an O(pins) walk.
        if !self.has_disallowed_pins() {
            return Ok(0);
        }
        let start = log.len();
        // Pages do move: enumerate them in the pin table's iteration order.
        // The order is observable — the round-robin assignment below maps the
        // i-th moved page to `allowed[i % k]` — so this walk cannot be
        // replaced by iterating the reverse index (which would visit pages
        // grouped by old slice and re-deal every target).
        log.extend(self.pins.iter().filter(|(_, s)| !self.is_allowed(**s)).map(|(p, s)| (*p, *s)));
        Ok(self.assign_round_robin(&log[start..]))
    }

    /// Assigns round-robin targets to an already-enumerated moved log,
    /// updating the pin table and the reverse index. Shared tail of
    /// [`HomeMap::rehome_all_logged`] and its reference twin.
    fn assign_round_robin(&mut self, moved_log: &[(PageId, SliceId)]) -> u64 {
        let mut moved = 0;
        for (i, (page, old)) in moved_log.iter().enumerate() {
            let target = self.allowed[i % self.allowed.len()];
            self.pins.insert(*page, target);
            self.index_repin(Some(*old), target);
            self.rehomes += 1;
            moved += 1;
        }
        moved
    }

    /// The pre-index reference implementation of
    /// [`HomeMap::rehome_all_logged`]: a full O(pins × allowed) walk with a
    /// linear membership scan per pin and no zero-move fast path. Kept (and
    /// exercised by `tests/reconfig_equivalence.rs` and the churn harness's
    /// differential gate) as the byte-identity reference the indexed path
    /// must match move for move.
    ///
    /// # Errors
    ///
    /// Fails when no slices are allowed, like the indexed path.
    pub fn rehome_all_logged_reference(
        &mut self,
        log: &mut Vec<(PageId, SliceId)>,
    ) -> Result<u64, HomingError> {
        if self.allowed.is_empty() {
            return Err(HomingError {
                page: PageId(0),
                reason: "cannot re-home pages: no slices allowed",
            });
        }
        let start = log.len();
        log.extend(
            self.pins.iter().filter(|(_, s)| !self.allowed.contains(s)).map(|(p, s)| (*p, *s)),
        );
        Ok(self.assign_round_robin(&log[start..]))
    }

    /// The slice `page` is explicitly pinned to, if any (`None` for pages
    /// that would fall through to the policy spread). Lets the machine
    /// detect when a pin *moves* an already-used page's home.
    pub fn pinned_home(&self, page: PageId) -> Option<SliceId> {
        self.pins.get(&page).copied()
    }

    /// Number of explicitly pinned pages.
    pub fn pinned_pages(&self) -> usize {
        self.pins.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slices(ids: &[usize]) -> Vec<SliceId> {
        ids.iter().map(|i| SliceId(*i)).collect()
    }

    #[test]
    fn hash_for_home_spreads_but_stays_allowed() {
        let m = HomeMap::new(slices(&[0, 1, 2, 3]));
        let mut seen = std::collections::HashSet::new();
        for p in 0..64 {
            let h = m.home_of(PageId(p)).unwrap();
            assert!(m.allowed_slices().contains(&h));
            seen.insert(h);
        }
        assert!(seen.len() > 1, "hashing must use more than one slice");
    }

    #[test]
    fn local_homing_respects_pins() {
        let mut m = HomeMap::local(slices(&[4, 5]));
        m.pin(PageId(7), SliceId(5)).unwrap();
        assert_eq!(m.home_of(PageId(7)).unwrap(), SliceId(5));
        // Unpinned pages stay within the allowed set.
        assert!(m.allowed_slices().contains(&m.home_of(PageId(99)).unwrap()));
    }

    #[test]
    fn pin_outside_allowed_rejected() {
        let mut m = HomeMap::local(slices(&[0, 1]));
        let err = m.pin(PageId(1), SliceId(9)).unwrap_err();
        assert!(err.to_string().contains("not owned"));
    }

    #[test]
    fn rehome_all_moves_stale_pages() {
        let mut m = HomeMap::local(slices(&[0, 1, 2, 3]));
        for p in 0..8u64 {
            m.pin(PageId(p), SliceId((p % 4) as usize)).unwrap();
        }
        // The cluster shrinks: slices 2 and 3 are given away.
        m.set_allowed(slices(&[0, 1]));
        let moved = m.rehome_all().unwrap();
        assert_eq!(moved, 4);
        for p in 0..8u64 {
            let h = m.home_of(PageId(p)).unwrap();
            assert!(h == SliceId(0) || h == SliceId(1));
        }
        assert_eq!(m.rehome_count(), 4);
    }

    #[test]
    fn empty_allowed_set_errors() {
        let m = HomeMap::local(Vec::<SliceId>::new());
        assert!(m.home_of(PageId(3)).is_err());
        let mut m2 = m.clone();
        assert!(m2.rehome_all().is_err());
    }

    #[test]
    fn rehome_single_page() {
        let mut m = HomeMap::local(slices(&[0, 1]));
        m.pin(PageId(10), SliceId(0)).unwrap();
        m.rehome(PageId(10), SliceId(1)).unwrap();
        assert_eq!(m.home_of(PageId(10)).unwrap(), SliceId(1));
        assert_eq!(m.rehome_count(), 1);
    }

    #[test]
    fn deterministic_homing() {
        let m = HomeMap::new(slices(&[0, 1, 2, 3, 4, 5, 6, 7]));
        for p in 0..32 {
            assert_eq!(m.home_of(PageId(p)).unwrap(), m.home_of(PageId(p)).unwrap());
        }
    }
}
