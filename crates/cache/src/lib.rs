//! # ironhide-cache
//!
//! Functional cache, TLB and page-homing models for the IRONHIDE reproduction.
//!
//! The paper's machine has, per tile, a private L1 data cache and a private
//! TLB, plus a slice of the logically shared, physically distributed L2 cache.
//! Three properties of this hierarchy carry the paper's results:
//!
//! * **Purging** — MI6 flushes-and-invalidates every private L1 and TLB on
//!   every enclave entry/exit, so the re-entering process pays cold misses
//!   ("L1 thrashing"). The caches here are functional (they track real tags),
//!   so that inflation emerges from the model instead of being a constant.
//! * **Local homing** — strong isolation maps each page (data structure) to a
//!   single L2 slice owned by the accessing process, and disables replication,
//!   so a process can never probe another process's slices. [`HomeMap`]
//!   implements both the default hash-for-home policy and the local-homing
//!   override, including the page re-homing used by IRONHIDE's dynamic
//!   hardware isolation.
//! * **Capacity partitioning** — statically splitting the L2 slices between
//!   the secure and insecure processes (MI6) versus re-balancing them once per
//!   application invocation (IRONHIDE) changes each process's effective L2
//!   capacity, which is what Figure 7(b) measures.
//! * **Coherence** — every home slice carries a bounded MESI [`Directory`]
//!   tracking which cores hold each line, so cross-core invalidations,
//!   downgrades and directory-conflict back-invalidations are functional
//!   state the machine charges on real mesh routes (and that the
//!   `coherence-state` covert channel attacks). Directory purges are O(1)
//!   generation bumps, wired into the MI6 boundary and IRONHIDE's
//!   reconfiguration.
//!
//! # Example
//!
//! ```
//! use ironhide_cache::{CacheConfig, SetAssocCache};
//!
//! let mut l1 = SetAssocCache::new(CacheConfig::paper_l1());
//! let miss = l1.access(0x1000, false);
//! assert!(miss.is_miss());
//! let hit = l1.access(0x1000, false);
//! assert!(hit.is_hit());
//! assert_eq!(l1.stats().misses, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod directory;
pub mod homing;
pub mod replacement;
pub mod set_assoc;
pub mod stats;
pub mod tlb;

pub use config::{CacheConfig, TlbConfig};
pub use directory::{
    DirOutcome, Directory, DirectoryConfig, DirectoryConfigError, DirectoryStats, EvictedEntry,
    MesiState,
};
pub use homing::{HomeMap, HomePolicy, PageId, SliceId};
pub use replacement::ReplacementPolicy;
pub use set_assoc::{AccessOutcome, Evicted, SetAssocCache, Way};
pub use stats::CacheStats;
pub use tlb::Tlb;
