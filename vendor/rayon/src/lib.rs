//! Offline, API-compatible subset of the `rayon` crate.
//!
//! The build environment has no crates.io access, so this shim implements the
//! slice of the rayon API the sweep subsystem uses: [`ThreadPoolBuilder`] /
//! [`ThreadPool::install`], and `par_iter().map(..).collect::<Vec<_>>()` on
//! slices and vectors (via [`prelude`]).
//!
//! Execution model: a parallel map distributes items over `N` OS threads
//! (scoped, created per call — adequate for the coarse-grained experiment
//! cells this repo parallelises) using an atomic work-stealing index, and
//! **always collects results in item order**, so the output is independent of
//! the thread count and of scheduling, which is exactly the determinism
//! contract the sweep tests rely on.

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread count installed by [`ThreadPool::install`] for the current
    /// scope; 0 means "use the default".
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };

    /// Index of the current worker within its parallel operation; `None`
    /// outside a worker (including the serial fast path, which runs on the
    /// caller's thread).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The index of the calling worker thread within its parallel operation
/// (mirroring `rayon::current_thread_index`): `Some(0..threads)` inside a
/// parallel map's workers, `None` on threads not owned by one — callers use
/// it to index per-worker state without locking across workers.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|c| c.get())
}

/// The number of worker threads a parallel operation started now would use.
pub fn current_num_threads() -> usize {
    let installed = CURRENT_THREADS.with(|c| c.get());
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    }
}

/// Error returned by [`ThreadPoolBuilder::build`] (the shim never fails).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count (0 = one per available core).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads: n })
    }
}

/// A logical thread pool. The shim spawns scoped threads per operation
/// rather than keeping workers alive; `install` records the thread count the
/// enclosed parallel operations should use.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `op` with this pool's thread count governing any parallel
    /// iterators it creates.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        CURRENT_THREADS.with(|c| {
            let previous = c.get();
            c.set(self.num_threads);
            let result = op();
            c.set(previous);
            result
        })
    }
}

/// A parallel iterator over borrowed items (subset: `map` + `collect`).
#[derive(Debug)]
pub struct ParIter<'a, T> {
    items: &'a [T],
}

/// The result of [`ParallelIterator::map`].
pub struct ParMap<'a, T, R, F> {
    items: &'a [T],
    f: F,
    _out: std::marker::PhantomData<R>,
}

impl<'a, T, R, F> fmt::Debug for ParMap<'a, T, R, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParMap").field("len", &self.items.len()).finish()
    }
}

/// Types that can produce a [`ParIter`] by reference.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: Sync + 'a;

    /// Returns a parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The subset of rayon's `ParallelIterator` the workspace uses.
pub trait ParallelIterator<'a>: Sized {
    /// The item type.
    type Item;

    /// Maps each item through `f` in parallel.
    fn map<R, F>(self, f: F) -> ParMap<'a, Self::Item, R, F>
    where
        F: Fn(&'a Self::Item) -> R + Sync,
        R: Send;
}

impl<'a, T: Sync> ParallelIterator<'a> for ParIter<'a, T> {
    type Item = T;

    fn map<R, F>(self, f: F) -> ParMap<'a, T, R, F>
    where
        F: Fn(&'a T) -> R + Sync,
        R: Send,
    {
        ParMap { items: self.items, f, _out: std::marker::PhantomData }
    }
}

impl<'a, T: Sync, R: Send, F: Fn(&'a T) -> R + Sync> ParMap<'a, T, R, F> {
    /// Runs the map on the installed thread count and collects the results
    /// **in item order**, independent of scheduling.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_ordered(self.items, &self.f).into_iter().collect()
    }
}

/// Maps `f` over `items` on the currently installed thread count, returning
/// results in item order.
fn par_map_ordered<'a, T: Sync, R: Send>(
    items: &'a [T],
    f: &(impl Fn(&'a T) -> R + Sync),
) -> Vec<R> {
    let threads = current_num_threads().min(items.len()).max(1);
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let next = &next;
            let slots = &slots;
            scope.spawn(move || {
                WORKER_INDEX.with(|c| c.set(Some(worker)));
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    let value = f(&items[idx]);
                    *slots[idx].lock().unwrap() = Some(value);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("worker filled every slot"))
        .collect()
}

/// The imports rayon users glob in.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ordered_collection_is_thread_count_independent() {
        let items: Vec<u64> = (0..103).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 8] {
            let pool = ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
            let parallel: Vec<u64> =
                pool.install(|| items.par_iter().map(|x| x * x).collect::<Vec<_>>());
            assert_eq!(parallel, serial, "thread count {threads} changed the result");
        }
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| assert_eq!(current_num_threads(), 3));
        let nested = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            nested.install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
    }

    #[test]
    fn worker_indices_are_dense_and_scoped() {
        assert_eq!(current_thread_index(), None, "caller thread is not a worker");
        let items: Vec<u32> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let indices: Vec<Option<usize>> =
            pool.install(|| items.par_iter().map(|_| current_thread_index()).collect::<Vec<_>>());
        for idx in indices {
            let idx = idx.expect("parallel work runs on an indexed worker");
            assert!(idx < 4, "worker index {idx} out of range");
        }
        assert_eq!(current_thread_index(), None, "index does not leak to the caller");
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let empty: Vec<u32> = Vec::new();
        let result: Vec<u32> = empty.par_iter().map(|x| x + 1).collect();
        assert!(result.is_empty());
        let one = [41u32];
        let result: Vec<u32> = one.par_iter().map(|x| x + 1).collect();
        assert_eq!(result, vec![42]);
    }
}
