//! DRAM device timing parameters.

/// Timing and organisation parameters of the DRAM behind one controller.
///
/// The model is a row-buffer model: accesses that hit the currently open row
/// of their bank pay `row_hit_cycles`, accesses to a different row pay
/// `row_miss_cycles` (precharge + activate + CAS). Queueing delay is added by
/// the controller on top of these device latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of banks per controller.
    pub banks: usize,
    /// Row size in bytes (determines which accesses hit the open row).
    pub row_bytes: usize,
    /// Device latency of a row-buffer hit, in core cycles.
    pub row_hit_cycles: u64,
    /// Device latency of a row-buffer miss, in core cycles.
    pub row_miss_cycles: u64,
    /// Extra queueing cycles added per outstanding request already in the
    /// controller queue.
    pub queue_cycles_per_entry: u64,
    /// Maximum number of requests the controller queue can hold before the
    /// queueing delay saturates.
    pub queue_depth: usize,
}

impl Default for DramConfig {
    /// DDR3-1600-class latencies at a 1 GHz core clock, matching the
    /// Tile-Gx72's four DDR3 controllers to first order.
    fn default() -> Self {
        DramConfig {
            banks: 8,
            row_bytes: 2048,
            row_hit_cycles: 40,
            row_miss_cycles: 110,
            queue_cycles_per_entry: 4,
            queue_depth: 32,
        }
    }
}

impl DramConfig {
    /// Bank index an address maps to (low-order interleaving above the row).
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / self.row_bytes as u64) % self.banks as u64) as usize
    }

    /// Row index (within its bank) an address maps to.
    pub fn row_of(&self, addr: u64) -> u64 {
        addr / (self.row_bytes as u64 * self.banks as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_and_row_mapping() {
        let c = DramConfig::default();
        assert_eq!(c.bank_of(0), 0);
        assert_eq!(c.bank_of(2048), 1);
        assert_eq!(c.bank_of(2048 * 8), 0);
        assert_eq!(c.row_of(0), 0);
        assert_eq!(c.row_of(2048 * 8), 1);
    }

    #[test]
    fn addresses_in_same_row_share_bank_and_row() {
        let c = DramConfig::default();
        assert_eq!(c.bank_of(100), c.bank_of(2000));
        assert_eq!(c.row_of(100), c.row_of(2000));
    }

    #[test]
    fn defaults_are_sane() {
        let c = DramConfig::default();
        assert!(c.row_miss_cycles > c.row_hit_cycles);
        assert!(c.banks.is_power_of_two());
    }
}
