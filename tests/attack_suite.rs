//! The adversarial security regression suite.
//!
//! Runs the covert-channel attack matrix ({channel × architecture} at the
//! smoke scale) and enforces the reproduction's differential security claim:
//!
//! * on the **insecure shared baseline** every channel decodes its payload
//!   with a bit-error rate below 10% — the attacks demonstrably work in this
//!   simulator, so a "closed" verdict elsewhere means something;
//! * under **IRONHIDE** the same attackers decode at 50% ± 5% BER —
//!   indistinguishable from guessing — with the strong-isolation audit
//!   clean;
//! * the serialised matrix is **byte-identical at 1, 2 and 8 worker
//!   threads**, and matches the golden snapshot under `tests/golden/`.
//!
//! To regenerate the snapshot after an *intentional* model change:
//!
//! ```bash
//! IRONHIDE_REGEN_GOLDEN=1 cargo test --test attack_suite
//! git diff tests/golden/   # review the verdict movement, then commit
//! ```

use std::fs;
use std::path::PathBuf;

use ironhide::prelude::*;

const MASTER_SEED: u64 = 0xA7_7A_C4;

fn smoke_matrix(threads: usize) -> AttackMatrix {
    let grid = attack_grid(&Architecture::ALL, &[ScalePoint::new("Smoke")]);
    SweepRunner::new(MachineConfig::attack_testbench())
        .with_seed(MASTER_SEED)
        .with_threads(threads)
        .run_attacks(&grid)
        .expect("attack matrix runs")
}

#[test]
fn differential_security_claim_holds_at_any_thread_count() {
    let baseline = smoke_matrix(1);
    let baseline_json = baseline.to_json();

    // Byte-identical collection regardless of worker parallelism.
    for threads in [2, 8] {
        let json = smoke_matrix(threads).to_json();
        assert_eq!(json, baseline_json, "thread count {threads} changed the attack matrix");
    }

    // The headline claim, channel by channel.
    let violations = baseline.differential_violations();
    assert!(violations.is_empty(), "differential security claim violated:\n{violations:#?}");
    for kind in ChannelKind::ALL {
        let open = baseline
            .get(kind.label(), Architecture::Insecure, "Smoke")
            .expect("insecure cell present");
        assert!(
            open.outcome.ber < 0.10,
            "{}: insecure baseline BER {} must be below 0.10",
            kind.label(),
            open.outcome.ber
        );
        assert!(open.outcome.is_open());
        assert!(open.outcome.capacity_bits_per_second > 0.0);

        let closed = baseline
            .get(kind.label(), Architecture::Ironhide, "Smoke")
            .expect("ironhide cell present");
        assert!(
            (closed.outcome.ber - 0.5).abs() <= 0.05,
            "{}: IRONHIDE BER {} must sit within 0.50 ± 0.05",
            kind.label(),
            closed.outcome.ber
        );
        assert!(closed.outcome.is_closed());
        assert!(
            closed.outcome.isolation.is_clean(),
            "{}: {:?}",
            kind.label(),
            closed.outcome.isolation.violations
        );
        // The attack's IPC-protocol traffic is the only boundary crossing.
        assert!(
            closed.outcome.isolation.cross_cluster_packets <= closed.outcome.isolation.ipc_packets
        );
    }

    // MI6 purges at every boundary, so it closes the channels too (at its
    // well-known per-interaction cost); SGX-like enclaves leak.
    for kind in ChannelKind::ALL {
        let mi6 = baseline.get(kind.label(), Architecture::Mi6, "Smoke").expect("mi6 cell");
        assert!(mi6.outcome.is_closed(), "{}: MI6 BER {}", kind.label(), mi6.outcome.ber);
        let sgx = baseline.get(kind.label(), Architecture::SgxLike, "Smoke").expect("sgx cell");
        assert!(sgx.outcome.is_open(), "{}: SGX BER {}", kind.label(), sgx.outcome.ber);
    }
}

#[test]
fn attack_matrix_matches_golden() {
    let rendered = smoke_matrix(0).to_json();
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/attack_matrix_smoke.json");

    if std::env::var_os("IRONHIDE_REGEN_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        fs::write(&path, &rendered).expect("write golden attack matrix");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; generate it with IRONHIDE_REGEN_GOLDEN=1 cargo test --test attack_suite",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "attack-matrix verdicts/counters drifted from {} (regenerate with \
         IRONHIDE_REGEN_GOLDEN=1 if the model change is intentional)",
        path.display()
    );
}

/// The temporal-fence ablation ladder (13 flush subsets × all six channels)
/// at the smoke scale — the defence-ablation companion to [`smoke_matrix`].
fn ablation_ladder(threads: usize) -> AblationMatrix {
    let grid = ablation_grid(ablation_subsets(), &[ScalePoint::new("Smoke")]);
    SweepRunner::new(MachineConfig::attack_testbench())
        .with_seed(MASTER_SEED)
        .with_threads(threads)
        .run_ablation(&grid)
        .expect("ablation matrix runs")
}

/// Per channel, the minimal flush subset that closes it — written from the
/// observed deterministic matrix, pinned here so any model change that moves
/// a channel's closing requirement fails loudly. The structure is the
/// headline of the ablation: the TLB channel dies the moment the TLB is
/// flushed; everything that decodes through the cache hierarchy dies with
/// the directory flush (whose writeback storm also scrubs the NoC load
/// averages and DRAM rows); the NoC contention channel also needs the L1
/// flush on top; and SIMF is never the cheapest way to close anything.
#[test]
fn each_channel_has_a_minimal_closing_subset_cheaper_than_simf() {
    let matrix = ablation_ladder(4);
    let expected = [
        ("l2-slice-occupancy", "dir"),
        ("noc-link-contention", "l1+dir"),
        ("tlb-occupancy", "tlb"),
        ("ipc-buffer-timing", "dir"),
        ("coherence-state", "dir"),
        ("reconfig-window", "dir"),
    ];
    let simf_cost = TemporalFenceConfig::simf().switch_cost(&MachineConfig::attack_testbench());
    for (channel, cheapest) in expected {
        // Zero flush leaves the channel demonstrably working...
        let none = matrix.get("none", channel, "Smoke").expect("none row present");
        assert!(none.outcome.is_open(), "{channel}: closed with nothing flushed");
        // ...SIMF closes it at the full price...
        let simf = matrix.get("simf", channel, "Smoke").expect("simf row present");
        assert!(simf.outcome.is_closed(), "{channel}: SIMF leaks (BER {})", simf.outcome.ber);
        assert_eq!(simf.switch_cost, simf_cost);
        // ...and the pinned selective subset is the cheapest closing row.
        let best = matrix.cheapest_closed(channel, "Smoke").expect("some subset closes it");
        assert_eq!(
            best.key.subset, cheapest,
            "{channel}: cheapest closing subset moved (now {} at {} cycles)",
            best.key.subset, best.switch_cost
        );
        assert!(
            best.switch_cost < simf_cost,
            "{channel}: cheapest closing subset {} out-charges SIMF",
            best.key.subset
        );
    }
}

#[test]
fn ablation_matrix_matches_golden() {
    let rendered = ablation_ladder(0).to_json();
    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/ablation_matrix_smoke.json");

    if std::env::var_os("IRONHIDE_REGEN_GOLDEN").is_some() {
        fs::create_dir_all(path.parent().unwrap()).expect("create tests/golden");
        fs::write(&path, &rendered).expect("write golden ablation matrix");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden file {}; generate it with IRONHIDE_REGEN_GOLDEN=1 cargo test --test attack_suite",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        expected,
        "ablation-matrix verdicts/costs drifted from {} (regenerate with \
         IRONHIDE_REGEN_GOLDEN=1 if the model change is intentional)",
        path.display()
    );
}

#[test]
fn paper_scale_payload_also_discriminates() {
    // A longer payload (96 bits) on the two architectures the differential
    // claim gates on, single channel — a cheap guard that the result is not
    // an artefact of the 32-bit payload.
    let config = MachineConfig::attack_testbench();
    let oracle = LeakageOracle::new(config.clone()).with_payload_bits(96);
    let channel = ChannelKind::L2SliceOccupancy.build(&config, 11);
    let open = oracle.assess(Architecture::Insecure, &channel, 11).expect("insecure run");
    assert!(open.is_open() && open.ber < 0.10, "BER {}", open.ber);
    let closed = oracle.assess(Architecture::Ironhide, &channel, 11).expect("ironhide run");
    assert!(closed.is_closed());
    assert_eq!(closed.payload_bits, 96);
}
