//! Physically isolated DRAM regions and their controller mapping.

use std::fmt;

use crate::controller::ControllerMask;

/// Identifier of a DRAM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RegionId(pub usize);

impl fmt::Display for RegionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "region{}", self.0)
    }
}

/// The security domain a DRAM region is dedicated to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionOwner {
    /// Dedicated to secure processes / the secure cluster.
    Secure,
    /// Dedicated to insecure processes / the insecure cluster. The shared IPC
    /// buffer always lives in an insecure region.
    Insecure,
}

/// A physically contiguous DRAM region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramRegion {
    /// Region identifier.
    pub id: RegionId,
    /// First physical address of the region.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Memory controller that services the region.
    pub controller: usize,
    /// Security domain the region is dedicated to.
    pub owner: RegionOwner,
}

impl DramRegion {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

/// Error returned when an address cannot be attributed to any region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnmappedAddress(pub u64);

impl fmt::Display for UnmappedAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "physical address {:#x} is not mapped to any DRAM region", self.0)
    }
}

impl std::error::Error for UnmappedAddress {}

/// The machine's DRAM region map: which regions exist, who owns them, and
/// which controllers service them.
#[derive(Debug, Clone, Default)]
pub struct RegionMap {
    regions: Vec<DramRegion>,
}

impl RegionMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the paper's layout: `controllers` memory controllers, each
    /// serving one secure and one insecure region of `region_size` bytes.
    /// Secure regions occupy the low half of each controller's address range.
    pub fn paper_layout(controllers: usize, region_size: u64) -> Self {
        let mut map = RegionMap::new();
        let mut next_base = 0u64;
        let mut next_id = 0usize;
        for mc in 0..controllers {
            for owner in [RegionOwner::Secure, RegionOwner::Insecure] {
                map.regions.push(DramRegion {
                    id: RegionId(next_id),
                    base: next_base,
                    size: region_size,
                    controller: mc,
                    owner,
                });
                next_base += region_size;
                next_id += 1;
            }
        }
        map
    }

    /// Adds a region.
    pub fn push(&mut self, region: DramRegion) {
        self.regions.push(region);
    }

    /// All regions.
    pub fn regions(&self) -> &[DramRegion] {
        &self.regions
    }

    /// Regions owned by `owner`.
    pub fn regions_of(&self, owner: RegionOwner) -> Vec<&DramRegion> {
        self.regions.iter().filter(|r| r.owner == owner).collect()
    }

    /// The region containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`UnmappedAddress`] if no region contains the address.
    pub fn region_of(&self, addr: u64) -> Result<&DramRegion, UnmappedAddress> {
        self.regions.iter().find(|r| r.contains(addr)).ok_or(UnmappedAddress(addr))
    }

    /// The controller servicing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`UnmappedAddress`] if no region contains the address.
    pub fn controller_of(&self, addr: u64) -> Result<usize, UnmappedAddress> {
        self.region_of(addr).map(|r| r.controller)
    }

    /// The owner of the region containing `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`UnmappedAddress`] if no region contains the address.
    pub fn owner_of(&self, addr: u64) -> Result<RegionOwner, UnmappedAddress> {
        self.region_of(addr).map(|r| r.owner)
    }

    /// The controller mask covering all regions owned by `owner` — the `pos`
    /// bit-mask handed to the prototype's interleaving API.
    pub fn controller_mask_of(&self, owner: RegionOwner) -> ControllerMask {
        let mut mask = 0u32;
        for r in self.regions_of(owner) {
            mask |= 1 << r.controller;
        }
        ControllerMask(mask)
    }

    /// Total bytes of DRAM owned by `owner`.
    pub fn capacity_of(&self, owner: RegionOwner) -> u64 {
        self.regions_of(owner).iter().map(|r| r.size).sum()
    }

    /// Checks the strong-isolation invariant that controller masks derived
    /// from the two owners are disjoint (every controller serves one domain).
    /// The multicore-MI6 baseline intentionally violates this (controllers are
    /// shared and purged instead); IRONHIDE requires it to hold.
    pub fn controllers_disjoint(&self) -> bool {
        !self
            .controller_mask_of(RegionOwner::Secure)
            .overlaps(self.controller_mask_of(RegionOwner::Insecure))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_layout_shape() {
        let map = RegionMap::paper_layout(4, 1 << 30);
        assert_eq!(map.regions().len(), 8);
        assert_eq!(map.regions_of(RegionOwner::Secure).len(), 4);
        assert_eq!(map.regions_of(RegionOwner::Insecure).len(), 4);
        assert_eq!(map.capacity_of(RegionOwner::Secure), 4 << 30);
    }

    #[test]
    fn lookup_by_address() {
        let map = RegionMap::paper_layout(2, 0x1000);
        assert_eq!(map.region_of(0x0).unwrap().owner, RegionOwner::Secure);
        assert_eq!(map.region_of(0x1000).unwrap().owner, RegionOwner::Insecure);
        assert_eq!(map.controller_of(0x2000).unwrap(), 1);
        assert!(map.region_of(0x4000).is_err());
    }

    #[test]
    fn controller_masks_cover_shared_controllers() {
        // In the paper layout each controller serves both a secure and an
        // insecure region (the MI6 arrangement), so the masks overlap.
        let map = RegionMap::paper_layout(4, 0x1000);
        assert!(!map.controllers_disjoint());
        assert_eq!(map.controller_mask_of(RegionOwner::Secure).count(), 4);
    }

    #[test]
    fn dedicated_controllers_are_disjoint() {
        // The IRONHIDE arrangement: MC0/MC1 secure, MC2/MC3 insecure.
        let mut map = RegionMap::new();
        for (i, owner) in
            [RegionOwner::Secure, RegionOwner::Secure, RegionOwner::Insecure, RegionOwner::Insecure]
                .iter()
                .enumerate()
        {
            map.push(DramRegion {
                id: RegionId(i),
                base: i as u64 * 0x1000,
                size: 0x1000,
                controller: i,
                owner: *owner,
            });
        }
        assert!(map.controllers_disjoint());
        assert_eq!(map.controller_mask_of(RegionOwner::Secure).0, 0b0011);
        assert_eq!(map.controller_mask_of(RegionOwner::Insecure).0, 0b1100);
    }

    #[test]
    fn unmapped_address_error_message() {
        let map = RegionMap::new();
        let err = map.region_of(0x42).unwrap_err();
        assert!(err.to_string().contains("not mapped"));
    }
}
