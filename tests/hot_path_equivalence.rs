//! Differential tests for the allocation-free hot path.
//!
//! PR 2 flattened `SetAssocCache` storage (nested per-set vectors → one
//! contiguous way array with shift/mask indexing) and replaced materialised
//! `Route`s with the lazily-stepped `RouteIter`. These properties drive the
//! optimised implementations against naive reference models — a nested-vec
//! cache and a step-loop route materialiser transcribed from the seed code —
//! over random access/route sequences and require identical outcomes, stats,
//! hops and link sequences.

use proptest::prelude::*;

use ironhide::ironhide_cache::{
    AccessOutcome, CacheConfig, Evicted, ReplacementPolicy, SetAssocCache, SliceId,
};
use ironhide::ironhide_mesh::{
    ClusterId, ClusterMap, Coord, MeshTopology, NodeId, RoutingAlgorithm,
};
use ironhide::ironhide_sim::config::MachineConfig;
use ironhide::ironhide_sim::machine::Machine;
use ironhide::ironhide_sim::process::SecurityClass;
use ironhide::ironhide_sim::stream::{RefRun, RefStream};

// ---------------------------------------------------------------------------
// Reference cache: the seed's nested-vec implementation, div/mod indexing and
// temporary stamp vectors for victim selection.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, Default)]
struct RefWay {
    valid: bool,
    dirty: bool,
    tag: u64,
    last_use: u64,
    filled_at: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct RefStats {
    accesses: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    writebacks: u64,
    flushed_lines: u64,
    purges: u64,
}

struct RefCache {
    config: CacheConfig,
    policy: ReplacementPolicy,
    sets: Vec<Vec<RefWay>>,
    tick: u64,
    stats: RefStats,
}

impl RefCache {
    fn new(config: CacheConfig, policy: ReplacementPolicy) -> Self {
        RefCache {
            sets: vec![vec![RefWay::default(); config.ways]; config.sets()],
            config,
            policy,
            tick: 0,
            stats: RefStats::default(),
        }
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let index = (line % self.config.sets() as u64) as usize;
        let tag = line / self.config.sets() as u64;
        (index, tag)
    }

    fn line_addr(&self, index: usize, tag: u64) -> u64 {
        (tag * self.config.sets() as u64 + index as u64) * self.config.line_bytes as u64
    }

    /// The seed's victim selection: copy the stamps into temporaries, then
    /// pick by policy (first-minimum tie-break, same xorshift for Random).
    fn ref_victim(&self, set: &[RefWay]) -> usize {
        let index_of_min = |values: &[u64]| -> usize {
            let mut best = 0;
            for (i, v) in values.iter().enumerate() {
                if *v < values[best] {
                    best = i;
                }
            }
            best
        };
        let last_use: Vec<u64> = set.iter().map(|w| w.last_use).collect();
        let filled_at: Vec<u64> = set.iter().map(|w| w.filled_at).collect();
        match self.policy {
            ReplacementPolicy::Lru => index_of_min(&last_use),
            ReplacementPolicy::Fifo => index_of_min(&filled_at),
            ReplacementPolicy::Random => {
                let mut x = self.tick.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                x ^= x >> 33;
                x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
                x ^= x >> 29;
                (x as usize) % last_use.len()
            }
        }
    }

    fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let (index, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[index];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = self.tick;
            way.dirty |= write;
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        let victim_idx = match set.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => self.ref_victim(&self.sets[index]),
        };
        let victim = self.sets[index][victim_idx];
        let evicted = if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            Some(Evicted { addr: self.line_addr(index, victim.tag), dirty: victim.dirty })
        } else {
            None
        };
        self.sets[index][victim_idx] =
            RefWay { valid: true, dirty: write, tag, last_use: self.tick, filled_at: self.tick };
        AccessOutcome::Miss { evicted }
    }

    fn invalidate(&mut self, addr: u64) -> Option<Evicted> {
        let (index, tag) = self.index_and_tag(addr);
        let line_addr = self.line_addr(index, tag);
        let way = self.sets[index].iter_mut().find(|w| w.valid && w.tag == tag)?;
        let dirty = way.dirty;
        way.valid = false;
        way.dirty = false;
        self.stats.flushed_lines += 1;
        if dirty {
            self.stats.writebacks += 1;
        }
        Some(Evicted { addr: line_addr, dirty })
    }

    fn purge(&mut self) -> u64 {
        let mut dirty = 0;
        let mut valid = 0;
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if way.valid {
                    valid += 1;
                    if way.dirty {
                        dirty += 1;
                    }
                }
                *way = RefWay::default();
            }
        }
        self.stats.purges += 1;
        self.stats.flushed_lines += valid;
        self.stats.writebacks += dirty;
        dirty
    }

    fn probe(&self, addr: u64) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.sets[index].iter().any(|w| w.valid && w.tag == tag)
    }

    fn resident_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }

    fn dirty_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid && w.dirty).count()
    }
}

fn geometry(idx: usize) -> CacheConfig {
    match idx % 4 {
        0 => CacheConfig::new(512, 2, 64),
        1 => CacheConfig::new(2048, 4, 64),
        2 => CacheConfig::new(1024, 1, 128), // direct-mapped, wide lines
        _ => CacheConfig::new(4096, 8, 32),
    }
}

fn policy(idx: usize) -> ReplacementPolicy {
    match idx % 3 {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::Fifo,
        _ => ReplacementPolicy::Random,
    }
}

// ---------------------------------------------------------------------------
// Reference route: the seed's step-loop materialiser.
// ---------------------------------------------------------------------------

fn ref_route(
    m: &MeshTopology,
    src: NodeId,
    dst: NodeId,
    algorithm: RoutingAlgorithm,
) -> Vec<NodeId> {
    let s = m.coord(src);
    let d = m.coord(dst);
    let mut nodes = vec![src];
    let mut cur = s;
    let step = |cur: &mut Coord, nodes: &mut Vec<NodeId>, dim_x: bool, target: usize| loop {
        let v = if dim_x { cur.x } else { cur.y };
        if v == target {
            break;
        }
        let next = if v < target { v + 1 } else { v - 1 };
        if dim_x {
            cur.x = next;
        } else {
            cur.y = next;
        }
        nodes.push(m.node_at(*cur));
    };
    match algorithm {
        RoutingAlgorithm::XY => {
            step(&mut cur, &mut nodes, true, d.x);
            step(&mut cur, &mut nodes, false, d.y);
        }
        RoutingAlgorithm::YX => {
            step(&mut cur, &mut nodes, false, d.y);
            step(&mut cur, &mut nodes, true, d.x);
        }
    }
    nodes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The flattened cache and the nested-vec reference agree on every
    /// outcome, statistic and state query over random access sequences with
    /// interleaved invalidates and purges, for every geometry and policy.
    #[test]
    fn flat_cache_matches_nested_reference(
        geo in 0usize..4,
        pol in 0usize..3,
        addrs in prop::collection::vec(0u64..0x8000, 1..400),
        writes in prop::collection::vec(any::<bool>(), 1..400),
        ops in prop::collection::vec(0u8..32, 1..400),
    ) {
        let config = geometry(geo);
        let mut flat = SetAssocCache::with_policy(config, policy(pol));
        let mut reference = RefCache::new(config, policy(pol));
        for (i, addr) in addrs.iter().enumerate() {
            let write = writes[i % writes.len()];
            match ops[i % ops.len()] {
                // Rare maintenance operations, interleaved with accesses.
                0 => prop_assert_eq!(flat.invalidate(*addr), reference.invalidate(*addr)),
                1 if i % 97 == 0 => prop_assert_eq!(flat.purge(), reference.purge()),
                _ => {
                    let a = flat.access(*addr, write);
                    let b = reference.access(*addr, write);
                    prop_assert_eq!(a, b, "access #{} addr {:#x}", i, addr);
                }
            }
            prop_assert_eq!(flat.probe(*addr), reference.probe(*addr));
        }
        let s = flat.stats();
        prop_assert_eq!(s.accesses, reference.stats.accesses);
        prop_assert_eq!(s.hits, reference.stats.hits);
        prop_assert_eq!(s.misses, reference.stats.misses);
        prop_assert_eq!(s.evictions, reference.stats.evictions);
        prop_assert_eq!(s.writebacks, reference.stats.writebacks);
        prop_assert_eq!(s.flushed_lines, reference.stats.flushed_lines);
        prop_assert_eq!(s.purges, reference.stats.purges);
        prop_assert_eq!(flat.resident_lines(), reference.resident_lines());
        prop_assert_eq!(flat.dirty_lines(), reference.dirty_lines());
    }

    /// `RouteIter` yields exactly the node and link sequences of the seed's
    /// materialising router, with matching hop counts, on random meshes.
    #[test]
    fn route_iter_matches_materialising_reference(
        w in 1usize..12,
        h in 1usize..12,
        src_raw in 0usize..144,
        dst_raw in 0usize..144,
        yx in any::<bool>(),
    ) {
        let m = MeshTopology::new(w, h);
        let src = NodeId(src_raw % m.nodes());
        let dst = NodeId(dst_raw % m.nodes());
        let alg = if yx { RoutingAlgorithm::YX } else { RoutingAlgorithm::XY };
        let expected = ref_route(&m, src, dst, alg);

        let iter = m.route_iter(src, dst, alg);
        prop_assert_eq!(iter.hops(), expected.len() - 1);
        prop_assert_eq!(iter.source(), src);
        prop_assert_eq!(iter.destination(), dst);
        prop_assert_eq!(iter.collect::<Vec<_>>(), expected.clone());
        let expected_links: Vec<(NodeId, NodeId)> =
            expected.windows(2).map(|p| (p[0], p[1])).collect();
        prop_assert_eq!(iter.links().collect::<Vec<_>>(), expected_links);

        // The materialised Route is itself built from the iterator; it must
        // agree with the reference too.
        let route = m.route(src, dst, alg);
        prop_assert_eq!(route.nodes(), &expected[..]);
        prop_assert_eq!(route.hops(), expected.len() - 1);
    }

    /// `contained_route` (now iterator-form) picks the same routing order the
    /// reference audit would: X-Y when the X-Y path stays inside the cluster,
    /// else Y-X when that one does, else an isolation error.
    #[test]
    fn contained_route_order_matches_reference_audit(
        secure_cores in 0usize..65,
        src_raw in 0usize..64,
        dst_raw in 0usize..64,
    ) {
        let m = MeshTopology::new(8, 8);
        let map = ClusterMap::row_major_split(m, secure_cores);
        let src = NodeId(src_raw);
        let dst = NodeId(dst_raw);
        let cluster = map.cluster_of(src);
        // Only intra-cluster pairs go through containment selection.
        if map.cluster_of(dst) == cluster {
            let contained = |alg| ref_route(&m, src, dst, alg)
                .iter()
                .all(|n| map.cluster_of(*n) == cluster);
            match map.contained_route(src, dst, cluster) {
                Ok(route) => {
                    if contained(RoutingAlgorithm::XY) {
                        prop_assert_eq!(route.algorithm(), RoutingAlgorithm::XY);
                    } else {
                        prop_assert!(contained(RoutingAlgorithm::YX));
                        prop_assert_eq!(route.algorithm(), RoutingAlgorithm::YX);
                    }
                    let nodes = ref_route(&m, src, dst, route.algorithm());
                    prop_assert_eq!(route.collect::<Vec<_>>(), nodes);
                }
                Err(violation) => {
                    prop_assert!(!contained(RoutingAlgorithm::XY));
                    prop_assert!(!contained(RoutingAlgorithm::YX));
                    prop_assert_eq!(violation.cluster, cluster);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Batched access engine vs the scalar reference path.
// ---------------------------------------------------------------------------

/// One step of the differential driver: either a run-encoded reference
/// burst on some core, or a maintenance operation interleaved between
/// bursts (the operations the execution architectures perform mid-stream).
#[derive(Debug, Clone)]
enum MachineOp {
    Run { core: usize, base: u64, stride: u64, len: u32, write: bool },
    PurgeCore(usize),
    PurgeSlices(usize),
    PurgeAll,
    PurgeNetwork,
    IpcMarker(bool),
    RestrictSlices(usize),
}

/// Decodes one sampled word into a driver step (the vendored proptest shim
/// has no tuple/oneof combinators, so structure is derived from plain
/// `u64`s). Strides exercise every engine path: the same line (0, sub-line
/// 8/24), line sweeps (64), line-skipping (96/160), page-boundary straddles,
/// whole pages (4096), larger-than-page jumps, and descending
/// (wrapping-negative) sweeps. Two run flavours interleave: wide-window
/// runs (capacity pressure, directory conflicts) and narrow-window "shared"
/// runs, whose dense same-line collisions across the four cores drive the
/// MESI read-shared / write-upgrade / invalidation transitions the
/// coherence layer must replay byte-identically in both engines.
fn decode_op(word: u64) -> MachineOp {
    const STRIDES: [u64; 11] =
        [0, 8, 24, 64, 96, 160, 2048, 4096, 12288, 0u64.wrapping_sub(64), 0u64.wrapping_sub(4096)];
    // Low bits pick the op class; runs are ~8x as likely as each
    // maintenance op.
    match word % 15 {
        0 => MachineOp::PurgeCore((word >> 8) as usize % 4),
        1 => MachineOp::PurgeSlices((word >> 8) as usize % 4),
        2 => MachineOp::PurgeNetwork,
        3 => MachineOp::IpcMarker((word >> 8).is_multiple_of(2)),
        4 => {
            let s = (word >> 8) as usize % 4;
            MachineOp::RestrictSlices(s)
        }
        5 => MachineOp::PurgeAll,
        // Tight sharing: a two-page window all four cores keep re-touching.
        6 | 7 => MachineOp::Run {
            core: (word >> 4) as usize % 4,
            base: 0x20_0000 + ((word >> 8) % 0x2000),
            stride: STRIDES[(word >> 24) as usize % STRIDES.len()],
            len: 1 + ((word >> 32) % 48) as u32,
            write: (word >> 40).is_multiple_of(2),
        },
        _ => MachineOp::Run {
            core: (word >> 4) as usize % 4,
            // Park descending runs high enough that they never wrap below
            // address zero.
            base: 0x20_0000 + ((word >> 8) % 0x8000),
            stride: STRIDES[(word >> 24) as usize % STRIDES.len()],
            len: 1 + ((word >> 32) % 96) as u32,
            write: (word >> 40).is_multiple_of(2),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `Machine::access_run` is byte-identical to issuing the decoded
    /// references through scalar `Machine::access`: per-run latency sums,
    /// per-access latency-trace samples, every machine counter and every
    /// per-process counter, across random run-encoded streams with
    /// purge/invalidate interleavings (incl. page straddles, stride 0 and
    /// descending runs).
    #[test]
    fn batched_engine_matches_scalar_reference(words in prop::collection::vec(any::<u64>(), 1..60)) {
        let ops: Vec<MachineOp> = words.iter().map(|w| decode_op(*w)).collect();
        let mut batched = Machine::new(MachineConfig::small_test());
        let mut scalar = Machine::new(MachineConfig::small_test());
        let pid_b = batched.create_process("p", SecurityClass::Secure);
        let pid_s = scalar.create_process("p", SecurityClass::Secure);
        batched.enable_latency_trace(4096);
        scalar.enable_latency_trace(4096);
        for (i, op) in ops.iter().enumerate() {
            match op {
                MachineOp::Run { core, base, stride, len, write } => {
                    let run = RefRun::new(*base, *stride, *len, *write);
                    let got = batched.access_run(NodeId(*core), pid_b, run);
                    let mut want = 0u64;
                    for r in run.iter() {
                        want += scalar.access(NodeId(*core), pid_s, r.vaddr, r.write);
                    }
                    prop_assert_eq!(got, want, "op #{i}: {:?}", op);
                    prop_assert_eq!(batched.last_path(), scalar.last_path(), "op #{i}");
                }
                MachineOp::PurgeCore(c) => {
                    prop_assert_eq!(batched.purge_core(NodeId(*c)), scalar.purge_core(NodeId(*c)));
                }
                MachineOp::PurgeSlices(s) => {
                    prop_assert_eq!(
                        batched.purge_slices(&[SliceId(*s)]),
                        scalar.purge_slices(&[SliceId(*s)])
                    );
                }
                MachineOp::PurgeAll => {
                    prop_assert_eq!(batched.purge_all_private(), scalar.purge_all_private());
                }
                MachineOp::PurgeNetwork => {
                    prop_assert_eq!(batched.purge_network(), scalar.purge_network());
                }
                MachineOp::IpcMarker(on) => {
                    batched.set_ipc_marker(*on);
                    scalar.set_ipc_marker(*on);
                }
                MachineOp::RestrictSlices(s) => {
                    prop_assert_eq!(
                        batched.set_process_slices(pid_b, &[SliceId(*s), SliceId(3 - *s)]),
                        scalar.set_process_slices(pid_s, &[SliceId(*s), SliceId(3 - *s)])
                    );
                }
            }
        }
        let trace_b: Vec<u64> = batched.latency_trace().unwrap().iter().collect();
        let trace_s: Vec<u64> = scalar.latency_trace().unwrap().iter().collect();
        prop_assert_eq!(trace_b, trace_s);
        prop_assert_eq!(
            format!("{:?}", batched.stats()),
            format!("{:?}", scalar.stats())
        );
        prop_assert_eq!(
            format!("{:?}", batched.process_stats(pid_b)),
            format!("{:?}", scalar.process_stats(pid_s))
        );
    }

    /// A `RefStream` round-trips: greedy RLE encoding of an arbitrary
    /// reference sequence decodes back to exactly that sequence, and
    /// `ref_range` slices agree with slicing the decoded sequence.
    #[test]
    fn ref_stream_roundtrip_and_slicing(
        words in prop::collection::vec(any::<u64>(), 1..200),
        cut in 0usize..210,
    ) {
        let refs: Vec<ironhide::ironhide_sim::stream::MemRef> = words
            .iter()
            .map(|w| ironhide::ironhide_sim::stream::MemRef {
                vaddr: (w % 0x4000) * 8,
                write: (w >> 20) % 2 == 0,
            })
            .collect();
        let stream = RefStream::from_refs(refs.iter().copied());
        prop_assert_eq!(stream.len(), refs.len());
        prop_assert_eq!(stream.iter().collect::<Vec<_>>(), refs.clone());
        let cut = cut.min(refs.len());
        let front: Vec<_> = stream
            .ref_range(0, cut as u64)
            .flat_map(|r| r.iter().collect::<Vec<_>>())
            .collect();
        let back: Vec<_> = stream
            .ref_range(cut as u64, refs.len() as u64)
            .flat_map(|r| r.iter().collect::<Vec<_>>())
            .collect();
        prop_assert_eq!(&front[..], &refs[..cut]);
        prop_assert_eq!(&back[..], &refs[cut..]);
    }
}

/// The private-page directory fast path must actually fire on a
/// sole-sharer revisit workload — one page (64 lines) re-swept through a
/// 16-line L1, so every sweep after the first re-misses lines the
/// directory still tracks as privately held — and stay byte-identical to
/// the scalar reference path, which never consumes slot hints.
#[test]
fn private_page_fast_path_fires_and_stays_byte_identical() {
    let mut batched = Machine::new(MachineConfig::small_test());
    let mut scalar = Machine::new(MachineConfig::small_test());
    let pid_b = batched.create_process("p", SecurityClass::Secure);
    let pid_s = scalar.create_process("p", SecurityClass::Secure);
    for round in 0..4u32 {
        // Alternate read and write sweeps: the fast path must replay both
        // the Modified (write) and the Shared→Exclusive re-grant (read)
        // transitions identically.
        let run = RefRun::new(0x40_0000, 64, 64, round % 2 == 0);
        let got = batched.access_run(NodeId(0), pid_b, run);
        let mut want = 0u64;
        for r in run.iter() {
            want += scalar.access(NodeId(0), pid_s, r.vaddr, r.write);
        }
        assert_eq!(got, want, "round {round} diverged");
    }
    let fast: u64 = (0..4).map(|s| batched.directory(SliceId(s)).fast_hits()).sum();
    assert!(fast > 0, "the private-page fast path never fired");
    let slow: u64 = (0..4).map(|s| scalar.directory(SliceId(s)).fast_hits()).sum();
    assert_eq!(slow, 0, "the scalar reference must stay unmemoised");
    assert_eq!(format!("{:?}", batched.stats()), format!("{:?}", scalar.stats()));
}

/// Stale one-off route-cache slots and directory slot hints must never
/// survive `reset_pristine` or any route-affecting mutation: a machine
/// that ran a full prelude — cluster isolation, IPC-marked traffic,
/// restricted homes, traffic from every core — and was then reset must
/// behave byte-identically to a never-used machine over an op sequence
/// that itself reconfigures routing mid-stream. This pins the
/// `BatchScratch` invariant that `rebind` deliberately does *not* clear
/// `oneoff`/`dir_slots`: their validity is epoch- respectively
/// structurally-keyed, not lifecycle-managed, so a reset that merely bumps
/// `route_epoch` must be indistinguishable from empty caches.
#[test]
fn stale_caches_never_survive_pristine_reset() {
    let topo = MeshTopology::new(2, 2);
    let mut warm = Machine::new(MachineConfig::small_test());
    let pid = warm.create_process("prelude", SecurityClass::Secure);
    warm.set_cluster_map(Some(ClusterMap::row_major_split(topo, 2)));
    warm.set_ipc_marker(true);
    warm.set_process_slices(pid, &[SliceId(1), SliceId(2)]);
    for core in 0..4 {
        warm.access_run(NodeId(core), pid, RefRun::new(0x30_0000, 64, 64, core % 2 == 0));
    }
    warm.reset_pristine();

    let mut fresh = Machine::new(MachineConfig::small_test());
    let pid_w = warm.create_process("p", SecurityClass::Secure);
    let pid_f = fresh.create_process("p", SecurityClass::Secure);
    warm.enable_latency_trace(4096);
    fresh.enable_latency_trace(4096);
    let sweep = |m: &mut Machine, pid| {
        let mut total = 0u64;
        for core in 0..4 {
            total += m.access_run(NodeId(core), pid, RefRun::new(0x30_0000, 64, 96, core >= 2));
        }
        total
    };
    assert_eq!(sweep(&mut warm, pid_w), sweep(&mut fresh, pid_f), "plain traffic");
    warm.set_cluster_map(Some(ClusterMap::row_major_split(topo, 2)));
    fresh.set_cluster_map(Some(ClusterMap::row_major_split(topo, 2)));
    assert_eq!(sweep(&mut warm, pid_w), sweep(&mut fresh, pid_f), "clustered traffic");
    warm.set_ipc_marker(true);
    fresh.set_ipc_marker(true);
    assert_eq!(sweep(&mut warm, pid_w), sweep(&mut fresh, pid_f), "IPC-marked traffic");
    warm.set_ipc_marker(false);
    fresh.set_ipc_marker(false);
    assert_eq!(
        warm.set_process_slices(pid_w, &[SliceId(0), SliceId(3)]),
        fresh.set_process_slices(pid_f, &[SliceId(0), SliceId(3)])
    );
    assert_eq!(sweep(&mut warm, pid_w), sweep(&mut fresh, pid_f), "rehomed traffic");
    warm.set_cluster_map(None);
    fresh.set_cluster_map(None);
    assert_eq!(sweep(&mut warm, pid_w), sweep(&mut fresh, pid_f), "de-clustered traffic");
    let trace_w: Vec<u64> = warm.latency_trace().unwrap().iter().collect();
    let trace_f: Vec<u64> = fresh.latency_trace().unwrap().iter().collect();
    assert_eq!(trace_w, trace_f);
    assert_eq!(format!("{:?}", warm.stats()), format!("{:?}", fresh.stats()));
}

/// The audit path never sees a cluster value disagree between the iterator
/// and materialised forms (plain test: a fixed interesting shape).
#[test]
fn split_row_cluster_still_rejected() {
    let m = MeshTopology::new(8, 8);
    let mut map = ClusterMap::row_major_split(m, 34);
    map.reassign(NodeId(38), ClusterId::Secure);
    // Same-row secure tiles separated by insecure tiles cannot be contained
    // by either deterministic order (see the seed's cluster tests).
    assert!(map.contained_route(NodeId(33), NodeId(38), ClusterId::Secure).is_err());
}

// ---------------------------------------------------------------------------
// Bulk recorder cycles: `write_cycle`/`rw_cycle` vs the scalar touch loop.
// Mirrors `read_cycle_matches_scalar_reads` in the recorder's unit tests,
// but from the package boundary and over the write-carrying variants the
// fast-path work added — the kept references (addresses AND write bits),
// the touch counts, and the surviving sampling phase must all match.
// ---------------------------------------------------------------------------

#[test]
fn write_cycle_matches_scalar_writes() {
    use ironhide::ironhide_workloads::{AccessRecorder, Region};

    let region = Region::new(0x9000, 8, 256);
    let indices = [5u64, 17, 250, 0, 63, 17];
    for (rate, cap, reps, pre) in
        [(1u64, usize::MAX, 37u64, 0u64), (4, usize::MAX, 53, 3), (2, 25, 90, 1), (9, 4, 11, 8)]
    {
        let mut bulk = AccessRecorder::new(rate, cap);
        let mut scalar = AccessRecorder::new(rate, cap);
        // Desynchronise the sampling phase with a few ordinary touches.
        for i in 0..pre {
            bulk.read(&region, i);
            scalar.read(&region, i);
        }
        bulk.write_cycle(&region, &indices, reps);
        for _ in 0..reps {
            for idx in indices {
                scalar.write(&region, idx);
            }
        }
        // Trailing touches prove the sampling phase survived the bulk call.
        for i in 0..7 {
            bulk.write(&region, 100 + i);
            scalar.write(&region, 100 + i);
        }
        assert_eq!(bulk.total_touches(), scalar.total_touches(), "rate {rate} cap {cap}");
        assert_eq!(
            bulk.take().iter().collect::<Vec<_>>(),
            scalar.take().iter().collect::<Vec<_>>(),
            "rate {rate} cap {cap} reps {reps}"
        );
    }
}

#[test]
fn rw_cycle_matches_interleaved_scalar_touches() {
    use ironhide::ironhide_workloads::{AccessRecorder, Region};

    let region = Region::new(0xA000, 4, 128);
    // A read-modify-write sweep: load, load, store per element triple.
    let pattern =
        [(2u64, false), (9, false), (9, true), (40, false), (40, true), (127, false), (0, true)];
    for (rate, cap, reps, pre) in
        [(1u64, usize::MAX, 29u64, 0u64), (3, usize::MAX, 44, 2), (5, 18, 77, 4), (7, 3, 10, 6)]
    {
        let mut bulk = AccessRecorder::new(rate, cap);
        let mut scalar = AccessRecorder::new(rate, cap);
        for i in 0..pre {
            bulk.write(&region, i);
            scalar.write(&region, i);
        }
        bulk.rw_cycle(&region, &pattern, reps);
        for _ in 0..reps {
            for (idx, write) in pattern {
                if write {
                    scalar.write(&region, idx);
                } else {
                    scalar.read(&region, idx);
                }
            }
        }
        for i in 0..5 {
            bulk.read(&region, 60 + i);
            scalar.read(&region, 60 + i);
        }
        assert_eq!(bulk.total_touches(), scalar.total_touches(), "rate {rate} cap {cap}");
        assert_eq!(
            bulk.take().iter().collect::<Vec<_>>(),
            scalar.take().iter().collect::<Vec<_>>(),
            "rate {rate} cap {cap} reps {reps}"
        );
    }
}
