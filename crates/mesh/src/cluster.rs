//! Cluster maps and network-level strong isolation.
//!
//! IRONHIDE partitions the tiles of the mesh into a *secure* and an
//! *insecure* cluster. Strong isolation at the network level requires that a
//! packet whose source and destination both belong to one cluster never
//! traverses a router belonging to the other cluster. [`ClusterMap`] owns the
//! tile-to-cluster assignment, selects a routing order that keeps each packet
//! contained, and audits routes for violations.

use std::fmt;

use crate::routing::{Route, RouteIter, RoutingAlgorithm};
use crate::topology::{MeshTopology, NodeId, NodeSet};

/// The two strongly isolated clusters formed by IRONHIDE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClusterId {
    /// The cluster executing attested, mutually trusting secure processes.
    Secure,
    /// The cluster executing ordinary (untrusted) processes and the OS.
    Insecure,
}

impl ClusterId {
    /// The other cluster.
    pub fn other(self) -> Self {
        match self {
            ClusterId::Secure => ClusterId::Insecure,
            ClusterId::Insecure => ClusterId::Secure,
        }
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterId::Secure => write!(f, "secure"),
            ClusterId::Insecure => write!(f, "insecure"),
        }
    }
}

/// A network-level strong-isolation violation detected while auditing a route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsolationViolation {
    /// Cluster that owns the packet.
    pub cluster: ClusterId,
    /// The foreign node the route would traverse.
    pub foreign_node: NodeId,
    /// Source of the offending route.
    pub src: NodeId,
    /// Destination of the offending route.
    pub dst: NodeId,
}

impl fmt::Display for IsolationViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "route {} -> {} owned by {} cluster traverses foreign node {}",
            self.src, self.dst, self.cluster, self.foreign_node
        )
    }
}

impl std::error::Error for IsolationViolation {}

/// Assignment of mesh tiles to the secure and insecure clusters.
///
/// The paper allocates whole rows of tiles to each cluster whenever possible
/// (so that plain X-Y routing already contains traffic) and falls back to
/// Y-X routing for the row that is split between the clusters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMap {
    topology: MeshTopology,
    /// Secure-cluster membership as a bitset: `cluster_of` sits on the
    /// per-packet audit path, so the test must be O(1).
    secure: NodeSet,
}

impl ClusterMap {
    /// Creates a cluster map with an explicit set of secure nodes; every other
    /// node belongs to the insecure cluster.
    pub fn new(topology: MeshTopology, secure: impl IntoIterator<Item = NodeId>) -> Self {
        let mut set = NodeSet::with_capacity(topology.nodes());
        for n in secure {
            assert!(n.0 < topology.nodes(), "secure node {n} out of range");
            set.insert(n);
        }
        ClusterMap { topology, secure: set }
    }

    /// Creates the paper's row-major split: the first `secure_cores` tiles (in
    /// row-major order, starting at row 0 next to the secure memory
    /// controllers) form the secure cluster and the rest form the insecure
    /// cluster.
    ///
    /// # Panics
    ///
    /// Panics if `secure_cores` exceeds the number of tiles.
    pub fn row_major_split(topology: MeshTopology, secure_cores: usize) -> Self {
        assert!(
            secure_cores <= topology.nodes(),
            "secure cluster of {secure_cores} cores exceeds {} tiles",
            topology.nodes()
        );
        ClusterMap::new(topology, (0..secure_cores).map(NodeId))
    }

    /// The topology this map partitions.
    pub fn topology(&self) -> &MeshTopology {
        &self.topology
    }

    /// The cluster a node belongs to.
    #[inline]
    pub fn cluster_of(&self, node: NodeId) -> ClusterId {
        if self.secure.contains(node) {
            ClusterId::Secure
        } else {
            ClusterId::Insecure
        }
    }

    /// Nodes of the given cluster, in ascending order.
    pub fn nodes_of(&self, cluster: ClusterId) -> Vec<NodeId> {
        self.nodes_iter(cluster).collect()
    }

    /// Borrowing form of [`ClusterMap::nodes_of`]: iterates the cluster's
    /// nodes in the same ascending order without materialising a `Vec`, so
    /// per-interaction membership queries stay allocation-free.
    pub fn nodes_iter(&self, cluster: ClusterId) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.iter_nodes().filter(move |n| self.cluster_of(*n) == cluster)
    }

    /// Number of tiles in the given cluster.
    pub fn size_of(&self, cluster: ClusterId) -> usize {
        match cluster {
            ClusterId::Secure => self.secure.len(),
            ClusterId::Insecure => self.topology.nodes() - self.secure.len(),
        }
    }

    /// Moves `node` into `cluster`, returning its previous cluster.
    pub fn reassign(&mut self, node: NodeId, cluster: ClusterId) -> ClusterId {
        assert!(node.0 < self.topology.nodes(), "node {node} out of range");
        let prev = self.cluster_of(node);
        match cluster {
            ClusterId::Secure => {
                self.secure.insert(node);
            }
            ClusterId::Insecure => {
                self.secure.remove(node);
            }
        }
        prev
    }

    /// Checks a materialised route for containment: a route owned by
    /// `cluster` must only traverse nodes of that cluster. Test/debug
    /// convenience; the hot path audits the iterator form via
    /// [`ClusterMap::audit_route_iter`].
    pub fn audit_route(&self, route: &Route, cluster: ClusterId) -> Result<(), IsolationViolation> {
        for n in route.nodes() {
            if self.cluster_of(*n) != cluster {
                return Err(IsolationViolation {
                    cluster,
                    foreign_node: *n,
                    src: route.source(),
                    dst: route.destination(),
                });
            }
        }
        Ok(())
    }

    /// Checks a lazily-stepped route for containment without materialising
    /// it. `RouteIter` is `Copy`, so auditing consumes a throwaway copy and
    /// the caller can still traverse the original.
    pub fn audit_route_iter(
        &self,
        route: RouteIter,
        cluster: ClusterId,
    ) -> Result<(), IsolationViolation> {
        let (src, dst) = (route.source(), route.destination());
        for n in route {
            if self.cluster_of(n) != cluster {
                return Err(IsolationViolation { cluster, foreign_node: n, src, dst });
            }
        }
        Ok(())
    }

    /// Selects a routing order for an intra-cluster packet from `src` to
    /// `dst`, preferring X-Y and falling back to Y-X (bidirectional routing),
    /// and returns the contained route in lazily-stepped form (materialise it
    /// with [`RouteIter::materialize`] when a node list is wanted).
    ///
    /// # Errors
    ///
    /// Returns an [`IsolationViolation`] if neither deterministic order keeps
    /// the packet inside its own cluster. The cluster manager treats this as a
    /// configuration error and refuses such a cluster shape.
    pub fn contained_route(
        &self,
        src: NodeId,
        dst: NodeId,
        cluster: ClusterId,
    ) -> Result<RouteIter, IsolationViolation> {
        let xy = self.topology.route_iter(src, dst, RoutingAlgorithm::XY);
        match self.audit_route_iter(xy, cluster) {
            Ok(()) => Ok(xy),
            Err(first) => {
                let yx = self.topology.route_iter(src, dst, RoutingAlgorithm::YX);
                self.audit_route_iter(yx, cluster).map(|()| yx).map_err(|_| first)
            }
        }
    }

    /// Checks whether *every* pair of nodes inside each cluster can reach each
    /// other without leaving the cluster under bidirectional deterministic
    /// routing. This is the admission check the secure kernel runs before
    /// activating a cluster configuration.
    pub fn verify_containment(&self) -> Result<(), IsolationViolation> {
        for cluster in [ClusterId::Secure, ClusterId::Insecure] {
            let nodes = self.nodes_of(cluster);
            for &a in &nodes {
                for &b in &nodes {
                    self.contained_route(a, b, cluster)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> MeshTopology {
        MeshTopology::new(8, 8)
    }

    #[test]
    fn row_major_split_sizes() {
        let map = ClusterMap::row_major_split(mesh(), 32);
        assert_eq!(map.size_of(ClusterId::Secure), 32);
        assert_eq!(map.size_of(ClusterId::Insecure), 32);
        assert_eq!(map.cluster_of(NodeId(0)), ClusterId::Secure);
        assert_eq!(map.cluster_of(NodeId(31)), ClusterId::Secure);
        assert_eq!(map.cluster_of(NodeId(32)), ClusterId::Insecure);
    }

    #[test]
    fn whole_row_clusters_contained_under_xy() {
        let map = ClusterMap::row_major_split(mesh(), 32);
        // Both endpoints in the secure cluster's rows 0..4: XY must work.
        let r = map.contained_route(NodeId(0), NodeId(27), ClusterId::Secure).unwrap();
        assert_eq!(r.algorithm(), RoutingAlgorithm::XY);
        map.verify_containment().unwrap();
    }

    #[test]
    fn split_row_requires_yx() {
        // Secure cluster = 34 tiles: rows 0..4 plus tiles 32,33 of row 4.
        let map = ClusterMap::row_major_split(mesh(), 34);
        // A packet from tile 33 (row 4, col 1) to tile 1 (row 0, col 1) is fine
        // with either order. A packet from tile 24 (row 3, col 0) to tile 33
        // (row 4, col 1) under XY goes along row 3 then down: contained. The
        // interesting case: from tile 33 (4,1) to tile 24 (3,0): XY goes west
        // through (4,0)=32 secure then north: contained. Take one that is not:
        // from tile 39 (row 4, col 7, insecure) to tile 63 under XY stays in
        // insecure rows. The split-row secure pair that XY would leak: from
        // tile 2 (0,2) to tile 33 (4,1): XY goes along row 0 to col 1 then
        // south through rows 1..4 all secure: contained. Construct a leak by
        // picking secure tiles in different columns of the split row.
        let mut map2 = map.clone();
        map2.reassign(NodeId(38), ClusterId::Secure); // (4,6)
                                                      // Route 33 -> 38 along row 4 under XY crosses insecure tiles 34..=37.
        let xy = mesh().route(NodeId(33), NodeId(38), RoutingAlgorithm::XY);
        assert!(map2.audit_route(&xy, ClusterId::Secure).is_err());
        // But those two tiles cannot be contained by YX either (same row), so
        // contained_route reports a violation; the kernel must reject it.
        assert!(map2.contained_route(NodeId(33), NodeId(38), ClusterId::Secure).is_err());
    }

    #[test]
    fn yx_rescues_column_aligned_split() {
        // Secure cluster: rows 0..4 plus the whole of column 0 of row 4..8.
        let mut secure: Vec<NodeId> = (0..32).map(NodeId).collect();
        secure.extend([32, 40, 48, 56].map(NodeId));
        let map = ClusterMap::new(mesh(), secure);
        // From tile 56 (7,0) to tile 5 (0,5): XY would go east along row 7
        // through insecure tiles; YX goes north along column 0 (all secure)
        // then east along row 0 (all secure).
        let r = map.contained_route(NodeId(56), NodeId(5), ClusterId::Secure).unwrap();
        assert_eq!(r.algorithm(), RoutingAlgorithm::YX);
    }

    #[test]
    fn audit_reports_foreign_node() {
        let map = ClusterMap::row_major_split(mesh(), 8);
        let route = mesh().route(NodeId(0), NodeId(63), RoutingAlgorithm::XY);
        let err = map.audit_route(&route, ClusterId::Secure).unwrap_err();
        assert_eq!(err.cluster, ClusterId::Secure);
        assert_eq!(map.cluster_of(err.foreign_node), ClusterId::Insecure);
        assert!(err.to_string().contains("foreign node"));
    }

    #[test]
    fn reassign_moves_nodes() {
        let mut map = ClusterMap::row_major_split(mesh(), 4);
        assert_eq!(map.reassign(NodeId(10), ClusterId::Secure), ClusterId::Insecure);
        assert_eq!(map.cluster_of(NodeId(10)), ClusterId::Secure);
        assert_eq!(map.size_of(ClusterId::Secure), 5);
        assert_eq!(map.reassign(NodeId(10), ClusterId::Insecure), ClusterId::Secure);
        assert_eq!(map.size_of(ClusterId::Secure), 4);
    }

    #[test]
    fn empty_secure_cluster_is_valid() {
        let map = ClusterMap::row_major_split(mesh(), 0);
        assert_eq!(map.size_of(ClusterId::Secure), 0);
        assert_eq!(map.size_of(ClusterId::Insecure), 64);
        map.verify_containment().unwrap();
    }

    #[test]
    fn cluster_other() {
        assert_eq!(ClusterId::Secure.other(), ClusterId::Insecure);
        assert_eq!(ClusterId::Insecure.other(), ClusterId::Secure);
    }
}
