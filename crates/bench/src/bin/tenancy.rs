//! Multi-tenant churn benchmark: per-tenant SLOs under admission control,
//! plus the reconfiguration-window verdict rows.
//!
//! The ROADMAP's multi-tenant scenario is a stream of tenants arriving at an
//! IRONHIDE machine, each wanting its own attested secure-cluster
//! allocation. This harness sweeps the {admission policy × load} tenancy
//! grid through `SweepRunner::run_tenancy` — a seed-deterministic open-loop
//! arrival process replayed under Deny / Queue / ShrinkNeighbours — and
//! reports each cell's conservation counts and exact-sample SLO tails
//! (p50/p99/p999 completion latency, reconfiguration-stall percentiles).
//!
//! Three in-process gates run before the report is written:
//!
//! 1. **Thread identity** — the tenancy matrix is serialised at 1, 2 and 8
//!    worker threads and must be byte-identical (the determinism contract
//!    every sweep in this workspace carries).
//! 2. **Storm baseline** — the BENCH_7 smoke reconfiguration storm is
//!    replayed and its stall-cycle checksum must equal the pinned value, so
//!    the tenancy numbers ride on a simulator whose reconfiguration
//!    semantics are byte-unchanged.
//! 3. **Window verdicts** — the reconfiguration-window covert channel must
//!    judge CLOSED (clean isolation audit) under the shipped purge ordering
//!    on MI6 and IRONHIDE, OPEN on the insecure baseline, and OPEN under the
//!    injected rehome-before-purge mis-ordering — the golden rows proving
//!    the stall sequence's purge ordering is what closes the window.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ironhide-bench --bin tenancy            # full grid
//! cargo run --release -p ironhide-bench --bin tenancy -- --smoke # CI smoke
//! cargo run --release -p ironhide-bench --bin tenancy -- --out path.json
//! ```

use std::time::Instant;

use ironhide_attacks::window::WindowAttack;
use ironhide_core::arch::Architecture;
use ironhide_core::attack::{AttackOutcome, ChannelVerdict};
use ironhide_core::cluster::{ClusterManager, PurgeOrder};
use ironhide_core::sweep::SweepRunner;
use ironhide_core::tenancy::{AdmissionPolicy, LoadPoint, StormConfig, TenancyGrid, TenancyMatrix};
use ironhide_mesh::{ClusterId, NodeId};
use ironhide_sim::config::MachineConfig;
use ironhide_sim::machine::Machine;
use ironhide_sim::process::{ProcessId, SecurityClass};
use ironhide_workloads::{tenant_profiles, AppId};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Master seed of the tenancy sweep (arbitrary but fixed forever: changing
/// it would make the SLO checksums incomparable across PRs).
const MASTER_SEED: u64 = 11;

/// Seed of the window-channel verdict rows (matches the module tests).
const WINDOW_SEED: u64 = 7;

/// Master seed of the embedded BENCH_7 storm replay (must stay the churn
/// bench's seed so the replayed checksum is the pinned value).
const STORM_SEED: u64 = 7;

/// The pinned BENCH_7 smoke-storm stall-cycle checksum. The tenancy numbers
/// are only reported if the replay still reproduces it byte-for-byte.
const STORM_STALL_CHECKSUM: u64 = 2778250;

/// Secure-cluster shapes of the storm replay (the churn bench's).
const SHAPES: [usize; 6] = [8, 16, 24, 32, 40, 56];

/// Thread counts the tenancy matrix must be byte-identical across.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0)
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_8.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: tenancy [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let label = if smoke { "smoke" } else { "full" };
    let grid = tenancy_grid(smoke);

    // Gate 1: the matrix must serialise byte-identically at every thread
    // count. The single-threaded pass is the canonical one reported.
    eprintln!(
        "tenancy: running {label} grid ({} cells) at {THREAD_COUNTS:?} threads...",
        grid.len()
    );
    let mut canonical: Option<(TenancyMatrix, String)> = None;
    let mut sweep_walls = Vec::with_capacity(THREAD_COUNTS.len());
    for threads in THREAD_COUNTS {
        let runner = SweepRunner::new(MachineConfig::paper_default())
            .with_threads(threads)
            .with_seed(MASTER_SEED);
        let start = Instant::now();
        let matrix = runner.run_tenancy(&grid).unwrap_or_else(|e| {
            eprintln!("tenancy: sweep failed: {e}");
            std::process::exit(1);
        });
        sweep_walls.push((threads, start.elapsed().as_secs_f64()));
        let json = matrix.to_json();
        match &canonical {
            None => canonical = Some((matrix, json)),
            Some((_, reference)) => {
                if *reference != json {
                    eprintln!("tenancy: DIVERGENCE — matrix at {threads} threads differs from 1");
                    std::process::exit(1);
                }
            }
        }
    }
    let (matrix, _) = canonical.expect("at least one thread count ran");

    // Gate 2: replay the BENCH_7 smoke storm and pin its stall checksum.
    eprintln!("tenancy: replaying the BENCH_7 smoke storm...");
    let (storm_checksum, storm_wall_s, storm_reconfigs) = replay_storm();
    if storm_checksum != STORM_STALL_CHECKSUM {
        eprintln!(
            "tenancy: DIVERGENCE — storm stall checksum {storm_checksum} != pinned {STORM_STALL_CHECKSUM}"
        );
        std::process::exit(1);
    }

    // Gate 3: the reconfiguration-window verdict rows.
    eprintln!("tenancy: judging the reconfiguration-window channel...");
    let verdicts = window_verdicts();
    for (expected, outcome) in &verdicts {
        if outcome.verdict != *expected {
            eprintln!(
                "tenancy: WINDOW VERDICT FAILURE — {} under {} judged {} (BER {}), expected {expected}",
                outcome.channel, outcome.arch, outcome.verdict, outcome.ber
            );
            std::process::exit(1);
        }
        if outcome.verdict == ChannelVerdict::Closed && !outcome.isolation.is_clean() {
            eprintln!(
                "tenancy: WINDOW AUDIT FAILURE — {} under {} closed but dirty: {:?}",
                outcome.channel, outcome.arch, outcome.isolation.violations
            );
            std::process::exit(1);
        }
    }

    let report =
        render_report(label, &matrix, &sweep_walls, storm_wall_s, storm_reconfigs, &verdicts);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("tenancy: wrote {out_path}");
    println!("{report}");
}

/// The {policy × load} grid: every admission policy against loads whose
/// tenant classes come from the paper's nine applications.
fn tenancy_grid(smoke: bool) -> TenancyGrid {
    let profiles = tenant_profiles(&AppId::ALL);
    let load = |label: &str, tenants: usize, interarrival: u64| {
        LoadPoint::new(
            label,
            StormConfig {
                tenants,
                mean_interarrival_cycles: interarrival,
                mean_service_scale: 1,
                host_reserve_cores: 8,
                profiles: profiles.clone(),
            },
        )
    };
    let mut grid = TenancyGrid::new();
    for policy in AdmissionPolicy::ALL {
        grid = grid.with_policy(policy);
    }
    if smoke {
        grid = grid.with_load(load("Smoke", 40, 30_000));
    } else {
        // Calm: arrivals mostly drain before the next tenant lands.
        // Storm: heavy overlap — admission control decides the tails.
        grid = grid.with_load(load("Calm", 120, 60_000));
        grid = grid.with_load(load("Storm", 240, 12_000));
    }
    grid
}

/// Replays the churn bench's smoke storm (batched path) and returns its
/// stall checksum plus throughput, pinning the tenancy run to a simulator
/// with byte-unchanged reconfiguration semantics.
fn replay_storm() -> (u64, f64, u64) {
    const RECONFIGS: u64 = 40;
    const WARM_PAGES: u64 = 64;
    let mut machine = Machine::new(MachineConfig::paper_default());
    machine.set_reconfig_reference(false);
    let secure = machine.create_process("tenant-secure", SecurityClass::Secure);
    let insecure = machine.create_process("tenant-insecure", SecurityClass::Insecure);
    let (mut manager, _) =
        ClusterManager::form(&mut machine, secure, insecure, SHAPES[3]).expect("initial clusters");
    warm(&mut machine, &manager, secure, insecure, 0, WARM_PAGES);

    let mut rng = StdRng::seed_from_u64(STORM_SEED);
    let mut current = SHAPES[3];
    let mut stall_checksum = 0u64;
    let mut stalled = std::time::Duration::ZERO;
    for i in 0..RECONFIGS {
        let idx = (rng.next_u64() % SHAPES.len() as u64) as usize;
        let mut target = SHAPES[idx];
        if target == current {
            target = SHAPES[(idx + 1) % SHAPES.len()];
        }
        let start = Instant::now();
        let cycles =
            manager.reconfigure(&mut machine, secure, insecure, target).expect("valid storm shape");
        stalled += start.elapsed();
        stall_checksum = stall_checksum.wrapping_add(cycles);
        current = target;
        warm(&mut machine, &manager, secure, insecure, (i + 1) * WARM_PAGES / 4, WARM_PAGES);
    }
    (stall_checksum, stalled.as_secs_f64(), RECONFIGS)
}

/// The churn bench's open-loop warm-up between reconfigurations.
fn warm(
    machine: &mut Machine,
    manager: &ClusterManager,
    secure: ProcessId,
    insecure: ProcessId,
    base: u64,
    pages: u64,
) {
    let secure_cores: Vec<NodeId> = manager.cores_iter(ClusterId::Secure).collect();
    let insecure_cores: Vec<NodeId> = manager.cores_iter(ClusterId::Insecure).collect();
    for p in base..base + pages {
        let vaddr = p * 4096;
        let sc = secure_cores[p as usize % secure_cores.len()];
        let ic = insecure_cores[p as usize % insecure_cores.len()];
        machine.access(sc, secure, vaddr, p % 3 == 0);
        machine.access(ic, insecure, vaddr, p % 3 == 1);
        machine.access(secure_cores[(p as usize + 1) % secure_cores.len()], secure, vaddr, false);
    }
}

/// The golden verdict rows: expected verdict paired with the measured
/// outcome for every (ordering, architecture) the claim covers.
fn window_verdicts() -> Vec<(ChannelVerdict, AttackOutcome)> {
    let config = MachineConfig::attack_testbench();
    let shipped = WindowAttack::new(config.clone(), PurgeOrder::PurgeThenRehome);
    let misordered = WindowAttack::new(config, PurgeOrder::RehomeThenPurge);
    let run = |attack: &WindowAttack, arch| {
        attack.assess(arch, WINDOW_SEED).unwrap_or_else(|e| {
            eprintln!("tenancy: window attack failed: {e}");
            std::process::exit(1);
        })
    };
    vec![
        (ChannelVerdict::Open, run(&shipped, Architecture::Insecure)),
        (ChannelVerdict::Closed, run(&shipped, Architecture::Mi6)),
        (ChannelVerdict::Closed, run(&shipped, Architecture::Ironhide)),
        (ChannelVerdict::Open, run(&misordered, Architecture::Ironhide)),
    ]
}

/// Renders the measurement as deterministic-layout JSON (timing fields vary
/// run to run; everything else, including every checksum, must not).
fn render_report(
    grid_label: &str,
    matrix: &TenancyMatrix,
    sweep_walls: &[(usize, f64)],
    storm_wall_s: f64,
    storm_reconfigs: u64,
    verdicts: &[(ChannelVerdict, AttackOutcome)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"tenant_churn\",\n");
    out.push_str(&format!("  \"grid\": \"{grid_label}\",\n"));
    out.push_str(&format!("  \"master_seed\": {MASTER_SEED},\n"));
    out.push_str(&format!("  \"tenancy_checksum\": {},\n", matrix.checksum()));
    out.push_str(&format!("  \"thread_counts_identical\": {THREAD_COUNTS:?},\n"));

    out.push_str("  \"cells\": [\n");
    for (i, cell) in matrix.cells.iter().enumerate() {
        let r = &cell.report;
        let sep = if i + 1 == matrix.cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"policy\": \"{}\", \"load\": \"{}\", \"arrived\": {}, \"admitted\": {}, \
             \"denied\": {}, \"queued\": {}, \"completion_p50_cycles\": {}, \
             \"completion_p99_cycles\": {}, \"completion_p999_cycles\": {}, \
             \"stall_p99_cycles\": {}, \"stall_max_cycles\": {}, \"reconfigurations\": {}, \
             \"slo_checksum\": {}}}{sep}\n",
            cell.key.policy.label(),
            cell.key.load,
            r.arrived,
            r.admitted,
            r.denied,
            r.queued,
            r.slo.completion_percentile(1, 2),
            r.slo.completion_percentile(99, 100),
            r.slo.completion_percentile(999, 1000),
            r.slo.stall_percentile(99, 100),
            r.slo.stall_max(),
            r.reconfigurations,
            r.slo.checksum(),
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"window_channel\": [\n");
    for (i, (expected, o)) in verdicts.iter().enumerate() {
        let sep = if i + 1 == verdicts.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"channel\": \"{}\", \"arch\": \"{}\", \"payload_bits\": {}, \
             \"bit_errors\": {}, \"ber\": {:.4}, \"verdict\": \"{}\", \"expected\": \"{expected}\", \
             \"isolation_clean\": {}}}{sep}\n",
            o.channel,
            o.arch,
            o.payload_bits,
            o.bit_errors,
            o.ber,
            o.verdict,
            o.isolation.is_clean(),
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"storm_replay\": {\n");
    out.push_str(&format!("    \"stall_cycle_checksum\": {STORM_STALL_CHECKSUM},\n"));
    out.push_str(&format!(
        "    \"reconfigs_per_sec\": {}\n",
        if storm_wall_s > 0.0 { (storm_reconfigs as f64 / storm_wall_s).round() as u64 } else { 0 }
    ));
    out.push_str("  },\n");

    out.push_str("  \"sweep_wall_seconds\": {\n");
    for (i, (threads, wall)) in sweep_walls.iter().enumerate() {
        let sep = if i + 1 == sweep_walls.len() { "" } else { "," };
        out.push_str(&format!("    \"{threads}\": {wall:.6}{sep}\n"));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"peak_rss_bytes\": {},\n", peak_rss_bytes()));
    out.push_str(&format!("  \"available_parallelism\": {}\n", available_parallelism()));
    out.push_str("}\n");
    out
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}
