//! # ironhide-bench
//!
//! The benchmark harness that regenerates the paper's figures. Each figure
//! has its own `harness = false` bench target that runs the relevant
//! experiment sweep and prints the same rows/series the paper reports:
//!
//! * `fig1_overview` — Figure 1(a): normalised geometric-mean completion time
//!   of SGX, MI6 and IRONHIDE relative to an insecure baseline.
//! * `fig6_completion_time` — Figure 6: per-application completion time broken
//!   into compute and enclave/purge overhead, plus the secure-cluster core
//!   counts and the user/OS/overall geometric means.
//! * `fig7_miss_rates` — Figure 7: private L1 and shared L2 miss rates under
//!   MI6 and IRONHIDE.
//! * `fig8_heuristic` — Figure 8: sensitivity of IRONHIDE to the core
//!   re-allocation decision (Heuristic, Optimal, fixed ±x% variations).
//! * `ablation_isolation` — ablations of IRONHIDE's design choices (static vs.
//!   dynamic hardware isolation).
//! * `micro_primitives` — Criterion microbenchmarks of the purge and IPC
//!   primitives backing the per-event costs quoted in Section V.
//!
//! This library crate holds the shared sweep/reporting helpers.

use ironhide_core::arch::{ArchParams, Architecture};
use ironhide_core::realloc::ReallocPolicy;
use ironhide_core::runner::{CompletionReport, ExperimentRunner};
use ironhide_sim::config::MachineConfig;
use ironhide_workloads::app::{AppId, ScaleFactor};

// The single definition lives in the sweep harness; re-exported here so the
// figure benches keep their historical `ironhide_bench::geometric_mean` path.
pub use ironhide_core::sweep::geometric_mean;

/// The experiment sweep configuration shared by the figure benches.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// Machine to simulate.
    pub machine: MachineConfig,
    /// Architecture parameters.
    pub params: ArchParams,
    /// Application scale.
    pub scale: ScaleFactor,
}

impl Default for Sweep {
    fn default() -> Self {
        Sweep {
            machine: MachineConfig::paper_default(),
            params: ArchParams::default(),
            scale: ScaleFactor::Paper,
        }
    }
}

impl Sweep {
    /// A fast sweep for smoke-testing the harness.
    pub fn smoke() -> Self {
        Sweep { scale: ScaleFactor::Smoke, ..Sweep::default() }
    }

    /// Runs one application under one architecture with the given
    /// re-allocation policy.
    pub fn run_one(
        &self,
        app: AppId,
        arch: Architecture,
        policy: ReallocPolicy,
    ) -> CompletionReport {
        let runner = ExperimentRunner::new(self.machine.clone())
            .with_params(self.params)
            .with_realloc(policy);
        let mut instance = app.instantiate(&self.scale);
        runner
            .run(arch, instance.as_mut())
            .unwrap_or_else(|e| panic!("{} under {arch} failed: {e}", app.label()))
    }

    /// Runs every application under `arch`, returning reports in
    /// [`AppId::ALL`] order.
    pub fn run_all(&self, arch: Architecture, policy: ReallocPolicy) -> Vec<CompletionReport> {
        AppId::ALL.iter().map(|app| self.run_one(*app, arch, policy)).collect()
    }
}

/// Prints a markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table header with a separator line.
pub fn print_header(cells: &[&str]) {
    print_row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("|{}|", cells.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn smoke_sweep_runs_one_app() {
        let sweep = Sweep::smoke();
        let report =
            sweep.run_one(AppId::QueryAes, Architecture::SgxLike, ReallocPolicy::Heuristic);
        assert!(report.total_cycles > 0);
        assert!(report.isolation.is_clean());
    }
}
