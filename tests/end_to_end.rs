//! Cross-crate integration tests: whole applications running on the full
//! machine under every architecture, checking the orderings the paper's
//! argument rests on.

use ironhide::prelude::*;

fn runner() -> ExperimentRunner {
    let params =
        ArchParams { warmup_interactions: 2, predictor_sample: 3, ..ArchParams::default() };
    ExperimentRunner::new(MachineConfig::paper_default()).with_params(params)
}

#[test]
fn every_application_runs_under_every_architecture() {
    let runner = runner().with_realloc(ReallocPolicy::Static);
    for app_id in [AppId::QueryAes, AppId::MemcachedOs, AppId::PrGraph] {
        for arch in Architecture::ALL {
            let mut app = app_id.instantiate(&ScaleFactor::Smoke);
            let report = runner.run(arch, app.as_mut()).unwrap();
            assert!(report.total_cycles > 0, "{} under {arch} produced no work", app_id.label());
            assert_eq!(report.interactions, app.interactions() as u64);
            assert!(
                report.isolation.is_clean(),
                "{} under {arch} violated isolation: {:?}",
                app_id.label(),
                report.isolation.violations
            );
        }
    }
}

#[test]
fn security_cost_ordering_holds_for_os_interactive_apps() {
    let runner = runner().with_realloc(ReallocPolicy::Static);
    let mut insecure_app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);
    let mut sgx_app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);
    let mut mi6_app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);
    let mut ih_app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);

    let insecure = runner.run(Architecture::Insecure, insecure_app.as_mut()).unwrap();
    let sgx = runner.run(Architecture::SgxLike, sgx_app.as_mut()).unwrap();
    let mi6 = runner.run(Architecture::Mi6, mi6_app.as_mut()).unwrap();
    let ih = runner.run(Architecture::Ironhide, ih_app.as_mut()).unwrap();

    assert!(sgx.total_cycles > insecure.total_cycles);
    assert!(mi6.total_cycles > sgx.total_cycles);
    assert!(ih.total_cycles < mi6.total_cycles, "IRONHIDE must beat MI6 on OS-interactive apps");
    assert!(ih.total_cycles < sgx.total_cycles, "IRONHIDE must beat SGX on OS-interactive apps");
    assert_eq!(ih.overhead_cycles, 0);
    assert!(mi6.overhead_cycles > 0);
}

#[test]
fn mi6_inflates_l1_miss_rate_relative_to_ironhide() {
    let runner = runner().with_realloc(ReallocPolicy::Static);
    let mut mi6_app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
    let mut ih_app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
    let mi6 = runner.run(Architecture::Mi6, mi6_app.as_mut()).unwrap();
    let ih = runner.run(Architecture::Ironhide, ih_app.as_mut()).unwrap();
    assert!(
        mi6.l1_miss_rate > ih.l1_miss_rate,
        "purging every interaction must thrash the L1 (MI6 {:.3} vs IRONHIDE {:.3})",
        mi6.l1_miss_rate,
        ih.l1_miss_rate
    );
}

#[test]
fn heuristic_gives_triangle_counting_a_small_secure_cluster() {
    let params = ArchParams { warmup_interactions: 1, ..ArchParams::default() };
    let runner = ExperimentRunner::new(MachineConfig::paper_default()).with_params(params);
    let mut app = AppId::TcGraph.instantiate(&ScaleFactor::Smoke);
    let report = runner.run(Architecture::Ironhide, app.as_mut()).unwrap();
    assert!(
        report.secure_cores <= 16,
        "TC is synchronisation bound; the predictor gave it {} cores",
        report.secure_cores
    );
    assert!(report.secure_cores >= 1);
}

#[test]
fn reports_are_reproducible_for_a_fixed_configuration() {
    let runner = runner().with_realloc(ReallocPolicy::Static);
    let mut a = AppId::LighttpdOs.instantiate(&ScaleFactor::Smoke);
    let mut b = AppId::LighttpdOs.instantiate(&ScaleFactor::Smoke);
    let ra = runner.run(Architecture::Mi6, a.as_mut()).unwrap();
    let rb = runner.run(Architecture::Mi6, b.as_mut()).unwrap();
    assert_eq!(ra.total_cycles, rb.total_cycles, "the simulation must be deterministic");
    assert_eq!(ra.l1_miss_rate, rb.l1_miss_rate);
}
