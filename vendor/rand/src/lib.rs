//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! mirror, so the workspace vendors the *small* slice of the `rand` 0.8 API
//! that the IRONHIDE workloads actually use: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] and [`Rng::gen_range`].
//!
//! The generator is deliberately simple — [xoshiro256\*\*] seeded through
//! SplitMix64, the same construction the reference implementation recommends.
//! It is deterministic, fast and statistically strong enough for synthetic
//! workload generation; it makes no attempt to be cryptographically secure or
//! to produce the same streams as the real `rand::rngs::StdRng` (the
//! workloads only rely on *determinism*, not on specific values).
//!
//! [xoshiro256\*\*]: https://prng.di.unimi.it/

use std::ops::{Range, RangeInclusive};

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain (the `rand`
/// `Standard` distribution).
pub trait SampleStandard {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Types that can be sampled uniformly from a half-open or inclusive range.
pub trait SampleUniform: Sized {
    /// Draws one value in `[low, high)` (or `[low, high]` when `inclusive`).
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Decomposes the range into `(low, high, inclusive)`.
    fn bounds(self) -> (T, T, bool);
}

impl<T> SampleRange<T> for Range<T> {
    fn bounds(self) -> (T, T, bool) {
        (self.start, self.end, false)
    }
}

impl<T: Copy> SampleRange<T> for RangeInclusive<T> {
    fn bounds(self) -> (T, T, bool) {
        (*self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let (low, high, inclusive) = range.bounds();
        T::sample_uniform(self, low, high, inclusive)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

macro_rules! impl_int_sampling {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                // Work in u64 offsets from `low` so signed types are handled
                // uniformly; modulo reduction is fine for a test-data shim.
                let span = (high as i128) - (low as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                let offset = (rng.next_u64() as u128 % span as u128) as i128;
                ((low as i128) + offset) as $t
            }
        }
    )*};
}

impl_int_sampling!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        low + f64::sample_standard(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        low + f32::sample_standard(rng) * (high - low)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic xoshiro256\*\* generator seeded through SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; the name is kept so call sites
    /// compile unchanged against this shim.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-30..30);
            assert!((-30..30).contains(&w));
            let x: u64 = rng.gen_range(5..=5);
            assert_eq!(x, 5);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let g: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&g));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }
}
