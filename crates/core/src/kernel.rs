//! The light-weight secure kernel.
//!
//! IRONHIDE (like MI6's security monitor) relies on a small trusted kernel
//! that executes inside the secure cluster. Its jobs in the paper are to
//! (1) attest and authenticate secure processes before they are admitted to
//! the secure cluster, (2) track which secure processes are mutually trusting
//! (same interactive application) versus mutually distrusting (different
//! applications, which must be separated by a purge when they time-share the
//! secure cluster), and (3) orchestrate cluster reconfiguration.

use std::collections::HashMap;
use std::fmt;

use ironhide_sim::process::ProcessId;

/// A measurement (hash) of a process image, as produced by attestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement(pub u64);

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifier of an interactive application (trust domain). Secure processes
/// of the same application are mutually trusting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AppDomain(pub u64);

/// The trust relation between two secure processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustRelation {
    /// Same interactive application: may co-execute in the secure cluster
    /// without purging between them.
    MutuallyTrusting,
    /// Different applications: the secure cluster's per-core state must be
    /// purged when switching between them.
    MutuallyDistrusting,
}

/// Errors returned by the secure kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttestationError {
    /// The supplied signature does not match the process image.
    BadSignature {
        /// The process that failed attestation.
        pid: ProcessId,
    },
    /// The process was never registered with the kernel.
    Unknown {
        /// The unknown process.
        pid: ProcessId,
    },
    /// The process is registered but its current measurement no longer
    /// matches the one recorded at registration.
    MeasurementMismatch {
        /// The process whose measurement changed.
        pid: ProcessId,
        /// Measurement recorded at registration time.
        expected: Measurement,
        /// Measurement presented now.
        found: Measurement,
    },
}

impl fmt::Display for AttestationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestationError::BadSignature { pid } => {
                write!(f, "signature check failed for {pid}")
            }
            AttestationError::Unknown { pid } => write!(f, "{pid} was never attested"),
            AttestationError::MeasurementMismatch { pid, expected, found } => {
                write!(f, "measurement of {pid} changed (expected {expected}, found {found})")
            }
        }
    }
}

impl std::error::Error for AttestationError {}

/// The secure kernel: attestation registry and trust-domain tracking.
#[derive(Debug, Clone, Default)]
pub struct SecureKernel {
    registry: HashMap<ProcessId, (Measurement, AppDomain)>,
    admitted: Vec<ProcessId>,
}

impl SecureKernel {
    /// Creates a kernel with an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures a process image. The reproduction uses a 64-bit FNV-1a hash:
    /// there is no hardware root of trust to anchor a real SHA-2 measurement
    /// chain in a simulation, and only equality of measurements matters for
    /// the execution model.
    pub fn measure(image: &[u8]) -> Measurement {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in image {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Measurement(h)
    }

    /// Signs an image with the enclave author's key. The simulated signature
    /// is the measurement XOR-folded with the key.
    pub fn sign(image: &[u8], key: u64) -> u64 {
        Self::measure(image).0 ^ key.rotate_left(17)
    }

    /// Registers a secure process: verifies the author signature, records the
    /// measurement, and assigns the process to its application trust domain.
    ///
    /// # Errors
    ///
    /// Returns [`AttestationError::BadSignature`] if the signature does not
    /// verify against the image.
    pub fn register(
        &mut self,
        pid: ProcessId,
        image: &[u8],
        signature: u64,
        key: u64,
        domain: AppDomain,
    ) -> Result<Measurement, AttestationError> {
        let expected = Self::sign(image, key);
        if signature != expected {
            return Err(AttestationError::BadSignature { pid });
        }
        let m = Self::measure(image);
        self.registry.insert(pid, (m, domain));
        Ok(m)
    }

    /// Re-verifies a process before admitting it to the secure cluster.
    ///
    /// # Errors
    ///
    /// Returns an error if the process is unknown or its measurement changed.
    pub fn admit(&mut self, pid: ProcessId, image: &[u8]) -> Result<(), AttestationError> {
        let (expected, _) = self.registry.get(&pid).ok_or(AttestationError::Unknown { pid })?;
        let found = Self::measure(image);
        if found != *expected {
            return Err(AttestationError::MeasurementMismatch { pid, expected: *expected, found });
        }
        if !self.admitted.contains(&pid) {
            self.admitted.push(pid);
        }
        Ok(())
    }

    /// Whether `pid` has been admitted to the secure cluster.
    pub fn is_admitted(&self, pid: ProcessId) -> bool {
        self.admitted.contains(&pid)
    }

    /// The recorded measurement of `pid`, if registered.
    pub fn measurement_of(&self, pid: ProcessId) -> Option<Measurement> {
        self.registry.get(&pid).map(|(m, _)| *m)
    }

    /// The trust relation between two registered secure processes.
    ///
    /// # Errors
    ///
    /// Returns [`AttestationError::Unknown`] if either process is not
    /// registered.
    pub fn trust_relation(
        &self,
        a: ProcessId,
        b: ProcessId,
    ) -> Result<TrustRelation, AttestationError> {
        let (_, da) = self.registry.get(&a).ok_or(AttestationError::Unknown { pid: a })?;
        let (_, db) = self.registry.get(&b).ok_or(AttestationError::Unknown { pid: b })?;
        Ok(if da == db {
            TrustRelation::MutuallyTrusting
        } else {
            TrustRelation::MutuallyDistrusting
        })
    }

    /// Whether a context switch between the two secure processes requires the
    /// secure cluster's per-core state to be purged first.
    pub fn requires_purge_between(&self, a: ProcessId, b: ProcessId) -> bool {
        matches!(self.trust_relation(a, b), Ok(TrustRelation::MutuallyDistrusting))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: u64 = 0xDEAD_BEEF_0042;

    #[test]
    fn measurement_is_deterministic_and_collision_resistant_enough() {
        let a = SecureKernel::measure(b"aes-256 enclave image");
        let b = SecureKernel::measure(b"aes-256 enclave image");
        let c = SecureKernel::measure(b"pagerank enclave image");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn register_and_admit() {
        let mut k = SecureKernel::new();
        let img = b"sssp image";
        let sig = SecureKernel::sign(img, KEY);
        let m = k.register(ProcessId(1), img, sig, KEY, AppDomain(7)).unwrap();
        assert_eq!(k.measurement_of(ProcessId(1)), Some(m));
        assert!(!k.is_admitted(ProcessId(1)));
        k.admit(ProcessId(1), img).unwrap();
        assert!(k.is_admitted(ProcessId(1)));
    }

    #[test]
    fn bad_signature_rejected() {
        let mut k = SecureKernel::new();
        let err = k.register(ProcessId(2), b"img", 0x1234, KEY, AppDomain(1)).unwrap_err();
        assert!(matches!(err, AttestationError::BadSignature { .. }));
    }

    #[test]
    fn tampered_image_rejected_at_admission() {
        let mut k = SecureKernel::new();
        let img = b"original";
        let sig = SecureKernel::sign(img, KEY);
        k.register(ProcessId(3), img, sig, KEY, AppDomain(1)).unwrap();
        let err = k.admit(ProcessId(3), b"tampered").unwrap_err();
        assert!(matches!(err, AttestationError::MeasurementMismatch { .. }));
        assert!(!k.is_admitted(ProcessId(3)));
    }

    #[test]
    fn unknown_process_cannot_be_admitted() {
        let mut k = SecureKernel::new();
        assert!(matches!(k.admit(ProcessId(9), b"x"), Err(AttestationError::Unknown { .. })));
    }

    #[test]
    fn trust_relations_follow_app_domains() {
        let mut k = SecureKernel::new();
        for (pid, domain) in [(1usize, 10u64), (2, 10), (3, 11)] {
            let img = format!("proc{pid}");
            let sig = SecureKernel::sign(img.as_bytes(), KEY);
            k.register(ProcessId(pid), img.as_bytes(), sig, KEY, AppDomain(domain)).unwrap();
        }
        assert_eq!(
            k.trust_relation(ProcessId(1), ProcessId(2)).unwrap(),
            TrustRelation::MutuallyTrusting
        );
        assert_eq!(
            k.trust_relation(ProcessId(1), ProcessId(3)).unwrap(),
            TrustRelation::MutuallyDistrusting
        );
        assert!(!k.requires_purge_between(ProcessId(1), ProcessId(2)));
        assert!(k.requires_purge_between(ProcessId(2), ProcessId(3)));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = AttestationError::Unknown { pid: ProcessId(4) };
        assert!(e.to_string().contains("pid4"));
    }
}
