//! The hardware range check against speculative microarchitecture state
//! attacks, adopted from MI6.
//!
//! A Spectre-class attack needs the victim to *speculatively* touch secure
//! data and then transmit it through a shared structure. MI6 (and IRONHIDE)
//! block the first step in hardware: every memory access issued by an
//! insecure process is checked against the physical ranges of the secure
//! DRAM regions. A speculative access that targets a secure region is stalled
//! until it resolves; if it turns out to be on the speculative path it is
//! discarded, and if it commits it is trapped by the protection fault handler.
//! Either way no secure cache/DRAM state is disturbed and no performance is
//! lost on the common path.

use ironhide_mem::{RegionMap, RegionOwner};
use ironhide_sim::process::SecurityClass;

/// What the hardware check decided for one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecCheckOutcome {
    /// The access targets memory its issuer may touch; it proceeds normally.
    Allowed,
    /// The access was issued by an insecure process but targets a secure
    /// DRAM region: it is stalled until resolution and then discarded
    /// (speculative) or trapped (non-speculative). It never reaches the
    /// memory system.
    StalledAndDiscarded,
}

impl SpecCheckOutcome {
    /// Whether the access is allowed to proceed.
    pub fn allowed(self) -> bool {
        matches!(self, SpecCheckOutcome::Allowed)
    }
}

/// The per-core hardware check.
#[derive(Debug, Clone, Default)]
pub struct SpeculativeAccessCheck {
    checks: u64,
    blocked: u64,
}

impl SpeculativeAccessCheck {
    /// Creates a check with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accesses checked.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Number of accesses stalled and discarded.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }

    /// Checks one physical access issued by a process of class `issuer`.
    pub fn check(
        &mut self,
        regions: &RegionMap,
        issuer: SecurityClass,
        paddr: u64,
    ) -> SpecCheckOutcome {
        self.check_run(regions, issuer, paddr, 1)
    }

    /// Checks a run of `count` physical accesses that all fall in the DRAM
    /// region containing `paddr` (DRAM regions are page-multiples, so every
    /// reference of a page-run shares one region and one verdict). The
    /// hardware performs the range check per access; this batches only the
    /// counter updates, so `count` scalar [`SpeculativeAccessCheck::check`]
    /// calls with addresses in the region produce identical counters.
    pub fn check_run(
        &mut self,
        regions: &RegionMap,
        issuer: SecurityClass,
        paddr: u64,
        count: u64,
    ) -> SpecCheckOutcome {
        self.checks += count;
        let owner = regions.owner_of(paddr).ok();
        let violation = issuer == SecurityClass::Insecure && owner == Some(RegionOwner::Secure);
        if violation {
            self.blocked += count;
            SpecCheckOutcome::StalledAndDiscarded
        } else {
            SpecCheckOutcome::Allowed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regions() -> RegionMap {
        // Two controllers, 4 KB regions: secure at 0x0000 and 0x2000,
        // insecure at 0x1000 and 0x3000.
        RegionMap::paper_layout(2, 0x1000)
    }

    #[test]
    fn insecure_access_to_secure_region_is_blocked() {
        let mut chk = SpeculativeAccessCheck::new();
        let out = chk.check(&regions(), SecurityClass::Insecure, 0x0800);
        assert_eq!(out, SpecCheckOutcome::StalledAndDiscarded);
        assert!(!out.allowed());
        assert_eq!(chk.blocked(), 1);
    }

    #[test]
    fn insecure_access_to_insecure_region_is_allowed() {
        let mut chk = SpeculativeAccessCheck::new();
        assert!(chk.check(&regions(), SecurityClass::Insecure, 0x1800).allowed());
        assert_eq!(chk.blocked(), 0);
    }

    #[test]
    fn secure_access_anywhere_is_allowed() {
        let mut chk = SpeculativeAccessCheck::new();
        assert!(chk.check(&regions(), SecurityClass::Secure, 0x0800).allowed());
        assert!(chk.check(&regions(), SecurityClass::Secure, 0x1800).allowed());
        assert_eq!(chk.checks(), 2);
        assert_eq!(chk.blocked(), 0);
    }

    #[test]
    fn unmapped_addresses_are_not_treated_as_secure() {
        let mut chk = SpeculativeAccessCheck::new();
        assert!(chk.check(&regions(), SecurityClass::Insecure, 0xFFFF_0000).allowed());
    }

    #[test]
    fn counters_accumulate() {
        let mut chk = SpeculativeAccessCheck::new();
        for addr in [0x0000u64, 0x0800, 0x1000, 0x2800] {
            chk.check(&regions(), SecurityClass::Insecure, addr);
        }
        assert_eq!(chk.checks(), 4);
        assert_eq!(chk.blocked(), 3);
    }
}
