//! Deterministic dimension-ordered routing (X-Y and Y-X).

use crate::topology::{Coord, MeshTopology, NodeId};

/// The deterministic routing function used for a packet.
///
/// The paper's prototype uses X-Y routing by default; IRONHIDE additionally
/// requires Y-X routing ("bidirectional routing") so that clusters whose
/// boundary cuts through a mesh row can still contain their own traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingAlgorithm {
    /// Route fully along the X dimension first, then along Y.
    #[default]
    XY,
    /// Route fully along the Y dimension first, then along X.
    YX,
}

impl RoutingAlgorithm {
    /// The complementary routing order.
    pub fn complement(self) -> Self {
        match self {
            RoutingAlgorithm::XY => RoutingAlgorithm::YX,
            RoutingAlgorithm::YX => RoutingAlgorithm::XY,
        }
    }
}

/// A fully materialised deterministic route: the ordered list of nodes a
/// packet traverses, including the source and the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    nodes: Vec<NodeId>,
    algorithm: RoutingAlgorithm,
}

impl Route {
    /// All nodes traversed, source first and destination last.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The routing function that produced this route.
    pub fn algorithm(&self) -> RoutingAlgorithm {
        self.algorithm
    }

    /// Number of links traversed (0 for a route from a node to itself).
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("route always has a source")
    }

    /// Destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("route always has a destination")
    }

    /// Iterates over the links `(from, to)` of the route in traversal order.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }
}

impl MeshTopology {
    /// Computes the deterministic route from `src` to `dst` under `algorithm`.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn route(&self, src: NodeId, dst: NodeId, algorithm: RoutingAlgorithm) -> Route {
        let s = self.coord(src);
        let d = self.coord(dst);
        let mut nodes = Vec::with_capacity(s.manhattan(d) + 1);
        nodes.push(src);
        let mut cur = s;
        let step = |cur: &mut Coord, nodes: &mut Vec<NodeId>, dim_x: bool, target: usize| loop {
            let v = if dim_x { cur.x } else { cur.y };
            if v == target {
                break;
            }
            let next = if v < target { v + 1 } else { v - 1 };
            if dim_x {
                cur.x = next;
            } else {
                cur.y = next;
            }
            nodes.push(self.node_at(*cur));
        };
        match algorithm {
            RoutingAlgorithm::XY => {
                step(&mut cur, &mut nodes, true, d.x);
                step(&mut cur, &mut nodes, false, d.y);
            }
            RoutingAlgorithm::YX => {
                step(&mut cur, &mut nodes, false, d.y);
                step(&mut cur, &mut nodes, true, d.x);
            }
        }
        Route { nodes, algorithm }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_goes_x_first() {
        let m = MeshTopology::new(8, 8);
        // From (0,0) to (2,2): XY visits (1,0),(2,0),(2,1),(2,2).
        let r = m.route(NodeId(0), NodeId(18), RoutingAlgorithm::XY);
        assert_eq!(r.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(10), NodeId(18)]);
        assert_eq!(r.hops(), 4);
    }

    #[test]
    fn yx_route_goes_y_first() {
        let m = MeshTopology::new(8, 8);
        let r = m.route(NodeId(0), NodeId(18), RoutingAlgorithm::YX);
        assert_eq!(r.nodes(), &[NodeId(0), NodeId(8), NodeId(16), NodeId(17), NodeId(18)]);
    }

    #[test]
    fn route_to_self_has_no_hops() {
        let m = MeshTopology::new(4, 4);
        let r = m.route(NodeId(5), NodeId(5), RoutingAlgorithm::XY);
        assert_eq!(r.hops(), 0);
        assert_eq!(r.source(), r.destination());
    }

    #[test]
    fn hops_equal_manhattan_distance() {
        let m = MeshTopology::new(8, 8);
        for a in [0usize, 7, 21, 42, 63] {
            for b in [0usize, 9, 35, 63] {
                for alg in [RoutingAlgorithm::XY, RoutingAlgorithm::YX] {
                    let r = m.route(NodeId(a), NodeId(b), alg);
                    assert_eq!(r.hops(), m.distance(NodeId(a), NodeId(b)));
                    assert_eq!(r.source(), NodeId(a));
                    assert_eq!(r.destination(), NodeId(b));
                }
            }
        }
    }

    #[test]
    fn links_are_adjacent() {
        let m = MeshTopology::new(8, 8);
        let r = m.route(NodeId(3), NodeId(60), RoutingAlgorithm::YX);
        for (a, b) in r.links() {
            assert_eq!(m.distance(a, b), 1, "link {a}->{b} must join neighbours");
        }
    }

    #[test]
    fn complement_flips() {
        assert_eq!(RoutingAlgorithm::XY.complement(), RoutingAlgorithm::YX);
        assert_eq!(RoutingAlgorithm::YX.complement(), RoutingAlgorithm::XY);
    }

    #[test]
    fn same_row_routes_identical_under_both_orders() {
        let m = MeshTopology::new(8, 8);
        let xy = m.route(NodeId(8), NodeId(15), RoutingAlgorithm::XY);
        let yx = m.route(NodeId(8), NodeId(15), RoutingAlgorithm::YX);
        assert_eq!(xy.nodes(), yx.nodes());
    }
}
