//! The interactive-application abstraction.
//!
//! Every benchmark in the paper is an *interactive application*: one insecure
//! process (a data/request generator or the untrusted OS) and one secure
//! process (the security-critical computation) that exchange data through the
//! shared IPC buffer. The workloads crate implements this trait for the nine
//! applications of Section IV-B; the experiment runner only sees this
//! interface.

use ironhide_sim::process::SecurityClass;

/// The memory-reference vocabulary shared with the simulator: one reference,
/// one arithmetic run, and the run-length-encoded stream the machine's
/// batched engine consumes. Defined in `ironhide-sim` (the machine is the
/// consumer); re-exported here because applications are the producers.
pub use ironhide_sim::stream::{MemRef, RefRun, RefStream};

/// The work one process performs during one interaction: a run-encoded
/// stream of memory references (recorded from the real kernel
/// implementations in the workloads crate) plus the non-memory compute
/// cycles that accompany them.
#[derive(Debug, Clone, Default)]
pub struct WorkUnit {
    /// Non-memory (ALU/control) cycles of the unit when executed on a single
    /// core.
    pub compute_cycles: u64,
    /// Memory references issued by the unit, run-length encoded.
    pub accesses: RefStream,
}

impl WorkUnit {
    /// Creates a work unit.
    pub fn new(compute_cycles: u64, accesses: RefStream) -> Self {
        WorkUnit { compute_cycles, accesses }
    }

    /// An empty unit (used by one-sided interactions).
    pub fn empty() -> Self {
        WorkUnit::default()
    }
}

/// Static execution profile of one process of an interactive application.
#[derive(Debug, Clone)]
pub struct ProcessProfile {
    /// Process name (used in reports).
    pub name: String,
    /// Security class: which cluster/partition the process belongs to.
    pub class: SecurityClass,
    /// Fraction of the compute that scales with cores (Amdahl).
    pub parallel_fraction: f64,
    /// Synchronisation cycles added per participating core per interaction
    /// (models barrier/lock costs; large values make extra cores useless, as
    /// for the triangle-counting kernel).
    pub sync_cycles_per_core: u64,
    /// Cores beyond this count bring no benefit to the process.
    pub max_useful_cores: usize,
}

impl ProcessProfile {
    /// Creates a profile.
    pub fn new(
        name: impl Into<String>,
        class: SecurityClass,
        parallel_fraction: f64,
        sync_cycles_per_core: u64,
        max_useful_cores: usize,
    ) -> Self {
        assert!((0.0..=1.0).contains(&parallel_fraction), "parallel fraction must be in [0,1]");
        assert!(max_useful_cores > 0, "a process can always use at least one core");
        ProcessProfile {
            name: name.into(),
            class,
            parallel_fraction,
            sync_cycles_per_core,
            max_useful_cores,
        }
    }
}

/// One interaction event: the insecure process produces an input, the secure
/// process consumes it (the round trip through the shared IPC buffer is what
/// forces an enclave entry/exit under SGX/MI6).
#[derive(Debug, Clone, Default)]
pub struct Interaction {
    /// Work done by the insecure process to produce the input.
    pub insecure: WorkUnit,
    /// Work done by the secure process to consume the input.
    pub secure: WorkUnit,
    /// Bytes exchanged through the shared IPC buffer.
    pub ipc_bytes: u64,
}

/// An interactive application: two processes plus a stream of interactions.
///
/// Implementations must be deterministic for a fixed construction seed so
/// that the same application can be replayed under every architecture.
pub trait InteractiveApp {
    /// Application name as printed in the paper's figures, e.g.
    /// `"<SSSP, GRAPH>"`.
    fn name(&self) -> &str;

    /// Profile of the insecure (producer / OS) process.
    fn insecure_profile(&self) -> &ProcessProfile;

    /// Profile of the secure (enclave) process.
    fn secure_profile(&self) -> &ProcessProfile;

    /// Number of interaction events to simulate.
    fn interactions(&self) -> usize;

    /// Secure-process entry/exit events per second this application exhibits
    /// on the prototype (~400 for user-level, ~220 K for OS-level
    /// applications); used for reporting only.
    fn interactivity_per_second(&self) -> f64;

    /// Produces interaction `idx` (0-based). Implementations may be called
    /// with the same `idx` more than once after a [`reset`](Self::reset).
    fn interaction(&mut self, idx: usize) -> Interaction;

    /// Restarts the generator so the application can be replayed.
    fn reset(&mut self);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workunit_empty() {
        let u = WorkUnit::empty();
        assert_eq!(u.compute_cycles, 0);
        assert!(u.accesses.is_empty());
    }

    #[test]
    #[should_panic(expected = "parallel fraction")]
    fn bad_parallel_fraction_rejected() {
        ProcessProfile::new("x", SecurityClass::Secure, 1.5, 0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        ProcessProfile::new("x", SecurityClass::Secure, 0.5, 0, 0);
    }

    #[test]
    fn profile_fields() {
        let p = ProcessProfile::new("graph", SecurityClass::Insecure, 0.9, 100, 62);
        assert_eq!(p.name, "graph");
        assert_eq!(p.class, SecurityClass::Insecure);
        assert_eq!(p.max_useful_cores, 62);
    }
}
