//! Figure 8: impact of the core re-allocation predictor's decision on
//! IRONHIDE's performance.
//!
//! Paper reference points: the gradient Heuristic delivers ≈ 2.1× and the
//! idealised Optimal ≈ 2.3× geometric-mean completion-time improvement over
//! the MI6 baseline, and the Heuristic stays within the ±5 % decision
//! variations.

use ironhide_bench::{geometric_mean, print_header, print_row, Sweep};
use ironhide_core::arch::Architecture;
use ironhide_core::realloc::ReallocPolicy;
use ironhide_workloads::app::AppId;

fn policy_label(policy: ReallocPolicy) -> String {
    match policy {
        ReallocPolicy::Static => "Static 50/50".to_string(),
        ReallocPolicy::Heuristic => "Heuristic".to_string(),
        ReallocPolicy::Optimal => "Optimal".to_string(),
        ReallocPolicy::FixedOffset(p) if p > 0 => format!("+{p}%"),
        ReallocPolicy::FixedOffset(p) => format!("{p}%"),
    }
}

fn main() {
    let sweep = Sweep::default();
    println!("# Figure 8: sensitivity to the core re-allocation decision\n");

    // The MI6 baseline every policy is compared against.
    let mi6: Vec<f64> = sweep
        .run_all(Architecture::Mi6, ReallocPolicy::Heuristic)
        .iter()
        .map(|r| r.total_time_ms())
        .collect();
    let mi6_geo = geometric_mean(&mi6);

    print_header(&[
        "Predictor decision",
        "Geomean completion time (ms)",
        "Normalized to MI6 (%)",
        "Improvement over MI6",
    ]);
    print_row(&[
        "MI6 baseline".to_string(),
        format!("{mi6_geo:.2}"),
        "100.0".to_string(),
        "1.00x".to_string(),
    ]);

    for policy in ReallocPolicy::figure8_set() {
        let reports = sweep.run_all(Architecture::Ironhide, policy);
        let times: Vec<f64> = reports.iter().map(|r| r.total_time_ms()).collect();
        let geo = geometric_mean(&times);
        print_row(&[
            policy_label(policy),
            format!("{geo:.2}"),
            format!("{:.1}", geo / mi6_geo * 100.0),
            format!("{:.2}x", mi6_geo / geo),
        ]);
    }

    println!("\nSecure-cluster cores chosen by the Heuristic per application:");
    print_header(&["Application", "Secure cores (of 64)"]);
    for app in AppId::ALL {
        let r = sweep.run_one(app, Architecture::Ironhide, ReallocPolicy::Heuristic);
        print_row(&[app.label().to_string(), r.secure_cores.to_string()]);
    }
}
