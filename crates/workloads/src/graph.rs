//! Real-time graph-processing workloads.
//!
//! The paper's first class of user-level interactive applications pairs an
//! insecure temporal-graph update generator (GRAPH, modelled after a road
//! network receiving sensor updates) with one of three secure graph analytics
//! kernels from the CRONO suite: single-source shortest paths (SSSP),
//! PageRank (PR) and triangle counting (TC). The California road network
//! input of the paper is replaced by a synthetic grid-with-shortcuts road
//! network of configurable size.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::recorder::{AccessRecorder, Region};

/// A compressed-sparse-row graph with edge weights.
#[derive(Debug, Clone)]
pub struct CsrGraph {
    offsets: Vec<usize>,
    targets: Vec<u32>,
    weights: Vec<u32>,
}

impl CsrGraph {
    /// Builds a CSR graph from an adjacency list.
    pub fn from_adjacency(adj: &[Vec<(u32, u32)>]) -> Self {
        let mut offsets = Vec::with_capacity(adj.len() + 1);
        let mut targets = Vec::new();
        let mut weights = Vec::new();
        offsets.push(0);
        for edges in adj {
            for (t, w) in edges {
                targets.push(*t);
                weights.push(*w);
            }
            offsets.push(targets.len());
        }
        CsrGraph { offsets, targets, weights }
    }

    /// Generates a synthetic road-network-like graph: an `side × side` grid
    /// (roads to the four neighbours) plus a few random long-distance
    /// shortcuts (highways), with small integer weights.
    pub fn road_network(side: usize, seed: u64) -> Self {
        let n = side * side;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut adj = vec![Vec::new(); n];
        let idx = |x: usize, y: usize| y * side + x;
        for y in 0..side {
            for x in 0..side {
                let v = idx(x, y);
                if x + 1 < side {
                    let w = rng.gen_range(1..10);
                    adj[v].push((idx(x + 1, y) as u32, w));
                    adj[idx(x + 1, y)].push((v as u32, w));
                }
                if y + 1 < side {
                    let w = rng.gen_range(1..10);
                    adj[v].push((idx(x, y + 1) as u32, w));
                    adj[idx(x, y + 1)].push((v as u32, w));
                }
            }
        }
        // Shortcuts: ~2% of nodes get a long-range edge.
        for _ in 0..(n / 50).max(1) {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a != b {
                let w = rng.gen_range(1..5);
                adj[a].push((b as u32, w));
                adj[b].push((a as u32, w));
            }
        }
        CsrGraph::from_adjacency(&adj)
    }

    /// Number of vertices.
    pub fn vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn edges(&self) -> usize {
        self.targets.len()
    }

    /// The neighbours (target, weight) of vertex `v`.
    pub fn neighbors(&self, v: usize) -> impl Iterator<Item = (u32, u32)> + '_ {
        let range = self.offsets[v]..self.offsets[v + 1];
        range.map(move |i| (self.targets[i], self.weights[i]))
    }

    /// Applies a temporal weight update to edge index `e`.
    pub fn update_weight(&mut self, e: usize, weight: u32) {
        let len = self.weights.len();
        self.weights[e % len] = weight;
    }
}

/// Memory-region layout shared by the graph kernels so the recorder can
/// attribute touches to the CSR arrays and per-vertex state.
#[derive(Debug, Clone, Copy)]
pub struct GraphRegions {
    /// CSR offsets array.
    pub offsets: Region,
    /// CSR targets array.
    pub targets: Region,
    /// CSR weights array.
    pub weights: Region,
    /// Per-vertex state (distances, ranks, counts).
    pub state: Region,
    /// Second per-vertex state array (next ranks / visited flags).
    pub state2: Region,
}

impl GraphRegions {
    /// Lays the graph's arrays out contiguously starting at `base`.
    pub fn layout(graph: &CsrGraph, base: u64) -> Self {
        let offsets = Region::new(base, 8, graph.vertices() as u64 + 1);
        let targets = Region::new(offsets.end(), 4, graph.edges() as u64);
        let weights = Region::new(targets.end(), 4, graph.edges() as u64);
        let state = Region::new(weights.end(), 8, graph.vertices() as u64);
        let state2 = Region::new(state.end(), 8, graph.vertices() as u64);
        GraphRegions { offsets, targets, weights, state, state2 }
    }
}

/// The insecure GRAPH process: generates temporal weight updates from
/// simulated road sensors and applies them to the shared static graph.
#[derive(Debug, Clone)]
pub struct TemporalUpdateGenerator {
    rng: StdRng,
    updates_per_batch: usize,
}

impl TemporalUpdateGenerator {
    /// Creates a generator emitting `updates_per_batch` weight updates per
    /// interaction.
    pub fn new(seed: u64, updates_per_batch: usize) -> Self {
        TemporalUpdateGenerator { rng: StdRng::seed_from_u64(seed), updates_per_batch }
    }

    /// Applies one batch of sensor updates to `graph`, recording the touches.
    pub fn apply_batch(
        &mut self,
        graph: &mut CsrGraph,
        regions: &GraphRegions,
        rec: &mut AccessRecorder,
    ) -> usize {
        for _ in 0..self.updates_per_batch {
            let e = self.rng.gen_range(0..graph.edges());
            let w = self.rng.gen_range(1..12);
            rec.read(&regions.offsets, (e % graph.vertices()) as u64);
            rec.write(&regions.weights, e as u64);
            graph.update_weight(e, w);
        }
        self.updates_per_batch
    }
}

/// Single-source shortest paths via Bellman-Ford-style relaxation rounds
/// (bounded, as in delta-stepping's light-edge phases).
pub fn sssp(
    graph: &CsrGraph,
    source: usize,
    max_rounds: usize,
    regions: &GraphRegions,
    rec: &mut AccessRecorder,
) -> Vec<u64> {
    let n = graph.vertices();
    let mut dist = vec![u64::MAX; n];
    dist[source] = 0;
    rec.write(&regions.state, source as u64);
    let mut frontier = vec![source];
    for _ in 0..max_rounds {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for &v in &frontier {
            rec.read(&regions.offsets, v as u64);
            rec.read(&regions.state, v as u64);
            for (t, w) in graph.neighbors(v) {
                rec.read(&regions.targets, t as u64);
                rec.read(&regions.weights, t as u64);
                let cand = dist[v].saturating_add(w as u64);
                if cand < dist[t as usize] {
                    dist[t as usize] = cand;
                    rec.write(&regions.state, t as u64);
                    next.push(t as usize);
                }
            }
        }
        frontier = next;
    }
    dist
}

/// One PageRank power-iteration sweep; returns the updated ranks.
pub fn pagerank_iteration(
    graph: &CsrGraph,
    ranks: &[f64],
    damping: f64,
    regions: &GraphRegions,
    rec: &mut AccessRecorder,
) -> Vec<f64> {
    let n = graph.vertices();
    assert_eq!(ranks.len(), n, "ranks must have one entry per vertex");
    let mut next = vec![(1.0 - damping) / n as f64; n];
    for (v, rank) in ranks.iter().enumerate() {
        rec.read(&regions.offsets, v as u64);
        rec.read(&regions.state, v as u64);
        let degree = graph.neighbors(v).count().max(1);
        let share = damping * rank / degree as f64;
        for (t, _) in graph.neighbors(v) {
            rec.read(&regions.targets, t as u64);
            next[t as usize] += share;
            rec.write(&regions.state2, t as u64);
        }
    }
    next
}

/// Counts triangles incident on the vertex range `[from, to)` (a partition of
/// one full counting pass, so each interaction advances through the graph).
pub fn triangle_count_range(
    graph: &CsrGraph,
    from: usize,
    to: usize,
    regions: &GraphRegions,
    rec: &mut AccessRecorder,
) -> u64 {
    let n = graph.vertices();
    let mut count = 0u64;
    for v in from..to.min(n) {
        rec.read(&regions.offsets, v as u64);
        let neigh_v: Vec<u32> =
            graph.neighbors(v).map(|(t, _)| t).filter(|t| *t as usize > v).collect();
        for &u in &neigh_v {
            rec.read(&regions.targets, u as u64);
            for (w, _) in graph.neighbors(u as usize) {
                rec.read(&regions.targets, w as u64);
                if (w as usize) > u as usize && neigh_v.contains(&w) {
                    rec.read(&regions.state, w as u64);
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_graph() -> CsrGraph {
        // 0 - 1 - 2 triangle plus a pendant vertex 3.
        CsrGraph::from_adjacency(&[
            vec![(1, 1), (2, 4)],
            vec![(0, 1), (2, 1), (3, 7)],
            vec![(0, 4), (1, 1)],
            vec![(1, 7)],
        ])
    }

    #[test]
    fn csr_construction() {
        let g = tiny_graph();
        assert_eq!(g.vertices(), 4);
        assert_eq!(g.edges(), 8);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert_eq!(n0, vec![(1, 1), (2, 4)]);
    }

    #[test]
    fn road_network_is_connected_grid() {
        let g = CsrGraph::road_network(8, 1);
        assert_eq!(g.vertices(), 64);
        // Every vertex in a grid has at least two incident edges.
        for v in 0..g.vertices() {
            assert!(g.neighbors(v).count() >= 2, "vertex {v} is underconnected");
        }
        // Deterministic for a fixed seed.
        let g2 = CsrGraph::road_network(8, 1);
        assert_eq!(g.edges(), g2.edges());
    }

    #[test]
    fn sssp_finds_shortest_paths() {
        let g = tiny_graph();
        let regions = GraphRegions::layout(&g, 0);
        let mut rec = AccessRecorder::unsampled();
        let dist = sssp(&g, 0, 16, &regions, &mut rec);
        assert_eq!(dist[0], 0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[2], 2, "path 0-1-2 beats the direct weight-4 edge");
        assert_eq!(dist[3], 8);
        assert!(rec.recorded() > 0);
    }

    #[test]
    fn pagerank_conserves_mass_and_converges() {
        let g = CsrGraph::road_network(6, 3);
        let regions = GraphRegions::layout(&g, 0);
        let mut rec = AccessRecorder::unsampled();
        let n = g.vertices();
        let mut ranks = vec![1.0 / n as f64; n];
        for _ in 0..20 {
            ranks = pagerank_iteration(&g, &ranks, 0.85, &regions, &mut rec);
        }
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "rank mass must be conserved, got {sum}");
        assert!(ranks.iter().all(|r| *r > 0.0));
    }

    #[test]
    fn triangle_count_matches_known_graph() {
        let g = tiny_graph();
        let regions = GraphRegions::layout(&g, 0);
        let mut rec = AccessRecorder::unsampled();
        let count = triangle_count_range(&g, 0, 4, &regions, &mut rec);
        assert_eq!(count, 1, "the 0-1-2 triangle is the only one");
    }

    #[test]
    fn temporal_updates_change_weights_deterministically() {
        let mut g1 = CsrGraph::road_network(6, 9);
        let mut g2 = CsrGraph::road_network(6, 9);
        let regions = GraphRegions::layout(&g1, 0);
        let mut gen1 = TemporalUpdateGenerator::new(5, 32);
        let mut gen2 = TemporalUpdateGenerator::new(5, 32);
        let mut rec = AccessRecorder::unsampled();
        gen1.apply_batch(&mut g1, &regions, &mut rec);
        gen2.apply_batch(&mut g2, &regions, &mut AccessRecorder::unsampled());
        for e in 0..g1.edges() {
            assert_eq!(g1.weights[e], g2.weights[e]);
        }
        assert!(rec.recorded() > 0);
    }

    #[test]
    fn regions_do_not_overlap() {
        let g = CsrGraph::road_network(8, 0);
        let r = GraphRegions::layout(&g, 0x1000);
        assert!(r.offsets.end() <= r.targets.base());
        assert!(r.targets.end() <= r.weights.base());
        assert!(r.weights.end() <= r.state.base());
        assert!(r.state.end() <= r.state2.base());
    }
}
