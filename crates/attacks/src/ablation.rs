//! The defence-ablation grid: which flush subset closes which channel.
//!
//! This module assembles the {flush subset × channel} grid the
//! `TemporalFence` architecture is swept with — the experiment the fence.t.s
//! paper runs in silicon, reproduced here across channels hardware papers
//! cannot reach (the directory back-invalidation channel, mesh contention,
//! the reconfiguration window). Every cell runs one covert channel against
//! [`Architecture::TemporalFence`](ironhide_core::arch::Architecture)
//! configured with the row's flush subset; the matrix then answers, per
//! channel, what the *minimal* erasure closing it costs, and how far below
//! the SIMF flush-everything preset that sits.
//!
//! The channel axis is the complete shipped arsenal: the five
//! [`ChannelKind`] stream channels plus the self-orchestrating
//! reconfiguration-window attack under the shipped purge order.

use ironhide_core::cluster::PurgeOrder;
use ironhide_core::sweep::{AblationGrid, AblationSpec, AttackSpec, ScalePoint};
use ironhide_sim::fence::{FlushResource, FlushSet};

use crate::channels::ChannelKind;
use crate::oracle::attack_spec;
use crate::window::window_attack_spec;

/// The full channel axis of the ablation grid: all five stream channels plus
/// the reconfiguration-window attack under the shipped purge order, in the
/// canonical order.
pub fn ablation_channels() -> Vec<AttackSpec> {
    let mut channels: Vec<AttackSpec> = ChannelKind::ALL.into_iter().map(attack_spec).collect();
    channels.push(window_attack_spec(PurgeOrder::PurgeThenRehome));
    channels
}

/// The full flush-subset axis: the zero-flush baseline, every singleton,
/// a ladder of growing combinations, the everything-but-predictor subset
/// (erases all modelled latency state, strictly cheaper than SIMF) and the
/// SIMF preset itself.
pub fn ablation_subsets() -> Vec<AblationSpec> {
    use FlushResource::*;
    let mut subsets = vec![AblationSpec::subset(FlushSet::EMPTY)];
    for r in FlushResource::ALL {
        subsets.push(AblationSpec::subset(FlushSet::of(&[r])));
    }
    subsets.push(AblationSpec::subset(FlushSet::of(&[L1, Tlb])));
    subsets.push(AblationSpec::subset(FlushSet::of(&[L1, Directory])));
    subsets.push(AblationSpec::subset(FlushSet::of(&[L1, Tlb, Directory])));
    subsets.push(AblationSpec::subset(FlushSet::of(&[L1, Tlb, Directory, NocLoad])));
    subsets.push(AblationSpec::subset(all_but_predictor()));
    subsets.push(AblationSpec::simf());
    subsets
}

/// The smoke flush-subset axis: the rows CI gates on — the zero-flush
/// baseline (every channel must stay open), the private-state ladder, the
/// everything-but-predictor subset and SIMF.
pub fn smoke_subsets() -> Vec<AblationSpec> {
    use FlushResource::*;
    vec![
        AblationSpec::subset(FlushSet::EMPTY),
        AblationSpec::subset(FlushSet::of(&[L1, Tlb, Directory])),
        AblationSpec::subset(all_but_predictor()),
        AblationSpec::simf(),
    ]
}

/// Every resource class except the cost-only predictor: the cheapest subset
/// guaranteed to erase all *modelled* latency state, and therefore to close
/// every channel SIMF closes at a strictly lower switch cost.
pub fn all_but_predictor() -> FlushSet {
    use FlushResource::*;
    FlushSet::of(&[L1, Tlb, Directory, NocLoad, Controller])
}

/// Assembles the {flush subset × channel × scale} ablation grid over the
/// full channel arsenal and the given subset rows.
pub fn ablation_grid(subsets: Vec<AblationSpec>, scales: &[ScalePoint]) -> AblationGrid {
    let mut grid = AblationGrid::new();
    for subset in subsets {
        grid = grid.with_subset(subset);
    }
    for channel in ablation_channels() {
        grid = grid.with_channel(channel);
    }
    for scale in scales {
        grid = grid.with_scale(scale.clone());
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_axis_covers_the_arsenal() {
        let channels = ablation_channels();
        assert_eq!(channels.len(), ChannelKind::ALL.len() + 1);
        for kind in ChannelKind::ALL {
            assert!(channels.iter().any(|c| c.label() == kind.label()));
        }
    }

    #[test]
    fn subset_axes_are_well_formed() {
        let full = ablation_subsets();
        // none + 6 singletons + 4 combos + all-but-pred + simf.
        assert_eq!(full.len(), 13);
        assert_eq!(full[0].label(), "none");
        assert_eq!(full.last().unwrap().label(), "simf");
        // Labels are unique: duplicate rows would collide in seed space.
        for (i, a) in full.iter().enumerate() {
            for b in &full[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
        let smoke = smoke_subsets();
        assert_eq!(smoke.len(), 4);
        // Every smoke row is also a full row, so the smoke matrix is a
        // subset of the full story.
        for s in &smoke {
            assert!(full.iter().any(|f| f.label() == s.label()), "{} missing", s.label());
        }
        assert_eq!(all_but_predictor().len(), FlushResource::ALL.len() - 1);
        assert!(!all_but_predictor().contains(FlushResource::Predictor));
    }

    #[test]
    fn grid_assembles_all_axes() {
        let grid = ablation_grid(smoke_subsets(), &[ScalePoint::new("Smoke")]);
        assert_eq!(grid.len(), 4 * (ChannelKind::ALL.len() + 1));
    }
}
