//! Determinism and conservation properties of the multi-tenant churn
//! subsystem, plus the cross-process pin that ties the facade's view of the
//! tenancy grid to the `tenancy` bench binary's.

use ironhide::prelude::*;
use proptest::prelude::*;

/// The `tenancy` binary's master seed; the cross-process pin below only
/// holds against the grid that binary actually sweeps.
const BENCH_MASTER_SEED: u64 = 11;

/// The smoke tenancy checksum the `tenancy --smoke` binary reports (and CI
/// pins). Recomputing it here, in a different process from a different crate,
/// proves the matrix is a pure function of (seed, grid) — not of process
/// layout, ASLR, linkage order or thread scheduling.
const BENCH_SMOKE_CHECKSUM: u64 = 17845519074244044958;

/// The `tenancy` binary's smoke load, replicated field for field.
fn bench_smoke_config() -> StormConfig {
    StormConfig {
        tenants: 40,
        mean_interarrival_cycles: 30_000,
        mean_service_scale: 1,
        host_reserve_cores: 8,
        profiles: tenant_profiles(&AppId::ALL),
    }
}

fn bench_smoke_grid() -> TenancyGrid {
    let mut grid = TenancyGrid::new().with_load(LoadPoint::new("Smoke", bench_smoke_config()));
    for policy in AdmissionPolicy::ALL {
        grid = grid.with_policy(policy);
    }
    grid
}

fn run(seed: u64, threads: usize) -> TenancyMatrix {
    SweepRunner::new(MachineConfig::paper_default())
        .with_seed(seed)
        .with_threads(threads)
        .run_tenancy(&bench_smoke_grid())
        .expect("tenancy sweep runs")
}

/// The serialised matrix must be byte-identical at 1, 2 and 8 worker
/// threads — the same contract the performance and attack sweeps carry.
#[test]
fn tenancy_matrix_is_byte_identical_across_thread_counts() {
    let baseline = run(BENCH_MASTER_SEED, 1).to_json();
    for threads in [2usize, 8] {
        let json = run(BENCH_MASTER_SEED, threads).to_json();
        assert_eq!(baseline, json, "thread count {threads} changed the tenancy matrix");
    }
}

/// Recomputes the `tenancy --smoke` checksum from this test process. If this
/// moves, either the storm semantics changed (update the bench pin too, with
/// a changelog entry) or the matrix silently depends on ambient process
/// state (a determinism bug).
#[test]
fn tenancy_checksum_matches_the_bench_binary_pin() {
    let matrix = run(BENCH_MASTER_SEED, 2);
    assert_eq!(
        matrix.checksum(),
        BENCH_SMOKE_CHECKSUM,
        "tenancy smoke checksum moved — bench/CI pins must move with it"
    );
}

/// SLO percentile fields come from exact sorted samples, so they must be
/// identical cell-for-cell across independent sweeps (fresh machines, fresh
/// thread pools), not merely across thread counts.
#[test]
fn slo_percentiles_are_reproducible_across_independent_sweeps() {
    let a = run(BENCH_MASTER_SEED, 4);
    let b = run(BENCH_MASTER_SEED, 4);
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.key, cb.key);
        assert_eq!(ca.report.slo.checksum(), cb.report.slo.checksum(), "cell {}", ca.key);
        for (num, den) in [(1u64, 2u64), (99, 100), (999, 1000)] {
            assert_eq!(
                ca.report.slo.completion_percentile(num, den),
                cb.report.slo.completion_percentile(num, den),
                "cell {} completion p{num}/{den}",
                ca.key
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The arrival stream is a pure function of its seed: redrawing is
    /// byte-identical, reseeding moves it, and arrival cycles never go
    /// backwards.
    #[test]
    fn arrival_streams_are_seed_pure(seed in 0u64..1_000_000) {
        let generator = ArrivalGenerator::new(20_000, 1, tenant_profiles(&AppId::ALL));
        let a = generator.draw(seed, 64);
        let b = generator.draw(seed, 64);
        prop_assert_eq!(&a, &b);
        prop_assert!(a.windows(2).all(|w| w[0].at_cycle <= w[1].at_cycle));
        let c = generator.draw(seed.wrapping_add(1), 64);
        prop_assert_ne!(&a, &c);
    }

    /// Every admission policy conserves tenants (admitted + denied + queued
    /// == arrived), attests every arrival, and fully drains its queue, for
    /// arbitrary seeds — not just the pinned one.
    #[test]
    fn policies_conserve_tenants(seed in 0u64..1_000_000) {
        let config = bench_smoke_config();
        let mut machine = ironhide::ironhide_sim::machine::Machine::new(
            MachineConfig::paper_default(),
        );
        for policy in AdmissionPolicy::ALL {
            let report = TenancyStorm::new(&config, policy)
                .run(&mut machine, seed)
                .expect("storm runs");
            prop_assert!(report.conserves_tenants(), "{policy}: conservation violated");
            prop_assert_eq!(report.attested, report.arrived);
            prop_assert_eq!(report.queued, 0, "{}: queue must drain", policy);
            prop_assert_eq!(report.slo.completions() as u64, report.admitted);
        }
    }
}

/// The reconfiguration-window golden rows, end to end through the facade:
/// shipped purge ordering closes the channel on IRONHIDE with a clean audit;
/// the injected rehome-before-purge mis-ordering opens it.
#[test]
fn window_channel_verdicts_are_golden() {
    let config = MachineConfig::attack_testbench();
    let shipped = WindowAttack::new(config.clone(), PurgeOrder::PurgeThenRehome)
        .assess(Architecture::Ironhide, 7)
        .expect("shipped-order assessment runs");
    assert_eq!(shipped.verdict, ChannelVerdict::Closed, "shipped order: BER {}", shipped.ber);
    assert!(shipped.isolation.is_clean(), "violations: {:?}", shipped.isolation.violations);

    let misordered = WindowAttack::new(config, PurgeOrder::RehomeThenPurge)
        .assess(Architecture::Ironhide, 7)
        .expect("misordered assessment runs");
    assert_eq!(misordered.verdict, ChannelVerdict::Open, "misordered: BER {}", misordered.ber);
}
