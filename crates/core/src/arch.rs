//! The execution architectures compared in the paper.

use std::fmt;

/// The secure-processor execution architecture an experiment runs under.
///
/// These correspond to the four systems of Figure 1(a) and Figure 6:
/// the insecure baseline every result is normalised against, the SGX-like
/// enclave model, the multicore MI6 baseline and IRONHIDE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// No security primitives: processes context switch freely, caches and
    /// DRAM are fully shared. This is the normalisation baseline.
    Insecure,
    /// Intel-SGX-like enclaves: a constant per-entry/exit cost (pipeline
    /// flush, enclave data encryption/decryption and integrity checking,
    /// ~5 µs as measured by HotCalls), but no strong isolation — caches,
    /// TLBs, the NoC and memory controllers remain shared and un-purged.
    SgxLike,
    /// The multicore MI6 baseline: the SGX execution model plus strong
    /// isolation. Shared L2 slices and DRAM regions are statically
    /// partitioned with local homing, and all time-shared private state
    /// (L1s, TLBs) and memory-controller queues are purged on every enclave
    /// entry and exit. A hardware range check blocks speculative accesses to
    /// secure regions.
    Mi6,
    /// IRONHIDE: two spatially isolated clusters of cores. Secure processes
    /// are pinned to the secure cluster, interactions flow through the shared
    /// IPC buffer without enclave entries/exits, and core-level resources are
    /// re-balanced once per application invocation by the secure kernel's
    /// re-allocation predictor.
    Ironhide,
    /// A temporal-isolation fence (fence.t / fence.t.s / SIMF, the
    /// time-protection family): processes share every resource like the
    /// insecure baseline, but each domain switch flushes the subset of
    /// microarchitectural state named by the machine's
    /// [`TemporalFenceConfig`](ironhide_sim::TemporalFenceConfig), charging
    /// the state-independent worst-case flush cost on the critical path.
    /// What it erases — and what residue it therefore leaves for a covert
    /// channel — is entirely the flush set's choice, which is the knob the
    /// ablation matrix sweeps.
    TemporalFence,
}

impl Architecture {
    /// The four seed architectures of the paper's figures, in presentation
    /// order. [`Architecture::TemporalFence`] is deliberately *not* part of
    /// this set: it is a configurable defence family swept by its own
    /// ablation grid, and the paper-replication grids (and their pinned
    /// golden checksums) stay byte-stable without it.
    pub const ALL: [Architecture; 4] =
        [Architecture::Insecure, Architecture::SgxLike, Architecture::Mi6, Architecture::Ironhide];

    /// Whether this architecture enforces strong isolation (static or spatial
    /// partitioning of shared state plus protection of private state).
    pub fn strong_isolation(self) -> bool {
        matches!(self, Architecture::Mi6 | Architecture::Ironhide)
    }

    /// Whether the architecture purges private microarchitecture state on
    /// every enclave entry/exit.
    pub fn purges_on_entry_exit(self) -> bool {
        matches!(self, Architecture::Mi6)
    }

    /// Whether the architecture pays the SGX-style constant enclave
    /// entry/exit cost (pipeline flush + enclave crypto/integrity).
    pub fn pays_enclave_crypto(self) -> bool {
        matches!(self, Architecture::SgxLike | Architecture::Mi6)
    }

    /// Whether secure and insecure processes execute on spatially disjoint
    /// clusters of cores.
    pub fn spatial_clusters(self) -> bool {
        matches!(self, Architecture::Ironhide)
    }

    /// Whether the hardware range check for speculative accesses to secure
    /// regions is active.
    pub fn speculative_check(self) -> bool {
        self.strong_isolation()
    }

    /// Whether the architecture flushes microarchitectural state at domain
    /// switches under a configurable temporal fence (the time-protection
    /// family). Orthogonal to [`Architecture::strong_isolation`]: the fence
    /// partitions *time*, not space, so every spatial predicate above is
    /// false for it.
    pub fn temporal_fence(self) -> bool {
        matches!(self, Architecture::TemporalFence)
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Architecture::Insecure => write!(f, "Insecure"),
            Architecture::SgxLike => write!(f, "SGX"),
            Architecture::Mi6 => write!(f, "MI6"),
            Architecture::Ironhide => write!(f, "IRONHIDE"),
            Architecture::TemporalFence => write!(f, "FENCE"),
        }
    }
}

/// Tunable parameters of the execution architectures, with defaults taken
/// from the paper and from HotCalls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchParams {
    /// Cost of one SGX enclave entry or exit in microseconds (HotCalls
    /// measures 2.5–5 µs; the paper models a constant 5 µs).
    pub sgx_entry_exit_us: f64,
    /// Interactions executed to warm the machine before measurement starts.
    pub warmup_interactions: usize,
    /// Fraction of an application's interactions sampled when the
    /// re-allocation predictor evaluates a candidate cluster size.
    pub predictor_sample: usize,
    /// Initial secure-cluster size as a fraction of all cores (the paper
    /// starts every application at 32 of 64 cores).
    pub initial_secure_fraction: f64,
}

impl Default for ArchParams {
    fn default() -> Self {
        ArchParams {
            sgx_entry_exit_us: 5.0,
            warmup_interactions: 8,
            predictor_sample: 16,
            initial_secure_fraction: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_match_paper() {
        assert!(!Architecture::Insecure.strong_isolation());
        assert!(!Architecture::SgxLike.strong_isolation());
        assert!(Architecture::Mi6.strong_isolation());
        assert!(Architecture::Ironhide.strong_isolation());

        assert!(Architecture::Mi6.purges_on_entry_exit());
        assert!(!Architecture::Ironhide.purges_on_entry_exit());

        assert!(Architecture::SgxLike.pays_enclave_crypto());
        assert!(!Architecture::Ironhide.pays_enclave_crypto());

        assert!(Architecture::Ironhide.spatial_clusters());
        assert!(!Architecture::Mi6.spatial_clusters());

        assert!(Architecture::Mi6.speculative_check());
        assert!(Architecture::Ironhide.speculative_check());
        assert!(!Architecture::SgxLike.speculative_check());
    }

    #[test]
    fn temporal_fence_is_purely_temporal() {
        let f = Architecture::TemporalFence;
        assert!(f.temporal_fence());
        // Every spatial/boundary predicate is off: the fence shares all
        // resources like the insecure baseline and defends only in time.
        assert!(!f.strong_isolation());
        assert!(!f.purges_on_entry_exit());
        assert!(!f.pays_enclave_crypto());
        assert!(!f.spatial_clusters());
        assert!(!f.speculative_check());
        for a in Architecture::ALL {
            assert!(!a.temporal_fence());
        }
    }

    #[test]
    fn display_names() {
        let names: Vec<String> = Architecture::ALL.iter().map(|a| a.to_string()).collect();
        assert_eq!(names, vec!["Insecure", "SGX", "MI6", "IRONHIDE"]);
        assert_eq!(Architecture::TemporalFence.to_string(), "FENCE");
    }

    #[test]
    fn default_params() {
        let p = ArchParams::default();
        assert_eq!(p.sgx_entry_exit_us, 5.0);
        assert!(p.initial_secure_fraction > 0.0 && p.initial_secure_fraction < 1.0);
        assert!(p.warmup_interactions > 0);
    }
}
