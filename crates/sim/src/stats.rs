//! Machine-level and per-process statistics.

use ironhide_cache::{CacheStats, DirectoryStats};
use ironhide_mem::MemStats;
use ironhide_mesh::NocStats;

/// Statistics attributed to a single process (summed over every core it ran
/// on). Figure 7 of the paper reports the L1 and L2 miss rates per
/// interactive application, which are derived from these counters.
#[derive(Debug, Clone, Default)]
pub struct ProcessStats {
    /// Private L1 behaviour of the process's accesses.
    pub l1: CacheStats,
    /// Private TLB behaviour of the process's accesses.
    pub tlb: CacheStats,
    /// Shared L2 behaviour of the process's accesses.
    pub l2: CacheStats,
    /// Off-chip accesses made on behalf of the process.
    pub dram_accesses: u64,
    /// Total memory-access latency charged to the process, in cycles.
    pub memory_cycles: u64,
}

impl ProcessStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges another block into this one.
    pub fn merge(&mut self, other: &ProcessStats) {
        self.l1.merge(&other.l1);
        self.tlb.merge(&other.tlb);
        self.l2.merge(&other.l2);
        self.dram_accesses += other.dram_accesses;
        self.memory_cycles += other.memory_cycles;
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = ProcessStats::default();
    }
}

/// Machine-wide statistics snapshot.
#[derive(Debug, Clone, Default)]
pub struct MachineStats {
    /// Aggregate over all private L1s.
    pub l1: CacheStats,
    /// Aggregate over all private TLBs.
    pub tlb: CacheStats,
    /// Aggregate over all shared L2 slices.
    pub l2: CacheStats,
    /// Aggregate over all memory controllers.
    pub mem: MemStats,
    /// NoC traffic counters.
    pub noc: NocStats,
    /// Aggregate over all home-slice coherence directories (the
    /// coherence-traffic counters the README documents for `BENCH_*.json`).
    pub directory: DirectoryStats,
    /// Number of whole-core purge operations performed.
    pub core_purges: u64,
    /// Number of pages re-homed by reconfigurations.
    pub pages_rehomed: u64,
}

impl MachineStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_stats_merge() {
        let mut a = ProcessStats::new();
        a.l1.accesses = 10;
        a.l1.misses = 2;
        a.dram_accesses = 1;
        let mut b = ProcessStats::new();
        b.l1.accesses = 5;
        b.l1.hits = 5;
        b.memory_cycles = 100;
        a.merge(&b);
        assert_eq!(a.l1.accesses, 15);
        assert_eq!(a.memory_cycles, 100);
        assert_eq!(a.dram_accesses, 1);
        a.reset();
        assert_eq!(a.l1.accesses, 0);
    }

    #[test]
    fn machine_stats_default_is_zero() {
        let m = MachineStats::new();
        assert_eq!(m.l1.accesses, 0);
        assert_eq!(m.core_purges, 0);
        assert_eq!(m.noc.packets, 0);
    }
}
