//! Deterministic dimension-ordered routing (X-Y and Y-X).
//!
//! The hot path of the simulator never materialises routes: [`RouteIter`]
//! computes the traversed nodes one step at a time from coordinates alone, so
//! charging a packet's latency performs **zero heap allocations**. [`Route`]
//! (an ordered `Vec` of nodes) is kept as a test/debug convenience and is
//! itself built by collecting a [`RouteIter`].

use crate::topology::{Coord, MeshTopology, NodeId};

/// The deterministic routing function used for a packet.
///
/// The paper's prototype uses X-Y routing by default; IRONHIDE additionally
/// requires Y-X routing ("bidirectional routing") so that clusters whose
/// boundary cuts through a mesh row can still contain their own traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RoutingAlgorithm {
    /// Route fully along the X dimension first, then along Y.
    #[default]
    XY,
    /// Route fully along the Y dimension first, then along X.
    YX,
}

impl RoutingAlgorithm {
    /// The complementary routing order.
    pub fn complement(self) -> Self {
        match self {
            RoutingAlgorithm::XY => RoutingAlgorithm::YX,
            RoutingAlgorithm::YX => RoutingAlgorithm::XY,
        }
    }
}

/// A lazily-stepped deterministic route: an iterator over the nodes a packet
/// traverses (source first, destination last), computed on the fly from
/// coordinates without allocating.
///
/// The struct is `Copy`; auditing a route and then traversing it costs two
/// passes over the same value, never a collection. [`RouteIter::links`]
/// adapts the node stream into the `(from, to)` link stream the latency
/// model consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteIter {
    topology: MeshTopology,
    src: Coord,
    cur: Coord,
    dst: Coord,
    algorithm: RoutingAlgorithm,
    started: bool,
}

impl RouteIter {
    /// Source node.
    pub fn source(&self) -> NodeId {
        self.topology.node_at(self.src)
    }

    /// Destination node.
    pub fn destination(&self) -> NodeId {
        self.topology.node_at(self.dst)
    }

    /// The routing function stepping this route.
    pub fn algorithm(&self) -> RoutingAlgorithm {
        self.algorithm
    }

    /// Number of links left to traverse. For a freshly created iterator this
    /// is the route's total hop count (the Manhattan distance; 0 for a route
    /// from a node to itself).
    pub fn hops(&self) -> usize {
        self.cur.manhattan(self.dst)
    }

    /// Adapts the node stream into the `(from, to)` links of the route, in
    /// traversal order.
    pub fn links(self) -> RouteLinks {
        RouteLinks { inner: self, prev: None }
    }

    /// Collects the route into a materialised [`Route`] (test/debug
    /// convenience; the hot path iterates instead).
    pub fn materialize(self) -> Route {
        let algorithm = self.algorithm;
        let mut nodes = Vec::with_capacity(self.len());
        nodes.extend(self);
        Route { nodes, algorithm }
    }
}

impl Iterator for RouteIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if !self.started {
            self.started = true;
            return Some(self.topology.node_at(self.cur));
        }
        if self.cur == self.dst {
            return None;
        }
        match self.algorithm {
            RoutingAlgorithm::XY => {
                if self.cur.x != self.dst.x {
                    self.cur.x = step_toward(self.cur.x, self.dst.x);
                } else {
                    self.cur.y = step_toward(self.cur.y, self.dst.y);
                }
            }
            RoutingAlgorithm::YX => {
                if self.cur.y != self.dst.y {
                    self.cur.y = step_toward(self.cur.y, self.dst.y);
                } else {
                    self.cur.x = step_toward(self.cur.x, self.dst.x);
                }
            }
        }
        Some(self.topology.node_at(self.cur))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.hops() + usize::from(!self.started);
        (remaining, Some(remaining))
    }
}

impl ExactSizeIterator for RouteIter {}

fn step_toward(v: usize, target: usize) -> usize {
    if v < target {
        v + 1
    } else {
        v - 1
    }
}

/// Iterator over the `(from, to)` links of a route, in traversal order.
/// Produced by [`RouteIter::links`]; allocation-free like its parent.
#[derive(Debug, Clone, Copy)]
pub struct RouteLinks {
    inner: RouteIter,
    prev: Option<NodeId>,
}

impl Iterator for RouteLinks {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        loop {
            let node = self.inner.next()?;
            match self.prev.replace(node) {
                Some(prev) => return Some((prev, node)),
                None => continue,
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.inner.hops();
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteLinks {}

/// A fully materialised deterministic route: the ordered list of nodes a
/// packet traverses, including the source and the destination.
///
/// Kept for tests, debugging and external tooling; the simulator's hot path
/// uses [`RouteIter`] and never allocates one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    nodes: Vec<NodeId>,
    algorithm: RoutingAlgorithm,
}

impl Route {
    /// All nodes traversed, source first and destination last.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The routing function that produced this route.
    pub fn algorithm(&self) -> RoutingAlgorithm {
        self.algorithm
    }

    /// Number of links traversed (0 for a route from a node to itself).
    pub fn hops(&self) -> usize {
        self.nodes.len().saturating_sub(1)
    }

    /// Source node.
    pub fn source(&self) -> NodeId {
        *self.nodes.first().expect("route always has a source")
    }

    /// Destination node.
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("route always has a destination")
    }

    /// Iterates over the links `(from, to)` of the route in traversal order.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes.windows(2).map(|w| (w[0], w[1]))
    }
}

impl MeshTopology {
    /// Returns the lazily-stepped deterministic route from `src` to `dst`
    /// under `algorithm`. This is the allocation-free form the simulator's
    /// hot path uses.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn route_iter(&self, src: NodeId, dst: NodeId, algorithm: RoutingAlgorithm) -> RouteIter {
        let s = self.coord(src);
        let d = self.coord(dst);
        RouteIter { topology: *self, src: s, cur: s, dst: d, algorithm, started: false }
    }

    /// Computes the deterministic route from `src` to `dst` under
    /// `algorithm`, materialised as a [`Route`] (test/debug convenience;
    /// allocates).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn route(&self, src: NodeId, dst: NodeId, algorithm: RoutingAlgorithm) -> Route {
        self.route_iter(src, dst, algorithm).materialize()
    }
}

/// Precomputed hop counts for every `(src, dst)` pair of a topology.
///
/// Dimension-ordered routes traverse exactly Manhattan-distance many links
/// under *either* routing order, so the `(src, dst, algorithm)` space
/// collapses to `(src, dst)`: one table serves both X-Y and Y-X. The table
/// lets the hot path charge and account a packet's hop count with a single
/// indexed load instead of re-deriving coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HopTable {
    nodes: usize,
    hops: Vec<u16>,
}

impl HopTable {
    /// Builds the table for `topology` (`nodes²` entries, two bytes each —
    /// 8 KiB for the paper's 64-tile mesh).
    pub fn new(topology: &MeshTopology) -> Self {
        let n = topology.nodes();
        assert!(
            topology.width() + topology.height() - 2 <= u16::MAX as usize,
            "mesh diameter exceeds the hop table's u16 range"
        );
        let mut hops = Vec::with_capacity(n * n);
        for a in 0..n {
            let ca = topology.coord(NodeId(a));
            for b in 0..n {
                hops.push(ca.manhattan(topology.coord(NodeId(b))) as u16);
            }
        }
        HopTable { nodes: n, hops }
    }

    /// Hop count of the deterministic route from `src` to `dst` (identical
    /// under X-Y and Y-X routing).
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        assert!(src.0 < self.nodes && dst.0 < self.nodes, "node out of hop-table range");
        self.hops[src.0 * self.nodes + dst.0] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_route_goes_x_first() {
        let m = MeshTopology::new(8, 8);
        // From (0,0) to (2,2): XY visits (1,0),(2,0),(2,1),(2,2).
        let r = m.route(NodeId(0), NodeId(18), RoutingAlgorithm::XY);
        assert_eq!(r.nodes(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(10), NodeId(18)]);
        assert_eq!(r.hops(), 4);
    }

    #[test]
    fn yx_route_goes_y_first() {
        let m = MeshTopology::new(8, 8);
        let r = m.route(NodeId(0), NodeId(18), RoutingAlgorithm::YX);
        assert_eq!(r.nodes(), &[NodeId(0), NodeId(8), NodeId(16), NodeId(17), NodeId(18)]);
    }

    #[test]
    fn route_to_self_has_no_hops() {
        let m = MeshTopology::new(4, 4);
        let r = m.route(NodeId(5), NodeId(5), RoutingAlgorithm::XY);
        assert_eq!(r.hops(), 0);
        assert_eq!(r.source(), r.destination());
        let it = m.route_iter(NodeId(5), NodeId(5), RoutingAlgorithm::XY);
        assert_eq!(it.hops(), 0);
        assert_eq!(it.collect::<Vec<_>>(), vec![NodeId(5)]);
    }

    #[test]
    fn hops_equal_manhattan_distance() {
        let m = MeshTopology::new(8, 8);
        for a in [0usize, 7, 21, 42, 63] {
            for b in [0usize, 9, 35, 63] {
                for alg in [RoutingAlgorithm::XY, RoutingAlgorithm::YX] {
                    let r = m.route(NodeId(a), NodeId(b), alg);
                    assert_eq!(r.hops(), m.distance(NodeId(a), NodeId(b)));
                    assert_eq!(r.source(), NodeId(a));
                    assert_eq!(r.destination(), NodeId(b));
                }
            }
        }
    }

    #[test]
    fn links_are_adjacent() {
        let m = MeshTopology::new(8, 8);
        let r = m.route(NodeId(3), NodeId(60), RoutingAlgorithm::YX);
        for (a, b) in r.links() {
            assert_eq!(m.distance(a, b), 1, "link {a}->{b} must join neighbours");
        }
    }

    #[test]
    fn complement_flips() {
        assert_eq!(RoutingAlgorithm::XY.complement(), RoutingAlgorithm::YX);
        assert_eq!(RoutingAlgorithm::YX.complement(), RoutingAlgorithm::XY);
    }

    #[test]
    fn same_row_routes_identical_under_both_orders() {
        let m = MeshTopology::new(8, 8);
        let xy = m.route(NodeId(8), NodeId(15), RoutingAlgorithm::XY);
        let yx = m.route(NodeId(8), NodeId(15), RoutingAlgorithm::YX);
        assert_eq!(xy.nodes(), yx.nodes());
    }

    #[test]
    fn iter_matches_materialised_route() {
        let m = MeshTopology::new(8, 8);
        for (a, b) in [(0usize, 63usize), (63, 0), (7, 56), (12, 12), (5, 40)] {
            for alg in [RoutingAlgorithm::XY, RoutingAlgorithm::YX] {
                let it = m.route_iter(NodeId(a), NodeId(b), alg);
                let route = m.route(NodeId(a), NodeId(b), alg);
                assert_eq!(it.hops(), route.hops());
                assert_eq!(it.len(), route.nodes().len());
                assert_eq!(it.source(), route.source());
                assert_eq!(it.destination(), route.destination());
                assert_eq!(it.algorithm(), route.algorithm());
                assert_eq!(it.collect::<Vec<_>>(), route.nodes());
                assert_eq!(it.links().collect::<Vec<_>>(), route.links().collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn iter_is_exact_size() {
        let m = MeshTopology::new(6, 9);
        let mut it = m.route_iter(NodeId(0), NodeId(53), RoutingAlgorithm::XY);
        let total = it.len();
        assert_eq!(total, m.distance(NodeId(0), NodeId(53)) + 1);
        let mut seen = 0;
        while it.next().is_some() {
            seen += 1;
            assert_eq!(it.len(), total - seen);
        }
        assert_eq!(seen, total);
    }

    #[test]
    fn hop_table_matches_distances() {
        let m = MeshTopology::new(8, 8);
        let table = HopTable::new(&m);
        for a in m.iter_nodes() {
            for b in m.iter_nodes() {
                assert_eq!(table.hops(a, b), m.distance(a, b));
            }
        }
    }

    #[test]
    #[should_panic(expected = "hop-table range")]
    fn hop_table_rejects_out_of_range() {
        let table = HopTable::new(&MeshTopology::new(2, 2));
        table.hops(NodeId(0), NodeId(4));
    }
}
