//! # ironhide-mem
//!
//! Off-chip memory system model for the IRONHIDE reproduction: physically
//! isolated DRAM regions, variable-latency memory controllers with request
//! queues, and the queue-purge operation MI6 performs on every enclave
//! entry/exit.
//!
//! The paper partitions main memory into DRAM regions that are statically
//! distributed across secure and insecure processes (MI6) or clusters
//! (IRONHIDE). Each region is reachable through a specific memory controller;
//! the controllers' shared queues and open-row state are microarchitecture
//! state, so MI6 purges them at every enclave boundary while IRONHIDE gives
//! each cluster dedicated controllers (selected with a `pos` bit-mask on the
//! prototype, e.g. `0b0011` for MC0+MC1).
//!
//! # Example
//!
//! ```
//! use ironhide_mem::{DramConfig, MemoryController};
//!
//! let mut mc = MemoryController::new(0, DramConfig::default());
//! let first = mc.access(0x4000, false, 0);
//! let again = mc.access(0x4040, false, first);
//! assert!(again < first, "row-buffer hit must be faster than a row miss");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod dram;
pub mod region;
pub mod stats;

pub use controller::{ControllerMask, MemoryController};
pub use dram::DramConfig;
pub use region::{DramRegion, RegionId, RegionMap, RegionOwner};
pub use stats::MemStats;
