//! Golden-stats regression tests.
//!
//! Snapshots the full per-architecture completion report — including the
//! machine-wide cache/TLB/NoC/memory counters — for `<AES, QUERY>` at the
//! Smoke scale, and asserts an exact byte match against
//! `tests/golden/*.json`. Any change to the timing model, the cache/TLB/NoC
//! simulators or the runner shows up here as a diff.
//!
//! To regenerate the snapshots after an *intentional* model change:
//!
//! ```bash
//! IRONHIDE_REGEN_GOLDEN=1 cargo test --test golden_stats
//! git diff tests/golden/   # review the counter movement, then commit
//! ```

use std::fs;
use std::path::PathBuf;

use ironhide::ironhide_core::sweep::report_json;
use ironhide::prelude::*;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn arch_slug(arch: Architecture) -> &'static str {
    match arch {
        Architecture::Insecure => "insecure",
        Architecture::SgxLike => "sgx",
        Architecture::Mi6 => "mi6",
        Architecture::Ironhide => "ironhide",
        Architecture::TemporalFence => "fence",
    }
}

#[test]
fn query_aes_smoke_counters_match_golden() {
    // Default ArchParams and the paper machine: the exact configuration is
    // part of the snapshot contract, so do not override anything here.
    let grid = sweep_grid(
        &[AppId::QueryAes],
        &Architecture::ALL,
        &[ReallocPolicy::Static],
        &[ScaleFactor::Smoke],
    );
    let matrix = SweepRunner::new(MachineConfig::paper_default())
        .with_seed(0)
        .run(&grid)
        .expect("golden sweep runs");

    let regen = std::env::var_os("IRONHIDE_REGEN_GOLDEN").is_some();
    if regen {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
    }

    let mut mismatches = Vec::new();
    for arch in Architecture::ALL {
        let cell = matrix
            .get(AppId::QueryAes.label(), arch, ReallocPolicy::Static, "Smoke")
            .expect("cell present");
        let mut rendered = String::new();
        report_json(&mut rendered, &cell.report);
        rendered.push('\n');

        let path = golden_dir().join(format!("query_aes_smoke_{}.json", arch_slug(arch)));
        if regen {
            fs::write(&path, &rendered).expect("write golden file");
            continue;
        }
        let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden file {}; generate it with IRONHIDE_REGEN_GOLDEN=1 cargo test --test golden_stats",
                path.display()
            )
        });
        if rendered != expected {
            mismatches.push(format!(
                "{arch}: counters drifted from {} (regenerate with IRONHIDE_REGEN_GOLDEN=1 \
                 if the model change is intentional)",
                path.display()
            ));
        }
    }
    assert!(mismatches.is_empty(), "{}", mismatches.join("\n"));
}

/// The golden run itself must be reproducible within a session: two
/// back-to-back sweeps render identical reports (guards against accidental
/// nondeterminism — e.g. hash-map iteration — sneaking into the simulators,
/// which would make the golden files flaky).
#[test]
fn golden_run_is_reproducible_in_process() {
    let grid = sweep_grid(
        &[AppId::QueryAes],
        &[Architecture::Mi6, Architecture::Ironhide],
        &[ReallocPolicy::Static],
        &[ScaleFactor::Smoke],
    );
    let render = || {
        let matrix =
            SweepRunner::new(MachineConfig::paper_default()).with_seed(0).run(&grid).unwrap();
        matrix.to_json()
    };
    assert_eq!(render(), render());
}
