//! Perception and mission-planning workloads.
//!
//! The paper's second class of user-level interactive applications pairs an
//! insecure VISION pipeline (RAW image processing) with one of three secure
//! consumers: the ABC (artificial bee colony) mission planner and two CNN
//! perception networks (AlexNet- and SqueezeNet-class). ImageNet inputs and
//! the real network weights are unavailable offline, so the pipeline runs on
//! synthetic RAW frames and the networks are scaled-down but structurally
//! faithful forward passes (convolution, ReLU, pooling, fully-connected /
//! fire-module squeeze-expand layers) over real floating-point arithmetic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::recorder::{AccessRecorder, Region};

// ---------------------------------------------------------------------------
// The insecure VISION pipeline
// ---------------------------------------------------------------------------

/// A square grayscale frame produced by the vision pipeline.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame side length in pixels.
    pub side: usize,
    /// Pixel values in `[0, 1]`.
    pub pixels: Vec<f32>,
}

/// The insecure RAW-image processing pipeline: synthesize a RAW frame,
/// demosaic (box average), denoise (3×3 blur) and normalise.
#[derive(Debug, Clone)]
pub struct VisionPipeline {
    rng: StdRng,
    side: usize,
    raw: Region,
    work: Region,
}

impl VisionPipeline {
    /// Creates a pipeline producing `side × side` frames, with its buffers
    /// laid out starting at `base`.
    pub fn new(seed: u64, side: usize, base: u64) -> Self {
        let raw = Region::new(base, 4, (side * side) as u64);
        let work = Region::new(raw.end(), 4, (side * side) as u64);
        VisionPipeline { rng: StdRng::seed_from_u64(seed), side, raw, work }
    }

    /// Processes one RAW frame and returns the cleaned-up result.
    pub fn next_frame(&mut self, rec: &mut AccessRecorder) -> Frame {
        let n = self.side * self.side;
        // Capture: synthetic RAW sensor data with a moving gradient + noise.
        let phase: f32 = self.rng.gen();
        let mut raw = vec![0f32; n];
        for (i, value) in raw.iter_mut().enumerate() {
            let x = (i % self.side) as f32 / self.side as f32;
            let y = (i / self.side) as f32 / self.side as f32;
            let noise: f32 = self.rng.gen::<f32>() * 0.1;
            *value = ((x + y + phase) * std::f32::consts::PI).sin().abs() * 0.9 + noise;
            rec.write(&self.raw, i as u64);
        }
        // Denoise: 3×3 box blur.
        let mut out = vec![0f32; n];
        for y in 0..self.side {
            for x in 0..self.side {
                let mut acc = 0.0;
                let mut cnt = 0.0;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nx = x as i64 + dx;
                        let ny = y as i64 + dy;
                        if nx >= 0
                            && ny >= 0
                            && (nx as usize) < self.side
                            && (ny as usize) < self.side
                        {
                            let idx = ny as usize * self.side + nx as usize;
                            rec.read(&self.raw, idx as u64);
                            acc += raw[idx];
                            cnt += 1.0;
                        }
                    }
                }
                let idx = y * self.side + x;
                out[idx] = (acc / cnt).clamp(0.0, 1.0);
                rec.write(&self.work, idx as u64);
            }
        }
        Frame { side: self.side, pixels: out }
    }
}

// ---------------------------------------------------------------------------
// The ABC mission planner (secure)
// ---------------------------------------------------------------------------

/// A self-adaptive artificial-bee-colony optimiser searching for a low-cost
/// waypoint placement given the obstacle density extracted from a frame.
#[derive(Debug, Clone)]
pub struct BeeColony {
    rng: StdRng,
    food_sources: Vec<Vec<f64>>,
    fitness: Vec<f64>,
    trials: Vec<u32>,
    limit: u32,
    sources: Region,
    scratch: Region,
}

impl BeeColony {
    /// Creates a colony of `colony_size` food sources over a `dims`-dimensional
    /// search space, with state laid out at `base`.
    pub fn new(seed: u64, colony_size: usize, dims: usize, base: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let food_sources: Vec<Vec<f64>> = (0..colony_size)
            .map(|_| (0..dims).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let sources = Region::new(base, 8, (colony_size * dims) as u64);
        let scratch = Region::new(sources.end(), 8, colony_size as u64);
        BeeColony {
            rng,
            fitness: vec![f64::INFINITY; colony_size],
            trials: vec![0; colony_size],
            limit: 10,
            food_sources,
            sources,
            scratch,
        }
    }

    /// Objective: waypoints should avoid dense regions of the frame while
    /// staying short (a weighted Rastrigin-like surface modulated by the
    /// frame's mean intensity).
    fn objective(position: &[f64], obstacle_density: f64) -> f64 {
        position
            .iter()
            .map(|x| x * x - 0.3 * (3.0 * std::f64::consts::PI * x).cos() + 0.3)
            .sum::<f64>()
            * (1.0 + obstacle_density)
    }

    /// Runs one employed/onlooker/scout cycle against `frame`, returning the
    /// best objective value found so far.
    pub fn step(&mut self, frame: &Frame, rec: &mut AccessRecorder) -> f64 {
        let density =
            frame.pixels.iter().map(|p| *p as f64).sum::<f64>() / frame.pixels.len() as f64;
        let dims = self.food_sources[0].len();
        let colony = self.food_sources.len();
        // Employed bees: perturb each source along one dimension.
        for i in 0..colony {
            let d = self.rng.gen_range(0..dims);
            let partner = self.rng.gen_range(0..colony);
            let phi: f64 = self.rng.gen_range(-1.0..1.0);
            rec.read(&self.sources, (i * dims + d) as u64);
            rec.read(&self.sources, (partner * dims + d) as u64);
            let mut candidate = self.food_sources[i].clone();
            candidate[d] += phi * (candidate[d] - self.food_sources[partner][d]);
            let new_fit = Self::objective(&candidate, density);
            let old_fit = Self::objective(&self.food_sources[i], density);
            rec.write(&self.scratch, i as u64);
            if new_fit < old_fit {
                self.food_sources[i] = candidate;
                self.fitness[i] = new_fit;
                self.trials[i] = 0;
                rec.write(&self.sources, (i * dims + d) as u64);
            } else {
                self.fitness[i] = old_fit;
                self.trials[i] += 1;
            }
        }
        // Scout bees: abandon exhausted sources.
        for i in 0..colony {
            if self.trials[i] > self.limit {
                for d in 0..dims {
                    self.food_sources[i][d] = self.rng.gen_range(-1.0..1.0);
                    rec.write(&self.sources, (i * dims + d) as u64);
                }
                self.trials[i] = 0;
                self.fitness[i] = Self::objective(&self.food_sources[i], density);
            }
        }
        self.fitness.iter().cloned().fold(f64::INFINITY, f64::min)
    }
}

// ---------------------------------------------------------------------------
// CNN perception (secure)
// ---------------------------------------------------------------------------

/// The two perception-network shapes evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CnnShape {
    /// AlexNet-class: larger convolutions and two dense layers — a bigger
    /// weight working set with strong reuse.
    AlexNetClass,
    /// SqueezeNet-class: fire modules (1×1 squeeze + mixed expand), far fewer
    /// weights.
    SqueezeNetClass,
}

/// A small but structurally faithful convolutional network forward pass.
#[derive(Debug, Clone)]
pub struct Cnn {
    shape: CnnShape,
    conv1: Vec<f32>,
    conv2: Vec<f32>,
    dense: Vec<f32>,
    classes: usize,
    weights_region: Region,
    activations_region: Region,
}

impl Cnn {
    /// Builds a network of the given shape with deterministic pseudo-random
    /// weights, laid out at `base`.
    pub fn new(shape: CnnShape, seed: u64, base: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (c1, c2, dense, classes) = match shape {
            CnnShape::AlexNetClass => (16 * 9, 32 * 16 * 9, 32 * 64, 16),
            CnnShape::SqueezeNetClass => (8 * 9, 8 * 8 * 9, 8 * 16, 16),
        };
        let mut gen = |n: usize| (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect::<Vec<f32>>();
        let conv1 = gen(c1);
        let conv2 = gen(c2);
        let dense_w = gen(dense);
        let total_weights = (c1 + c2 + dense) as u64;
        let weights_region = Region::new(base, 4, total_weights);
        let activations_region = Region::new(weights_region.end(), 4, 64 * 64);
        Cnn { shape, conv1, conv2, dense: dense_w, classes, weights_region, activations_region }
    }

    /// The network shape.
    pub fn shape(&self) -> CnnShape {
        self.shape
    }

    /// Runs a forward pass over `frame` and returns the class scores.
    pub fn forward(&self, frame: &Frame, rec: &mut AccessRecorder) -> Vec<f32> {
        // Layer 1: 3×3 convolution + ReLU + 2×2 max-pool over the frame.
        let side = frame.side;
        let kernels1 = self.conv1.len() / 9;
        let pooled_side = (side / 2).max(1);
        let mut pooled = vec![0f32; pooled_side * pooled_side];
        for k in 0..kernels1 {
            for y in (0..side.saturating_sub(2)).step_by(2) {
                for x in (0..side.saturating_sub(2)).step_by(2) {
                    let mut acc = 0.0;
                    for ky in 0..3 {
                        for kx in 0..3 {
                            let w = self.conv1[k * 9 + ky * 3 + kx];
                            rec.read(&self.weights_region, (k * 9 + ky * 3 + kx) as u64);
                            let p = frame.pixels[(y + ky) * side + (x + kx)];
                            acc += w * p;
                        }
                    }
                    let idx = (y / 2) * pooled_side + (x / 2);
                    pooled[idx] = pooled[idx].max(acc.max(0.0));
                    rec.write(&self.activations_region, idx as u64);
                }
            }
        }
        // Layer 2: grouped 3×3 convolution over the pooled map (a stand-in for
        // the middle convolutional / fire stack), global average per kernel.
        //
        // The convolution is separable here: every kernel sweeps the same
        // ReLU'd pooled map, so the nine per-tap window sums are computed
        // once and each kernel reduces to a 9-element dot product — the
        // naive form re-walked the whole map per kernel and dominated the
        // entire interaction-generation cost of the AlexNet-class network.
        // The memory-touch stream is the simulation contract and is emitted
        // unchanged (same touches counted, same sampled references kept, in
        // the same order, via the recorder's bulk cyclic form); only the
        // floating-point association of the discarded class scores differs.
        let kernels2 = (self.conv2.len() / 9).max(1);
        let len2 = self.conv2.len();
        let weights_base = self.conv1.len() as u64;
        let span = pooled_side.saturating_sub(2);
        let positions = (span * span) as u64;
        let mut window_sums = [0f32; 9];
        for ky in 0..3 {
            for kx in 0..3 {
                let mut acc = 0.0;
                for y in 0..span {
                    for x in 0..span {
                        acc += pooled[(y + ky) * pooled_side + (x + kx)].max(0.0);
                    }
                }
                window_sums[ky * 3 + kx] = acc;
            }
        }
        let mut features = vec![0f32; kernels2];
        for (k, feature) in features.iter_mut().enumerate() {
            // The nine wrapped weight indices `(k*9 + tap) % len`, invariant
            // across the spatial sweep.
            let base = (k * 9) % len2;
            let mut taps = [0u64; 9];
            let mut acc = 0.0;
            for (j, slot) in taps.iter_mut().enumerate() {
                let idx = base + j;
                let wi = if idx >= len2 { idx - len2 } else { idx };
                *slot = weights_base + wi as u64;
                acc += self.conv2[wi] * window_sums[j];
            }
            if positions > 0 {
                rec.read_cycle(&self.weights_region, &taps, positions);
            }
            *feature = acc / (pooled_side * pooled_side) as f32;
            rec.write(&self.activations_region, (pooled.len() + k) as u64);
        }
        // Dense layer: features -> class scores.
        let mut scores = vec![0f32; self.classes];
        for (c, score) in scores.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (f, feat) in features.iter().enumerate() {
                let wi = (c * features.len() + f) % self.dense.len();
                rec.read(&self.weights_region, (self.conv1.len() + self.conv2.len() + wi) as u64);
                acc += self.dense[wi] * feat;
            }
            *score = acc;
        }
        scores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(side: usize) -> Frame {
        let mut pipeline = VisionPipeline::new(3, side, 0);
        pipeline.next_frame(&mut AccessRecorder::unsampled())
    }

    #[test]
    fn pipeline_produces_normalised_frames() {
        let mut rec = AccessRecorder::unsampled();
        let mut p = VisionPipeline::new(1, 16, 0);
        let f = p.next_frame(&mut rec);
        assert_eq!(f.pixels.len(), 256);
        assert!(f.pixels.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(rec.recorded() > 256, "capture + blur must touch memory");
    }

    #[test]
    fn pipeline_is_deterministic_per_seed() {
        let mut a = VisionPipeline::new(9, 8, 0);
        let mut b = VisionPipeline::new(9, 8, 0);
        let fa = a.next_frame(&mut AccessRecorder::unsampled());
        let fb = b.next_frame(&mut AccessRecorder::unsampled());
        assert_eq!(fa.pixels, fb.pixels);
    }

    #[test]
    fn bee_colony_improves_over_iterations() {
        let mut colony = BeeColony::new(11, 16, 6, 0);
        let f = frame(8);
        let mut rec = AccessRecorder::unsampled();
        let first = colony.step(&f, &mut rec);
        let mut best = first;
        for _ in 0..30 {
            best = best.min(colony.step(&f, &mut rec));
        }
        assert!(best <= first, "ABC must never regress its best solution");
        assert!(best.is_finite());
    }

    #[test]
    fn cnn_forward_is_deterministic_and_sized() {
        let f = frame(16);
        let net = Cnn::new(CnnShape::AlexNetClass, 5, 0);
        let mut rec = AccessRecorder::unsampled();
        let a = net.forward(&f, &mut rec);
        let b = net.forward(&f, &mut AccessRecorder::unsampled());
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
        assert!(rec.recorded() > 100);
    }

    #[test]
    fn alexnet_class_touches_more_weights_than_squeezenet_class() {
        let f = frame(16);
        let alex = Cnn::new(CnnShape::AlexNetClass, 5, 0);
        let sqz = Cnn::new(CnnShape::SqueezeNetClass, 5, 0);
        let mut rec_a = AccessRecorder::unsampled();
        let mut rec_s = AccessRecorder::unsampled();
        alex.forward(&f, &mut rec_a);
        sqz.forward(&f, &mut rec_s);
        assert!(
            rec_a.total_touches() > rec_s.total_touches(),
            "the AlexNet-class network has the larger weight working set"
        );
    }

    #[test]
    fn different_shapes_report_their_shape() {
        assert_eq!(Cnn::new(CnnShape::SqueezeNetClass, 1, 0).shape(), CnnShape::SqueezeNetClass);
    }
}
