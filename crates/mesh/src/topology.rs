//! Mesh topology: node identifiers, coordinates and neighbourhood structure.

use std::fmt;

/// Identifier of a mesh node (a tile: core + private caches + shared L2
/// slice + router). Nodes are numbered in row-major order: node
/// `y * width + x` sits at coordinate `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(v: usize) -> Self {
        NodeId(v)
    }
}

/// A 2-D coordinate on the mesh. `x` grows to the east, `y` grows to the
/// south, with `(0, 0)` in the north-west corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Coord {
    /// Column (east-west position).
    pub x: usize,
    /// Row (north-south position).
    pub y: usize,
}

impl Coord {
    /// Creates a coordinate from a column and a row.
    pub fn new(x: usize, y: usize) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance between two coordinates, i.e. the number of links a
    /// dimension-ordered route between them traverses.
    pub fn manhattan(self, other: Coord) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// Which edge of the mesh a memory controller is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshEdge {
    /// Row `0`.
    North,
    /// Row `height - 1`.
    South,
    /// Column `0`.
    West,
    /// Column `width - 1`.
    East,
}

/// A rectangular 2-D mesh of tiles.
///
/// The default experimental machine in the paper uses 64 of the Tile-Gx72's
/// tiles arranged as an 8×8 mesh, with four memory controllers on the north
/// and south edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MeshTopology {
    width: usize,
    height: usize,
}

impl MeshTopology {
    /// Creates a `width × height` mesh.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        MeshTopology { width, height }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of nodes (tiles) in the mesh.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Returns the coordinate of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coord(&self, node: NodeId) -> Coord {
        assert!(node.0 < self.nodes(), "node {node} out of range");
        Coord::new(node.0 % self.width, node.0 / self.width)
    }

    /// Returns the node at coordinate `coord`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinate lies outside the mesh.
    pub fn node_at(&self, coord: Coord) -> NodeId {
        assert!(coord.x < self.width && coord.y < self.height, "coordinate {coord} out of range");
        NodeId(coord.y * self.width + coord.x)
    }

    /// Iterates over all nodes in row-major order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes()).map(NodeId)
    }

    /// Returns the nodes of row `y`, west to east.
    pub fn row(&self, y: usize) -> Vec<NodeId> {
        assert!(y < self.height, "row {y} out of range");
        (0..self.width).map(|x| self.node_at(Coord::new(x, y))).collect()
    }

    /// Returns the nodes of column `x`, north to south.
    pub fn column(&self, x: usize) -> Vec<NodeId> {
        assert!(x < self.width, "column {x} out of range");
        (0..self.height).map(|y| self.node_at(Coord::new(x, y))).collect()
    }

    /// Manhattan distance (link count) between two nodes.
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.coord(a).manhattan(self.coord(b))
    }

    /// The (up to four) neighbours of `node`.
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let c = self.coord(node);
        let mut out = Vec::with_capacity(4);
        if c.x > 0 {
            out.push(self.node_at(Coord::new(c.x - 1, c.y)));
        }
        if c.x + 1 < self.width {
            out.push(self.node_at(Coord::new(c.x + 1, c.y)));
        }
        if c.y > 0 {
            out.push(self.node_at(Coord::new(c.x, c.y - 1)));
        }
        if c.y + 1 < self.height {
            out.push(self.node_at(Coord::new(c.x, c.y + 1)));
        }
        out
    }

    /// Returns the node a memory controller attached to `edge` at offset
    /// `index` along that edge is adjacent to. Memory traffic to that
    /// controller is injected/ejected at this node.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds the edge length.
    pub fn edge_node(&self, edge: MeshEdge, index: usize) -> NodeId {
        match edge {
            MeshEdge::North => {
                assert!(index < self.width);
                self.node_at(Coord::new(index, 0))
            }
            MeshEdge::South => {
                assert!(index < self.width);
                self.node_at(Coord::new(index, self.height - 1))
            }
            MeshEdge::West => {
                assert!(index < self.height);
                self.node_at(Coord::new(0, index))
            }
            MeshEdge::East => {
                assert!(index < self.height);
                self.node_at(Coord::new(self.width - 1, index))
            }
        }
    }

    /// Places `count` memory controllers evenly along the given edges,
    /// alternating between them (the Tile-Gx72 places its four controllers on
    /// the north and south edges). Returns the attachment node of each
    /// controller in order.
    pub fn place_controllers(&self, count: usize, edges: &[MeshEdge]) -> Vec<NodeId> {
        assert!(!edges.is_empty(), "at least one edge is required");
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let edge = edges[i % edges.len()];
            let along = i / edges.len();
            let edge_len = match edge {
                MeshEdge::North | MeshEdge::South => self.width,
                MeshEdge::West | MeshEdge::East => self.height,
            };
            let per_edge = count.div_ceil(edges.len()).max(1);
            let spacing = edge_len / (per_edge + 1);
            let index = ((along + 1) * spacing.max(1)).min(edge_len - 1);
            out.push(self.edge_node(edge, index));
        }
        out
    }
}

impl Default for MeshTopology {
    /// The paper's 8×8 experimental mesh.
    fn default() -> Self {
        MeshTopology::new(8, 8)
    }
}

/// A set of mesh nodes backed by an inline fixed-size bitmask, for O(1)
/// membership tests on the hot path (e.g. "is this node a memory-controller
/// attachment point?", "does this tile belong to the secure cluster?") where
/// a `Vec::contains` linear scan or an ordered-set lookup would be wasteful.
///
/// The storage is four inline words (up to [`NodeSet::MAX_NODES`] nodes — an
/// order of magnitude above the paper's 64-tile machine), so the set is
/// `Copy` and never touches the heap. That matters beyond convenience: the
/// coherence directory in `ironhide-cache` embeds one `NodeSet` of sharers
/// in every directory entry, and directory transactions sit on the L1-miss
/// path, which must stay allocation-free (see `tests/zero_alloc.rs`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeSet {
    bits: [u64; Self::WORDS],
}

impl NodeSet {
    const WORDS: usize = 4;

    /// The largest node index (exclusive) an inline set can hold.
    pub const MAX_NODES: usize = Self::WORDS * 64;

    /// Creates an empty set sized for a mesh of `nodes` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds [`NodeSet::MAX_NODES`].
    pub fn with_capacity(nodes: usize) -> Self {
        assert!(nodes <= Self::MAX_NODES, "NodeSet supports up to {} nodes", Self::MAX_NODES);
        NodeSet::default()
    }

    /// Inserts `node`. Returns whether the node was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `node` is at or beyond [`NodeSet::MAX_NODES`].
    pub fn insert(&mut self, node: NodeId) -> bool {
        assert!(node.0 < Self::MAX_NODES, "NodeSet supports up to {} nodes", Self::MAX_NODES);
        let (word, bit) = (node.0 / 64, node.0 % 64);
        let newly = self.bits[word] & (1 << bit) == 0;
        self.bits[word] |= 1 << bit;
        newly
    }

    /// Removes `node`. Returns whether it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        let (word, bit) = (node.0 / 64, node.0 % 64);
        match self.bits.get_mut(word) {
            Some(w) => {
                let present = *w & (1 << bit) != 0;
                *w &= !(1 << bit);
                present
            }
            None => false,
        }
    }

    /// Whether `node` is in the set (false for nodes beyond the mask).
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let (word, bit) = (node.0 / 64, node.0 % 64);
        self.bits.get(word).is_some_and(|w| w & (1 << bit) != 0)
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Removes every node from the set.
    pub fn clear(&mut self) {
        self.bits = [0; Self::WORDS];
    }

    /// Adds every member of `other` to this set (the in-place union). Four
    /// word-ORs, so accumulating a sharer census over many directory entries
    /// stays O(1) per entry.
    pub fn union_with(&mut self, other: &NodeSet) {
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            *w |= *o;
        }
    }

    /// Iterates over the members in ascending node order. The order is part
    /// of the contract: the coherence layer sends invalidations in iteration
    /// order, and simulation results must not depend on set insertion
    /// history.
    pub fn iter(&self) -> NodeSetIter {
        NodeSetIter { bits: self.bits, word: 0 }
    }
}

/// Ascending-order iterator over a [`NodeSet`] (see [`NodeSet::iter`]).
#[derive(Debug, Clone)]
pub struct NodeSetIter {
    bits: [u64; NodeSet::WORDS],
    word: usize,
}

impl Iterator for NodeSetIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.word < NodeSet::WORDS {
            let w = self.bits[self.word];
            if w == 0 {
                self.word += 1;
                continue;
            }
            let bit = w.trailing_zeros() as usize;
            self.bits[self.word] &= w - 1; // clear the lowest set bit
            return Some(NodeId(self.word * 64 + bit));
        }
        None
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = NodeSet::default();
        for n in iter {
            set.insert(n);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_numbering() {
        let m = MeshTopology::new(8, 8);
        assert_eq!(m.coord(NodeId(0)), Coord::new(0, 0));
        assert_eq!(m.coord(NodeId(7)), Coord::new(7, 0));
        assert_eq!(m.coord(NodeId(8)), Coord::new(0, 1));
        assert_eq!(m.coord(NodeId(63)), Coord::new(7, 7));
        assert_eq!(m.node_at(Coord::new(3, 4)), NodeId(35));
    }

    #[test]
    fn coord_roundtrip() {
        let m = MeshTopology::new(6, 9);
        for n in m.iter_nodes() {
            assert_eq!(m.node_at(m.coord(n)), n);
        }
    }

    #[test]
    fn manhattan_distance() {
        let m = MeshTopology::new(8, 8);
        assert_eq!(m.distance(NodeId(0), NodeId(63)), 14);
        assert_eq!(m.distance(NodeId(0), NodeId(0)), 0);
        assert_eq!(m.distance(NodeId(0), NodeId(7)), 7);
        assert_eq!(m.distance(NodeId(0), NodeId(56)), 7);
    }

    #[test]
    fn neighbors_corner_and_center() {
        let m = MeshTopology::new(8, 8);
        assert_eq!(m.neighbors(NodeId(0)).len(), 2);
        assert_eq!(m.neighbors(NodeId(7)).len(), 2);
        assert_eq!(m.neighbors(NodeId(9)).len(), 4);
        let center = m.node_at(Coord::new(4, 4));
        assert_eq!(m.neighbors(center).len(), 4);
    }

    #[test]
    fn rows_and_columns() {
        let m = MeshTopology::new(4, 3);
        assert_eq!(m.row(1), vec![NodeId(4), NodeId(5), NodeId(6), NodeId(7)]);
        assert_eq!(m.column(2), vec![NodeId(2), NodeId(6), NodeId(10)]);
    }

    #[test]
    fn edge_nodes() {
        let m = MeshTopology::new(8, 8);
        assert_eq!(m.edge_node(MeshEdge::North, 3), NodeId(3));
        assert_eq!(m.edge_node(MeshEdge::South, 3), NodeId(59));
        assert_eq!(m.edge_node(MeshEdge::West, 2), NodeId(16));
        assert_eq!(m.edge_node(MeshEdge::East, 2), NodeId(23));
    }

    #[test]
    fn controller_placement_on_north_south() {
        let m = MeshTopology::new(8, 8);
        let mcs = m.place_controllers(4, &[MeshEdge::North, MeshEdge::South]);
        assert_eq!(mcs.len(), 4);
        // Two on the north edge (row 0), two on the south edge (row 7).
        let north = mcs.iter().filter(|n| m.coord(**n).y == 0).count();
        let south = mcs.iter().filter(|n| m.coord(**n).y == 7).count();
        assert_eq!(north, 2);
        assert_eq!(south, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let m = MeshTopology::new(2, 2);
        m.coord(NodeId(4));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimension_panics() {
        MeshTopology::new(0, 4);
    }

    #[test]
    fn node_set_membership() {
        let mut set = NodeSet::with_capacity(64);
        assert!(set.is_empty());
        assert!(set.insert(NodeId(3)));
        assert!(!set.insert(NodeId(3)), "re-insertion reports not-new");
        set.insert(NodeId(63));
        assert!(set.contains(NodeId(3)));
        assert!(set.contains(NodeId(63)));
        assert!(!set.contains(NodeId(4)));
        assert!(!set.contains(NodeId(1000)), "out-of-range nodes are absent, not a panic");
        assert_eq!(set.len(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn node_set_grows_and_collects() {
        let set: NodeSet = [NodeId(0), NodeId(130), NodeId(7)].into_iter().collect();
        assert!(set.contains(NodeId(130)));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn node_set_iterates_in_ascending_order() {
        let set: NodeSet = [NodeId(200), NodeId(3), NodeId(64), NodeId(0)].into_iter().collect();
        let order: Vec<usize> = set.iter().map(|n| n.0).collect();
        assert_eq!(order, vec![0, 3, 64, 200]);
        let mut cleared = set;
        cleared.clear();
        assert!(cleared.is_empty());
        assert_eq!(cleared.iter().count(), 0);
        // `set` is Copy: the original is untouched by mutating the copy.
        assert_eq!(set.len(), 4);
    }

    #[test]
    #[should_panic(expected = "up to 256 nodes")]
    fn node_set_rejects_out_of_range_insert() {
        NodeSet::default().insert(NodeId(256));
    }
}
