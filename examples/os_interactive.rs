//! OS-interactive scenario (the paper's `<MEMCACHED, OS>` and
//! `<LIGHTTPD, OS>` applications): a secure service interacts with the
//! untrusted OS hundreds of thousands of times per second, so per-interaction
//! enclave costs dominate everything under SGX and MI6. IRONHIDE eliminates
//! them by pinning the service to the secure cluster.
//!
//! ```bash
//! cargo run --release --example os_interactive
//! ```

use ironhide::prelude::*;

fn main() {
    let runner = ExperimentRunner::new(MachineConfig::paper_default());

    for app_id in [AppId::MemcachedOs, AppId::LighttpdOs] {
        println!(
            "== {} (~{:.0}K secure entry/exit events per second on the prototype) ==",
            app_id.label(),
            app_id.instantiate(&ScaleFactor::Smoke).interactivity_per_second() / 1000.0
        );

        let mut reports = Vec::new();
        for arch in [
            Architecture::Insecure,
            Architecture::SgxLike,
            Architecture::Mi6,
            Architecture::Ironhide,
        ] {
            let mut app = app_id.instantiate(&ScaleFactor::Smoke);
            let report = runner.run(arch, app.as_mut()).expect("run succeeds");
            reports.push(report);
        }
        let baseline = reports[0].total_cycles as f64;
        for report in &reports {
            let overhead_share = if report.total_cycles > 0 {
                100.0 * (report.overhead_cycles as f64 / report.total_cycles as f64)
            } else {
                0.0
            };
            println!(
                "  {:<9} {:>9.3} ms   ({:.2}x insecure, {:>4.1}% spent on enclave entry/exit + purging)",
                report.arch.to_string(),
                report.total_time_ms(),
                report.total_cycles as f64 / baseline,
                overhead_share,
            );
        }
        println!();
    }

    println!(
        "Under SGX every OS call costs ~5 us of enclave entry/exit; under MI6 it also\n\
         purges every private L1/TLB and the memory-controller queues. IRONHIDE keeps\n\
         the service pinned in the secure cluster and interacts through the shared IPC\n\
         buffer, so the same requests run at near-insecure speed."
    );
}
