//! # ironhide-sim
//!
//! The trace-driven multicore timing simulator at the heart of the IRONHIDE
//! reproduction. It assembles the substrate models — the 2-D mesh NoC
//! ([`ironhide_mesh`]), functional caches/TLBs and the page-homing map
//! ([`ironhide_cache`]), and the DRAM-region/memory-controller model
//! ([`ironhide_mem`]) — into a 64-core tiled machine resembling the paper's
//! Tilera Tile-Gx72 prototype.
//!
//! The simulator is *trace driven and cycle approximate*: workloads present
//! per-process streams of virtual-address memory accesses, and the machine
//! charges each access the latency of the path it takes through the hierarchy
//! (TLB → private L1 → NoC → home L2 slice → NoC → memory controller → DRAM).
//! All security-relevant state effects are functional — purging a core really
//! empties its L1 and TLB, re-homing a page really moves which L2 slice caches
//! it — so the performance costs the paper reports (cold-miss inflation after
//! MI6 purges, capacity effects of partitioning) emerge from the model rather
//! than being constants.
//!
//! The security *policies* (enclave entry/exit protocols, cluster formation,
//! the reconfiguration heuristic) live one crate up in `ironhide-core`; this
//! crate only provides the mechanisms they drive.
//!
//! # Example
//!
//! ```
//! use ironhide_sim::config::MachineConfig;
//! use ironhide_sim::machine::Machine;
//! use ironhide_sim::process::SecurityClass;
//! use ironhide_mesh::NodeId;
//!
//! let mut machine = Machine::new(MachineConfig::small_test());
//! let pid = machine.create_process("demo", SecurityClass::Insecure);
//! let cold = machine.access(NodeId(0), pid, 0x1000, false);
//! let warm = machine.access(NodeId(0), pid, 0x1000, false);
//! assert!(warm < cold, "second access must hit in the private L1");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod fence;
pub mod machine;
pub mod process;
pub mod stats;
pub mod stream;
pub mod time;
pub mod trace;

pub use config::{ConfigError, LatencyConfig, MachineConfig};
pub use fence::{FlushCosts, FlushResource, FlushSet, TemporalFenceConfig};
pub use machine::{AccessPath, Machine};
pub use process::{ProcessId, SecurityClass};
pub use stats::{MachineStats, ProcessStats};
pub use stream::{MemRef, RefRun, RefStream};
pub use time::Clock;
pub use trace::LatencyTrace;
