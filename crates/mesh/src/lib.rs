//! # ironhide-mesh
//!
//! A 2-D mesh on-chip network (NoC) model for the IRONHIDE reproduction.
//!
//! The paper's target machine (a Tilera Tile-Gx72-class tiled multicore) routes
//! all cache and memory traffic over a 2-D mesh with *deterministic* dimension
//! ordered routing. IRONHIDE's strong isolation depends on two properties of
//! this network:
//!
//! 1. **Determinism** — given a source, a destination and a routing function
//!    (X-Y or Y-X), the path is fully determined, so it can be *audited* at
//!    cluster-formation time.
//! 2. **Containment** — with rows of cores assigned to a cluster and that
//!    cluster's memory controllers on its outside edge, dimension-ordered
//!    routing never carries a packet through a router owned by the other
//!    cluster. When a cluster boundary cuts through a row, the complementary
//!    routing order (Y-X) restores containment, which is why the paper requires
//!    *bidirectional* deterministic routing.
//!
//! This crate provides the topology ([`MeshTopology`]), the routing functions
//! ([`Route`], [`RoutingAlgorithm`]), a cluster map with containment checking
//! and automatic routing-order selection ([`ClusterMap`]), a latency/contention
//! model ([`LatencyModel`], [`LinkLoad`]) and traffic statistics ([`NocStats`]).
//!
//! # Example
//!
//! ```
//! use ironhide_mesh::{MeshTopology, NodeId, RoutingAlgorithm};
//!
//! let mesh = MeshTopology::new(8, 8);
//! let route = mesh.route(NodeId(0), NodeId(63), RoutingAlgorithm::XY);
//! assert_eq!(route.hops(), 14); // 7 in X, then 7 in Y
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod latency;
pub mod packet;
pub mod routing;
pub mod stats;
pub mod topology;

/// The shared deterministic hasher, re-exported for downstream crates.
pub use ironhide_fx as fx;

pub use cluster::{ClusterId, ClusterMap, IsolationViolation};
pub use ironhide_fx::{FxHashMap, FxHashSet, FxHasher};
pub use latency::{LatencyModel, LinkLoad, NocLatencyConfig};
pub use packet::{Packet, PacketKind};
pub use routing::{HopTable, Route, RouteIter, RouteLinks, RoutingAlgorithm};
pub use stats::NocStats;
pub use topology::{Coord, MeshEdge, MeshTopology, NodeId, NodeSet, NodeSetIter};
