//! Real-time graph analytics scenario (the paper's `<SSSP, GRAPH>` and
//! `<TC, GRAPH>` user-level applications): an insecure road-network update
//! generator feeds secure graph kernels, and IRONHIDE's core re-allocation
//! predictor picks very different cluster sizes for the two kernels.
//!
//! ```bash
//! cargo run --release --example graph_analytics
//! ```

use ironhide::prelude::*;

fn run(app_id: AppId, runner: &ExperimentRunner) {
    println!("== {} ==", app_id.label());
    let mut mi6_app = app_id.instantiate(&ScaleFactor::Smoke);
    let mi6 = runner.run(Architecture::Mi6, mi6_app.as_mut()).expect("MI6 run");
    let mut ih_app = app_id.instantiate(&ScaleFactor::Smoke);
    let ih = runner.run(Architecture::Ironhide, ih_app.as_mut()).expect("IRONHIDE run");

    println!(
        "  MI6      : {:>8.3} ms ({:.3} ms purging, L1 miss {:.1}%)",
        mi6.total_time_ms(),
        mi6.overhead_time_ms(),
        mi6.l1_miss_rate * 100.0
    );
    println!(
        "  IRONHIDE : {:>8.3} ms (one-time reconfig {:.3} ms, L1 miss {:.1}%)",
        ih.total_time_ms(),
        ih.reconfig_time_ms(),
        ih.l1_miss_rate * 100.0
    );
    println!("  secure cluster size chosen by the heuristic: {} of 64 cores", ih.secure_cores);
    println!("  speedup over MI6: {:.2}x", ih.speedup_over(&mi6));
    println!();
}

fn main() {
    let runner = ExperimentRunner::new(MachineConfig::paper_default());
    println!("Graph analytics fed by temporal road-network updates\n");
    // PageRank scales well with cores; triangle counting is synchronisation
    // bound, so the predictor gives it a small secure cluster (the paper
    // reports 2 cores for TC and 62 for the GRAPH generator).
    run(AppId::PrGraph, &runner);
    run(AppId::TcGraph, &runner);
    run(AppId::SsspGraph, &runner);
}
