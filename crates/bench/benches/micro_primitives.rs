//! Criterion microbenchmarks of the security primitives whose per-event costs
//! the paper quotes: the MI6 purge of private state and memory-controller
//! queues (~0.19 ms per interaction event on the prototype), the IRONHIDE
//! page re-homing step behind the ~15 ms one-time reconfiguration, and the
//! shared-IPC-buffer round trip.
//!
//! These measure *simulator* time per operation (how expensive the models are
//! to run), while the figure benches report *simulated* time; both are useful
//! when extending the models.

use criterion::{criterion_group, criterion_main, Criterion};

use ironhide_core::ipc::SharedIpcBuffer;
use ironhide_mem::ControllerMask;
use ironhide_mesh::NodeId;
use ironhide_sim::config::MachineConfig;
use ironhide_sim::machine::Machine;
use ironhide_sim::process::SecurityClass;

fn warmed_machine() -> (Machine, ironhide_sim::process::ProcessId) {
    let mut m = Machine::new(MachineConfig::paper_default());
    let pid = m.create_process("bench", SecurityClass::Secure);
    for core in 0..8usize {
        for line in 0..256u64 {
            m.access(NodeId(core), pid, ((core as u64) << 20) | (line * 64), line % 3 == 0);
        }
    }
    (m, pid)
}

fn bench_purge(c: &mut Criterion) {
    c.bench_function("purge_private_64_cores", |b| {
        b.iter_batched(
            || warmed_machine().0,
            |mut m| {
                let cores: Vec<NodeId> = (0..64).map(NodeId).collect();
                m.purge_private(&cores)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("purge_memory_controllers", |b| {
        b.iter_batched(
            || warmed_machine().0,
            |mut m| m.purge_controllers(ControllerMask::first(4)),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_access_path(c: &mut Criterion) {
    c.bench_function("l1_hit_access", |b| {
        let (mut m, pid) = warmed_machine();
        m.access(NodeId(0), pid, 0x40, false);
        b.iter(|| m.access(NodeId(0), pid, 0x40, false))
    });
    c.bench_function("l2_remote_access", |b| {
        let (mut m, pid) = warmed_machine();
        b.iter_batched(
            || (),
            |_| {
                m.purge_core(NodeId(0));
                m.access(NodeId(0), pid, 0x100_000, false)
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_ipc(c: &mut Criterion) {
    c.bench_function("ipc_produce_consume_4kb", |b| {
        let mut buf = SharedIpcBuffer::paper_default();
        b.iter(|| {
            let w = buf.produce(4096);
            let r = buf.consume(4096);
            (w.len(), r.len())
        })
    });
}

criterion_group! {
    name = benches;
    // Each batched iteration builds a full 64-tile machine, so keep the
    // sample counts small; the primitives are deterministic anyway.
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_purge, bench_access_path, bench_ipc
}
criterion_main!(benches);
