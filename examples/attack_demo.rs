//! Attack demo: run the covert-channel suite against all four execution
//! architectures and print the leakage oracle's verdicts.
//!
//! Four paired attacker/victim workloads each try to smuggle a 32-bit
//! pseudo-random payload through shared microarchitecture state (L2 slice
//! occupancy, NoC link contention, TLB occupancy, the shared IPC buffer's
//! cache footprint). The oracle decodes the attacker's probe latencies and
//! reports the bit-error rate: ~0% means the channel works, ~50% means the
//! attacker is guessing.
//!
//! ```bash
//! cargo run --release --example attack_demo
//! ```

use ironhide::prelude::*;

fn main() {
    // The covert-channel testbench: one page fills one L2 slice exactly, so
    // occupancy attacks land deterministically.
    let machine = MachineConfig::attack_testbench();
    let grid = attack_grid(&Architecture::ALL, &[ScalePoint::new("Smoke")]);
    let matrix = SweepRunner::new(machine).with_seed(0).run_attacks(&grid).expect("attacks run");

    println!("Covert-channel suite on the attack testbench (32-bit balanced payloads)\n");
    println!(
        "{:<22} {:<10} {:>7} {:>10} {:>14} {:>10}",
        "channel", "arch", "BER", "bits/slot", "leak (bit/s)", "verdict"
    );
    for cell in &matrix.cells {
        let o = &cell.outcome;
        println!(
            "{:<22} {:<10} {:>6.1}% {:>10.3} {:>14.1} {:>10}",
            o.channel,
            o.arch.to_string(),
            o.ber * 100.0,
            o.capacity_bits_per_slot,
            o.capacity_bits_per_second,
            o.verdict.to_string(),
        );
    }

    let violations = matrix.differential_violations();
    assert!(violations.is_empty(), "differential security claim violated: {violations:#?}");
    println!(
        "\nDifferential result: every channel decodes its payload on the insecure shared\n\
         baseline (the attacks demonstrably work), and the same attackers decode at ~50%\n\
         BER — pure guessing — once IRONHIDE pins them into spatially isolated clusters,\n\
         with the strong-isolation audit still clean. MI6 closes the channels too, but\n\
         pays its purge cost on every enclave boundary; SGX-like enclaves leak."
    );
}
