//! Cycle/wall-clock conversion helpers.

/// Converts between core cycles and wall-clock time for a given clock
/// frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    ghz: f64,
}

impl Clock {
    /// Creates a clock running at `ghz` GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not positive.
    pub fn new(ghz: f64) -> Self {
        assert!(ghz > 0.0, "clock frequency must be positive");
        Clock { ghz }
    }

    /// The clock frequency in GHz.
    pub fn ghz(&self) -> f64 {
        self.ghz
    }

    /// Converts cycles to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: u64) -> f64 {
        cycles as f64 / self.ghz
    }

    /// Converts cycles to microseconds.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        self.cycles_to_ns(cycles) / 1_000.0
    }

    /// Converts cycles to milliseconds.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        self.cycles_to_ns(cycles) / 1_000_000.0
    }

    /// Converts cycles to seconds.
    pub fn cycles_to_s(&self, cycles: u64) -> f64 {
        self.cycles_to_ns(cycles) / 1_000_000_000.0
    }

    /// Converts microseconds to cycles (rounded).
    pub fn us_to_cycles(&self, us: f64) -> u64 {
        (us * 1_000.0 * self.ghz).round() as u64
    }

    /// Converts milliseconds to cycles (rounded).
    pub fn ms_to_cycles(&self, ms: f64) -> u64 {
        self.us_to_cycles(ms * 1_000.0)
    }
}

impl Default for Clock {
    /// A 1 GHz clock.
    fn default() -> Self {
        Clock::new(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_at_one_ghz() {
        let c = Clock::new(1.0);
        assert_eq!(c.cycles_to_ns(1_000), 1_000.0);
        assert_eq!(c.cycles_to_us(1_000), 1.0);
        assert_eq!(c.cycles_to_ms(1_000_000), 1.0);
        assert_eq!(c.us_to_cycles(5.0), 5_000);
        assert_eq!(c.ms_to_cycles(15.0), 15_000_000);
    }

    #[test]
    fn conversions_scale_with_frequency() {
        let c = Clock::new(2.0);
        assert_eq!(c.cycles_to_ns(1_000), 500.0);
        assert_eq!(c.us_to_cycles(1.0), 2_000);
    }

    #[test]
    fn roundtrip() {
        let c = Clock::new(1.2);
        let cycles = c.ms_to_cycles(0.19);
        assert!((c.cycles_to_ms(cycles) - 0.19).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        Clock::new(0.0);
    }
}
