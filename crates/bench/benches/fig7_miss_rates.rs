//! Figure 7: private L1 and shared L2 cache miss rates for each interactive
//! application under MI6 and IRONHIDE.
//!
//! Paper reference points: IRONHIDE reduces private L1 miss rates by up to
//! 5.9× (MI6 thrashes the L1 by purging it every interaction) and improves L2
//! miss rates by up to 2×, with `<TC, GRAPH>` and `<LIGHTTPD, OS>` as the
//! exceptions where IRONHIDE's asymmetric L2 allocation is slightly worse.

use ironhide_bench::{geometric_mean, print_header, print_row, Sweep};
use ironhide_core::arch::Architecture;
use ironhide_core::realloc::ReallocPolicy;
use ironhide_workloads::app::AppId;

fn main() {
    let sweep = Sweep::default();
    println!("# Figure 7: cache miss rates (%) under MI6 and IRONHIDE\n");
    print_header(&[
        "Application",
        "MI6 L1 miss %",
        "IRONHIDE L1 miss %",
        "L1 improvement",
        "MI6 L2 miss %",
        "IRONHIDE L2 miss %",
        "L2 improvement",
    ]);

    let mut l1_mi6 = Vec::new();
    let mut l1_ih = Vec::new();
    let mut l2_mi6 = Vec::new();
    let mut l2_ih = Vec::new();
    for app in AppId::ALL {
        let mi6 = sweep.run_one(app, Architecture::Mi6, ReallocPolicy::Heuristic);
        let ih = sweep.run_one(app, Architecture::Ironhide, ReallocPolicy::Heuristic);
        print_row(&[
            app.label().to_string(),
            format!("{:.1}", mi6.l1_miss_rate * 100.0),
            format!("{:.1}", ih.l1_miss_rate * 100.0),
            format!("{:.1}x", mi6.l1_miss_rate / ih.l1_miss_rate.max(1e-9)),
            format!("{:.1}", mi6.l2_miss_rate * 100.0),
            format!("{:.1}", ih.l2_miss_rate * 100.0),
            format!("{:.1}x", mi6.l2_miss_rate / ih.l2_miss_rate.max(1e-9)),
        ]);
        l1_mi6.push(mi6.l1_miss_rate * 100.0);
        l1_ih.push(ih.l1_miss_rate * 100.0);
        l2_mi6.push(mi6.l2_miss_rate * 100.0);
        l2_ih.push(ih.l2_miss_rate * 100.0);
    }

    println!("\n## Geometric means\n");
    print_header(&["Metric", "MI6", "IRONHIDE"]);
    print_row(&[
        "L1 miss rate (%)".to_string(),
        format!("{:.1}", geometric_mean(&l1_mi6)),
        format!("{:.1}", geometric_mean(&l1_ih)),
    ]);
    print_row(&[
        "L2 miss rate (%)".to_string(),
        format!("{:.1}", geometric_mean(&l2_mi6)),
        format!("{:.1}", geometric_mean(&l2_ih)),
    ]);
}
