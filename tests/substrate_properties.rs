//! Property-based tests of the substrate models (caches, TLBs, routing,
//! homing, re-allocation policies).

use proptest::prelude::*;

use ironhide::ironhide_cache::{
    CacheConfig, HomeMap, PageId, SetAssocCache, SliceId, Tlb, TlbConfig,
};
use ironhide::ironhide_core::realloc::ReallocPolicy;
use ironhide::ironhide_mesh::{MeshTopology, NodeId, RoutingAlgorithm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Deterministic routes always have Manhattan-distance length and stay
    /// inside the mesh.
    #[test]
    fn routes_have_manhattan_length(src in 0usize..64, dst in 0usize..64, yx in any::<bool>()) {
        let mesh = MeshTopology::new(8, 8);
        let alg = if yx { RoutingAlgorithm::YX } else { RoutingAlgorithm::XY };
        let route = mesh.route(NodeId(src), NodeId(dst), alg);
        prop_assert_eq!(route.hops(), mesh.distance(NodeId(src), NodeId(dst)));
        for (a, b) in route.links() {
            prop_assert_eq!(mesh.distance(a, b), 1);
            prop_assert!(a.0 < 64 && b.0 < 64);
        }
    }

    /// The cache never holds more lines than its capacity, hit+miss always
    /// equals accesses, and a purge empties it completely.
    #[test]
    fn cache_occupancy_and_counters_are_consistent(addrs in prop::collection::vec(0u64..0x10_000, 1..300)) {
        let mut cache = SetAssocCache::new(CacheConfig::new(2048, 4, 64));
        for (i, a) in addrs.iter().enumerate() {
            cache.access(*a, i % 4 == 0);
            prop_assert!(cache.resident_lines() <= cache.config().lines());
        }
        let stats = *cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
        cache.purge();
        prop_assert_eq!(cache.resident_lines(), 0);
        // Everything misses after a purge.
        for a in addrs.iter().take(8) {
            prop_assert!(cache.access(*a, false).is_miss() || cache.probe(*a));
        }
    }

    /// A line that was just accessed always hits immediately afterwards
    /// (temporal locality is never broken by the replacement policy).
    #[test]
    fn immediate_rereference_always_hits(addrs in prop::collection::vec(0u64..0x100_000, 1..200)) {
        let mut cache = SetAssocCache::new(CacheConfig::paper_l1());
        for a in addrs {
            cache.access(a, false);
            prop_assert!(cache.access(a, false).is_hit());
        }
    }

    /// The TLB never exceeds its configured capacity.
    #[test]
    fn tlb_respects_capacity(pages in prop::collection::vec(0u64..10_000, 1..500)) {
        let mut tlb = Tlb::new(TlbConfig::new(32, 4096));
        for p in pages {
            tlb.access(p * 4096);
            prop_assert!(tlb.resident() <= 32);
        }
    }

    /// Local homing keeps every page on an allowed slice, before and after a
    /// re-homing event.
    #[test]
    fn homing_never_leaves_the_allowed_set(pages in prop::collection::vec(0u64..4096, 1..80), shrink_to in 1usize..8) {
        let slices: Vec<SliceId> = (0..16).map(SliceId).collect();
        let mut map = HomeMap::local(slices.clone());
        for (i, p) in pages.iter().enumerate() {
            map.pin(PageId(*p), slices[i % slices.len()]).unwrap();
        }
        let new_allowed: Vec<SliceId> = (0..shrink_to).map(SliceId).collect();
        map.set_allowed(new_allowed.clone());
        map.rehome_all().unwrap();
        for p in &pages {
            prop_assert!(new_allowed.contains(&map.home_of(PageId(*p)).unwrap()));
        }
    }

    /// Every re-allocation policy returns a secure-cluster size that leaves
    /// both clusters non-empty, and Optimal is never worse than Heuristic on
    /// the surface it optimises.
    #[test]
    fn realloc_decisions_are_valid_and_optimal_is_best(opt in 1usize..64, offset in -30i32..30) {
        let surface = |n: usize| ((n as f64) - opt as f64).powi(2);
        for policy in [
            ReallocPolicy::Static,
            ReallocPolicy::Heuristic,
            ReallocPolicy::Optimal,
            ReallocPolicy::FixedOffset(offset),
        ] {
            let d = policy.decide(64, 32, surface);
            prop_assert!(d.secure_cores >= 1 && d.secure_cores <= 63);
        }
        let best = ReallocPolicy::Optimal.decide(64, 32, surface).secure_cores;
        let heuristic = ReallocPolicy::Heuristic.decide(64, 32, surface).secure_cores;
        prop_assert!(surface(best) <= surface(heuristic));
    }
}
