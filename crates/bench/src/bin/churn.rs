//! Reconfiguration-storm benchmark: the cost of `ClusterManager::reconfigure`
//! under churn.
//!
//! The ROADMAP's multi-tenant scenario drives thousands of cluster
//! reconfigurations per simulated second, each a stalled purge → rehome →
//! scrub sequence. This harness measures that path in isolation: it warms a
//! paper-default machine (two processes, real pinned pages, resident caches
//! and directories), then runs a seed-deterministic open-loop storm of
//! alternating cluster shapes and times **only** the `reconfigure` calls.
//!
//! Every storm runs twice from identical initial states: once through the
//! scalar reference reconfiguration path (`Machine::set_reconfig_reference`,
//! the pre-batching per-pin/per-line implementation kept as the byte-identity
//! oracle) and once through the default batched path. The harness asserts the
//! two passes agree on the stall-cycle checksum and the pages-rehomed count —
//! an in-process differential gate on every benchmark run — and reports both
//! throughputs plus their ratio, so the committed `BENCH_7.json` carries the
//! speedup claim *and* the evidence the optimisation is observably inert.
//!
//! The full grid also re-runs the BENCH_6 baseline sweeps (full + smoke) and
//! embeds their simulated-cycle checksums, pinning the storm measurement to a
//! simulator whose end-to-end semantics are byte-unchanged.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ironhide-bench --bin churn            # full storm
//! cargo run --release -p ironhide-bench --bin churn -- --smoke # CI smoke
//! cargo run --release -p ironhide-bench --bin churn -- --out path.json
//! ```

use std::time::Instant;

use ironhide_core::arch::Architecture;
use ironhide_core::cluster::ClusterManager;
use ironhide_core::realloc::ReallocPolicy;
use ironhide_core::sweep::SweepRunner;
use ironhide_mesh::{ClusterId, NodeId};
use ironhide_sim::config::MachineConfig;
use ironhide_sim::machine::Machine;
use ironhide_sim::process::{ProcessId, SecurityClass};
use ironhide_workloads::app::{sweep_grid, AppId, ScaleFactor};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Master seed of the storm (arbitrary but fixed forever: changing it would
/// make the stall-cycle checksum incomparable across PRs).
const MASTER_SEED: u64 = 7;

/// Master seed of the embedded baseline sweeps (must stay the BENCH_6 seed so
/// the embedded checksums are the pinned 102451907 / 9755096 values).
const BASELINE_SEED: u64 = 2;

/// Secure-cluster shapes the storm alternates between. Row-major splits on
/// the paper's 8×8 mesh; every consecutive pair differs, so every
/// reconfiguration moves tiles, purges slices and re-homes pages.
const SHAPES: [usize; 6] = [8, 16, 24, 32, 40, 56];

/// One pass's measurement.
struct StormResult {
    wall_s: f64,
    rate: u64,
    stall_checksum: u64,
    pages_rehomed: u64,
    scrub_probes: u64,
}

struct StormParams {
    reconfigs: u64,
    warm_pages: u64,
}

fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(0)
}

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_7.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: churn [--smoke] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let label = if smoke { "smoke" } else { "full" };
    let params = if smoke {
        StormParams { reconfigs: 40, warm_pages: 64 }
    } else {
        StormParams { reconfigs: 200, warm_pages: 128 }
    };

    eprintln!("churn: running {label} storm ({} reconfigs, reference pass)...", params.reconfigs);
    let reference = run_storm(&params, true);
    eprintln!("churn: running {label} storm ({} reconfigs, batched pass)...", params.reconfigs);
    let batched = run_storm(&params, false);

    // The in-harness differential gate: the batched protocol must be
    // observably identical to the scalar reference, stall cycle for stall
    // cycle, before its throughput may be reported.
    if reference.stall_checksum != batched.stall_checksum {
        eprintln!(
            "churn: DIVERGENCE — batched stall checksum {} != reference {}",
            batched.stall_checksum, reference.stall_checksum
        );
        std::process::exit(1);
    }
    if reference.pages_rehomed != batched.pages_rehomed {
        eprintln!(
            "churn: DIVERGENCE — batched pages_rehomed {} != reference {}",
            batched.pages_rehomed, reference.pages_rehomed
        );
        std::process::exit(1);
    }

    // Full mode: pin the storm to an end-to-end-unchanged simulator by
    // re-deriving the BENCH_6 baseline checksums.
    let baseline_checksums = if smoke {
        vec![("smoke", baseline_checksum(true))]
    } else {
        vec![("full_grid", baseline_checksum(false)), ("smoke", baseline_checksum(true))]
    };

    let speedup =
        if reference.rate > 0 { batched.rate as f64 / reference.rate as f64 } else { 0.0 };
    let report = render_report(label, &params, &reference, &batched, speedup, &baseline_checksums);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("churn: wrote {out_path}");
    println!("{report}");
}

/// Builds the warmed two-process machine and cluster manager every storm pass
/// starts from. Identical across passes by construction (the machine is
/// byte-deterministic and the warm-up is fixed).
fn prepare(params: &StormParams) -> (Machine, ClusterManager, ProcessId, ProcessId) {
    let mut machine = Machine::new(MachineConfig::paper_default());
    let secure = machine.create_process("tenant-secure", SecurityClass::Secure);
    let insecure = machine.create_process("tenant-insecure", SecurityClass::Insecure);
    let (manager, _) =
        ClusterManager::form(&mut machine, secure, insecure, SHAPES[3]).expect("initial clusters");
    warm(&mut machine, &manager, secure, insecure, 0, params.warm_pages);
    (machine, manager, secure, insecure)
}

/// Touches pages `base..base + pages` per process from cores spread over the
/// process's cluster, so pins, L1/L2 lines and directory entries are all
/// resident when a reconfiguration hits. The storm advances `base` between
/// iterations — a sliding window, like real tenants continuously allocating:
/// re-touched pages repopulate the caches, fresh pages allocate and pin
/// round-robin over the *current* allowed slices, so every later shrink has
/// real pages to move (a fixed working set converges to pins inside the
/// always-allowed slice range and the storm degenerates to pure purges).
fn warm(
    machine: &mut Machine,
    manager: &ClusterManager,
    secure: ProcessId,
    insecure: ProcessId,
    base: u64,
    pages: u64,
) {
    let secure_cores: Vec<NodeId> = manager.cores_iter(ClusterId::Secure).collect();
    let insecure_cores: Vec<NodeId> = manager.cores_iter(ClusterId::Insecure).collect();
    for p in base..base + pages {
        let vaddr = p * 4096;
        let sc = secure_cores[p as usize % secure_cores.len()];
        let ic = insecure_cores[p as usize % insecure_cores.len()];
        machine.access(sc, secure, vaddr, p % 3 == 0);
        machine.access(ic, insecure, vaddr, p % 3 == 1);
        // A second reader per page gives the directories Shared entries, so
        // the scrub's sharer census has real work.
        machine.access(secure_cores[(p as usize + 1) % secure_cores.len()], secure, vaddr, false);
    }
}

/// Runs one seed-deterministic storm pass, timing only the `reconfigure`
/// calls, and returns its measurement.
fn run_storm(params: &StormParams, reference: bool) -> StormResult {
    let (mut machine, mut manager, secure, insecure) = prepare(params);
    machine.set_reconfig_reference(reference);
    let mut rng = StdRng::seed_from_u64(MASTER_SEED);
    let mut current = SHAPES[3];
    let mut stall_checksum = 0u64;
    let mut stalled = std::time::Duration::ZERO;
    for i in 0..params.reconfigs {
        let idx = (rng.next_u64() % SHAPES.len() as u64) as usize;
        let mut target = SHAPES[idx];
        if target == current {
            target = SHAPES[(idx + 1) % SHAPES.len()];
        }
        let start = Instant::now();
        let cycles =
            manager.reconfigure(&mut machine, secure, insecure, target).expect("valid storm shape");
        stalled += start.elapsed();
        stall_checksum = stall_checksum.wrapping_add(cycles);
        current = target;
        // Open-loop tenant activity between reconfigurations (untimed): the
        // window slides a quarter of its width per iteration, so caches and
        // directories are resident *and* fresh pages keep pinning onto the
        // current cluster shape, as real churn would.
        warm(
            &mut machine,
            &manager,
            secure,
            insecure,
            (i + 1) * params.warm_pages / 4,
            params.warm_pages,
        );
    }
    let wall_s = stalled.as_secs_f64();
    let rate = if wall_s > 0.0 { (params.reconfigs as f64 / wall_s).round() as u64 } else { 0 };
    StormResult {
        wall_s,
        rate,
        stall_checksum,
        pages_rehomed: machine.stats().pages_rehomed,
        scrub_probes: machine.scrub_probes(),
    }
}

/// Re-runs the BENCH_6 baseline sweep (smoke or full) and returns its
/// simulated-cycle checksum.
fn baseline_checksum(smoke: bool) -> u64 {
    let apps: Vec<AppId> =
        if smoke { vec![AppId::QueryAes, AppId::PrGraph] } else { AppId::ALL.to_vec() };
    let archs = if smoke {
        vec![Architecture::Mi6, Architecture::Ironhide]
    } else {
        Architecture::ALL.to_vec()
    };
    let grid = sweep_grid(&apps, &archs, &[ReallocPolicy::Heuristic], &[ScaleFactor::Smoke]);
    let runner =
        SweepRunner::new(MachineConfig::paper_default()).with_threads(1).with_seed(BASELINE_SEED);
    let matrix = runner.run(&grid).unwrap_or_else(|e| {
        eprintln!("churn: embedded baseline sweep failed: {e}");
        std::process::exit(1);
    });
    matrix.cells.iter().map(|c| c.report.total_cycles).sum()
}

/// Renders the measurement as deterministic-layout JSON (timing fields vary
/// run to run; everything else, including both checksums, must not).
fn render_report(
    grid_label: &str,
    params: &StormParams,
    reference: &StormResult,
    batched: &StormResult,
    speedup: f64,
    baseline_checksums: &[(&str, u64)],
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"reconfiguration_storm\",\n");
    out.push_str(&format!("  \"grid\": \"{grid_label}\",\n"));
    out.push_str(&format!("  \"master_seed\": {MASTER_SEED},\n"));
    out.push_str(&format!("  \"reconfigs\": {},\n", params.reconfigs));
    out.push_str(&format!("  \"warm_pages_per_process\": {},\n", params.warm_pages));
    for (name, r) in [("reference", reference), ("batched", batched)] {
        out.push_str(&format!("  \"{name}\": {{\n"));
        out.push_str(&format!("    \"wall_seconds\": {:.6},\n", r.wall_s));
        out.push_str(&format!("    \"reconfigs_per_sec\": {},\n", r.rate));
        out.push_str(&format!("    \"stall_cycle_checksum\": {},\n", r.stall_checksum));
        out.push_str(&format!("    \"pages_rehomed\": {},\n", r.pages_rehomed));
        out.push_str(&format!("    \"scrub_probes\": {}\n", r.scrub_probes));
        out.push_str("  },\n");
    }
    out.push_str(&format!("  \"speedup\": {speedup:.2},\n"));
    out.push_str("  \"baseline_checksums\": {\n");
    for (i, (name, sum)) in baseline_checksums.iter().enumerate() {
        let sep = if i + 1 == baseline_checksums.len() { "" } else { "," };
        out.push_str(&format!("    \"{name}\": {sum}{sep}\n"));
    }
    out.push_str("  },\n");
    out.push_str(&format!("  \"peak_rss_bytes\": {},\n", peak_rss_bytes()));
    out.push_str(&format!("  \"available_parallelism\": {}\n", available_parallelism()));
    out.push_str("}\n");
    out
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}
