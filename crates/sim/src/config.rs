//! Machine configuration.

use crate::fence::TemporalFenceConfig;
use ironhide_cache::{CacheConfig, DirectoryConfig, TlbConfig};
use ironhide_mem::DramConfig;
use ironhide_mesh::NocLatencyConfig;

/// An inconsistency in a [`MachineConfig`], reported as a value so campaign
/// harnesses can log the bad geometry and move on instead of aborting
/// mid-sweep. `expect`/`panic!` on it only at bin entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// The mesh has zero tiles (`mesh_width * mesh_height == 0`).
    ZeroCores,
    /// More tiles than the directory sharer sets can track.
    TooManyCores {
        /// Requested tile count.
        cores: usize,
        /// Maximum trackable tile count.
        max: usize,
    },
    /// No memory controllers.
    ZeroControllers,
    /// A zero or negative clock frequency.
    NonPositiveClock,
    /// A zero-byte DRAM region.
    EmptyDramRegion,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroCores => write!(f, "machine must have at least one core"),
            ConfigError::TooManyCores { cores, max } => {
                write!(f, "directory sharer sets support up to {max} cores, got {cores}")
            }
            ConfigError::ZeroControllers => {
                write!(f, "machine must have at least one memory controller")
            }
            ConfigError::NonPositiveClock => write!(f, "clock frequency must be positive"),
            ConfigError::EmptyDramRegion => write!(f, "DRAM regions must be non-empty"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Fixed latencies of the machine, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyConfig {
    /// Private L1 hit latency.
    pub l1_hit: u64,
    /// Shared L2 slice access latency (tag + data array, excluding the NoC).
    pub l2_hit: u64,
    /// Page-table walk latency charged on a TLB miss.
    pub page_walk: u64,
    /// Cycles to flush-and-invalidate one private cache line during a purge
    /// (the prototype reads a dummy buffer through the L1, so every line costs
    /// roughly an L2 round trip).
    pub purge_line: u64,
    /// Cycles for the memory-fence portion of a purge
    /// (`tmc_mem_fence`/`tmc_mem_fence_node`: wait until all dirty data has
    /// drained to the L2 slices and DRAM).
    pub purge_fence: u64,
    /// Cycles to invalidate one TLB entry during a purge.
    pub purge_tlb_entry: u64,
    /// Cycles to re-home one page of shared-L2 data during an IRONHIDE
    /// cluster reconfiguration (unmap, set-home, remap).
    pub rehome_page: u64,
    /// Pipeline flush cost of an ordinary process context switch.
    pub context_switch: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            l1_hit: 2,
            l2_hit: 11,
            page_walk: 60,
            purge_line: 260,
            purge_tlb_entry: 40,
            purge_fence: 45_000,
            rehome_page: 900,
            context_switch: 1_500,
        }
    }
}

/// Full description of the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Mesh width (columns of tiles).
    pub mesh_width: usize,
    /// Mesh height (rows of tiles).
    pub mesh_height: usize,
    /// Private L1 data cache geometry (per tile).
    pub l1: CacheConfig,
    /// Shared L2 slice geometry (per tile).
    pub l2_slice: CacheConfig,
    /// Coherence-directory geometry of each home slice (see
    /// [`ironhide_cache::Directory`]). Bounded like the real SRAM structure,
    /// so directory conflicts — and the conflict covert channel — exist.
    pub directory: DirectoryConfig,
    /// Private data TLB geometry (per tile).
    pub tlb: TlbConfig,
    /// DRAM device parameters (per controller).
    pub dram: DramConfig,
    /// Number of memory controllers.
    pub controllers: usize,
    /// Size of each DRAM region in bytes (each controller maps one secure and
    /// one insecure region).
    pub dram_region_bytes: u64,
    /// Core clock frequency in GHz, used to convert cycles to wall-clock time.
    pub clock_ghz: f64,
    /// Fixed-latency parameters.
    pub latency: LatencyConfig,
    /// NoC latency parameters.
    pub noc: NocLatencyConfig,
    /// Temporal-fence flush policy applied at domain switches when the
    /// machine runs under the `TemporalFence` architecture (ignored by every
    /// other architecture). Defaults to [`TemporalFenceConfig::off`], which
    /// flushes nothing and charges nothing.
    pub temporal_fence: TemporalFenceConfig,
}

impl MachineConfig {
    /// The paper's experimental machine: 64 tiles (8×8 mesh), 32 KB 4-way L1,
    /// 256 KB 8-way L2 slice and a 32-entry TLB per tile, four memory
    /// controllers, 1.2 GHz clock (Tile-Gx72 class).
    pub fn paper_default() -> Self {
        MachineConfig {
            mesh_width: 8,
            mesh_height: 8,
            l1: CacheConfig::paper_l1(),
            l2_slice: CacheConfig::paper_l2_slice(),
            directory: DirectoryConfig::for_l2_slice(&CacheConfig::paper_l2_slice()),
            tlb: TlbConfig::paper_dtlb(),
            dram: DramConfig::default(),
            controllers: 4,
            dram_region_bytes: 1 << 30,
            clock_ghz: 1.2,
            latency: LatencyConfig::default(),
            noc: NocLatencyConfig::default(),
            temporal_fence: TemporalFenceConfig::off(),
        }
    }

    /// A deliberately tiny machine (4 tiles, small caches) for fast unit and
    /// property tests.
    pub fn small_test() -> Self {
        MachineConfig {
            mesh_width: 2,
            mesh_height: 2,
            l1: CacheConfig::new(1024, 2, 64),
            l2_slice: CacheConfig::new(4096, 4, 64),
            directory: DirectoryConfig::for_l2_slice(&CacheConfig::new(4096, 4, 64)),
            tlb: TlbConfig::new(4, 4096),
            dram: DramConfig::default(),
            controllers: 2,
            dram_region_bytes: 1 << 22,
            clock_ghz: 1.0,
            latency: LatencyConfig::default(),
            noc: NocLatencyConfig::default(),
            temporal_fence: TemporalFenceConfig::off(),
        }
    }

    /// The covert-channel testbench: an 8-tile (4×2) mesh with the tiny cache
    /// geometries of [`MachineConfig::small_test`]. Sized so that one 4 KB
    /// page exactly fills one L2 slice (64 lines = 16 sets × 4 ways), which
    /// makes page-granular occupancy attacks land deterministically, while
    /// the 4-wide rows give the NoC contention channel multi-hop routes to
    /// congest. Used by `ironhide-attacks` and the security regression suite.
    pub fn attack_testbench() -> Self {
        MachineConfig {
            mesh_width: 4,
            mesh_height: 2,
            l1: CacheConfig::new(1024, 2, 64),
            l2_slice: CacheConfig::new(4096, 4, 64),
            directory: DirectoryConfig::for_l2_slice(&CacheConfig::new(4096, 4, 64)),
            tlb: TlbConfig::new(4, 4096),
            dram: DramConfig::default(),
            controllers: 2,
            dram_region_bytes: 1 << 22,
            clock_ghz: 1.0,
            latency: LatencyConfig::default(),
            noc: NocLatencyConfig::default(),
            temporal_fence: TemporalFenceConfig::off(),
        }
    }

    /// Number of tiles (cores) in the machine.
    pub fn cores(&self) -> usize {
        self.mesh_width * self.mesh_height
    }

    /// Validates internal consistency, reporting the first inconsistency
    /// found (zero cores, zero controllers, a non-positive clock, …) as a
    /// typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores() == 0 {
            return Err(ConfigError::ZeroCores);
        }
        if self.cores() > ironhide_mesh::NodeSet::MAX_NODES {
            return Err(ConfigError::TooManyCores {
                cores: self.cores(),
                max: ironhide_mesh::NodeSet::MAX_NODES,
            });
        }
        if self.controllers == 0 {
            return Err(ConfigError::ZeroControllers);
        }
        if self.clock_ghz <= 0.0 {
            return Err(ConfigError::NonPositiveClock);
        }
        if self.dram_region_bytes == 0 {
            return Err(ConfigError::EmptyDramRegion);
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let c = MachineConfig::paper_default();
        c.validate().unwrap();
        assert_eq!(c.cores(), 64);
        assert_eq!(c.controllers, 4);
        assert!(c.clock_ghz > 1.0);
    }

    #[test]
    fn small_machine_is_valid() {
        let c = MachineConfig::small_test();
        c.validate().unwrap();
        assert_eq!(c.cores(), 4);
    }

    #[test]
    fn attack_testbench_geometry() {
        let c = MachineConfig::attack_testbench();
        c.validate().unwrap();
        assert_eq!(c.cores(), 8);
        assert_eq!(c.controllers, 2);
        // One page fills one slice exactly: the occupancy-channel contract.
        let lines_per_page = c.tlb.page_bytes as u64 / c.l2_slice.line_bytes as u64;
        let lines_per_slice = (c.l2_slice.size_bytes / c.l2_slice.line_bytes) as u64;
        assert_eq!(lines_per_page, lines_per_slice);
    }

    #[test]
    fn bad_geometry_reported_as_typed_errors() {
        let mut c = MachineConfig::small_test();
        c.mesh_width = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroCores));
        assert!(format!("{}", ConfigError::ZeroCores).contains("at least one core"));

        let mut c = MachineConfig::small_test();
        c.controllers = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroControllers));

        let mut c = MachineConfig::small_test();
        c.clock_ghz = 0.0;
        assert_eq!(c.validate(), Err(ConfigError::NonPositiveClock));

        let mut c = MachineConfig::small_test();
        c.dram_region_bytes = 0;
        assert_eq!(c.validate(), Err(ConfigError::EmptyDramRegion));

        let mut c = MachineConfig::small_test();
        c.mesh_width = 1_000;
        c.mesh_height = 1_000;
        assert!(matches!(c.validate(), Err(ConfigError::TooManyCores { .. })));
    }

    #[test]
    fn default_latencies_ordered() {
        let l = LatencyConfig::default();
        assert!(l.l1_hit < l.l2_hit);
        assert!(l.l2_hit < l.page_walk);
        assert!(l.purge_fence > l.purge_line);
    }
}
