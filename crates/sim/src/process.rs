//! Processes, security classes and per-process address-space state.

use std::fmt;

use ironhide_cache::{HomeMap, PageId, SliceId};
use ironhide_mem::RegionId;
use ironhide_mesh::FxHashMap;

/// Identifier of a simulated process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub usize);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// The security class of a process, which determines the DRAM regions it may
/// own and (under the clustered architectures) the cluster it is pinned to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityClass {
    /// A security-critical process that runs inside an enclave (SGX/MI6) or in
    /// the secure cluster (IRONHIDE) after attestation.
    Secure,
    /// An ordinary process, including the untrusted OS.
    Insecure,
}

impl SecurityClass {
    /// The opposite class.
    pub fn other(self) -> Self {
        match self {
            SecurityClass::Secure => SecurityClass::Insecure,
            SecurityClass::Insecure => SecurityClass::Secure,
        }
    }
}

impl fmt::Display for SecurityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SecurityClass::Secure => write!(f, "secure"),
            SecurityClass::Insecure => write!(f, "insecure"),
        }
    }
}

/// Mutable per-process state kept by the machine: the page table, the DRAM
/// regions the process may allocate from, and the L2 home map for its pages.
#[derive(Debug, Clone)]
pub struct ProcessState {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Security class.
    pub class: SecurityClass,
    /// Virtual-to-physical page mapping (page numbers, not byte addresses).
    /// Keyed with the deterministic Fx hasher: the page table is probed on
    /// every TLB miss, and SipHash plus its per-map random state is both
    /// slower and a source of cross-process iteration-order nondeterminism.
    pub page_table: FxHashMap<u64, u64>,
    /// DRAM regions this process allocates physical pages from.
    pub regions: Vec<RegionId>,
    /// Allocation cursor: physical pages handed out so far.
    pub allocated_pages: u64,
    /// L2 home map for the process's pages.
    pub home: HomeMap,
}

impl ProcessState {
    /// Creates a process with an empty address space. The home map starts
    /// with no allowed slices; the machine assigns slices when the process is
    /// admitted to a partition or cluster.
    pub fn new(name: impl Into<String>, class: SecurityClass) -> Self {
        ProcessState {
            name: name.into(),
            class,
            page_table: FxHashMap::default(),
            regions: Vec::new(),
            allocated_pages: 0,
            home: HomeMap::local(Vec::<SliceId>::new()),
        }
    }

    /// Number of distinct virtual pages touched so far.
    pub fn footprint_pages(&self) -> usize {
        self.page_table.len()
    }

    /// Returns the pinned home slices of all of the process's physical pages
    /// (used when auditing isolation).
    pub fn physical_pages(&self) -> Vec<PageId> {
        self.page_table.values().map(|p| PageId(*p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn security_class_other() {
        assert_eq!(SecurityClass::Secure.other(), SecurityClass::Insecure);
        assert_eq!(SecurityClass::Insecure.other(), SecurityClass::Secure);
    }

    #[test]
    fn new_process_is_empty() {
        let p = ProcessState::new("aes", SecurityClass::Secure);
        assert_eq!(p.footprint_pages(), 0);
        assert_eq!(p.allocated_pages, 0);
        assert!(p.physical_pages().is_empty());
        assert_eq!(p.class, SecurityClass::Secure);
        assert_eq!(p.name, "aes");
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcessId(3).to_string(), "pid3");
        assert_eq!(SecurityClass::Secure.to_string(), "secure");
        assert_eq!(SecurityClass::Insecure.to_string(), "insecure");
    }
}
