//! Deterministic, parallel experiment sweeps.
//!
//! The paper's evaluation is a grid of experiments: every interactive
//! application, under every execution architecture, for several core
//! re-allocation policies and input scales. [`SweepRunner`] executes such a
//! {app × architecture × policy × scale} grid with rayon-style data
//! parallelism while keeping the result **bit-for-bit deterministic**:
//!
//! * every cell derives its own seed from the sweep's master seed and the
//!   cell's key (never from thread identity or execution order), and
//! * results are collected in grid order regardless of which worker finished
//!   first,
//!
//! so a [`SweepMatrix`] serialises byte-identically whether the sweep ran on
//! 1 or 64 threads. The matrix exposes the orderings behind the paper's
//! figures as queryable summaries: Figure 6 completion times
//! ([`SweepMatrix::fig6`]), Figure 7 miss-rate deltas
//! ([`SweepMatrix::fig7`]) and Figure 8 re-allocation-policy sensitivity
//! ([`SweepMatrix::fig8`]).
//!
//! The application axis is decoupled from any concrete workload crate: a
//! sweep runs [`AppSpec`]s — a label plus a thread-safe factory closure — so
//! `ironhide-workloads` (or any downstream user) can feed its own
//! applications in without `ironhide-core` depending on them.

use std::fmt;
use std::sync::{Arc, Mutex};

use rayon::prelude::*;
use rayon::ThreadPoolBuilder;

use ironhide_sim::config::MachineConfig;
use ironhide_sim::fence::{FlushSet, TemporalFenceConfig};
use ironhide_sim::machine::Machine;

use crate::app::InteractiveApp;
use crate::arch::{ArchParams, Architecture};
use crate::attack::AttackOutcome;
use crate::realloc::ReallocPolicy;
use crate::runner::{CompletionReport, ExperimentRunner, RunError};

// ---------------------------------------------------------------------------
// Grid axes
// ---------------------------------------------------------------------------

/// A named point on the scale axis of a sweep grid (e.g. `"Smoke"` or
/// `"Paper"`). The label is the identity: factories receive it and map it to
/// whatever concrete sizing their workload understands.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ScalePoint {
    label: String,
}

impl ScalePoint {
    /// Creates a scale point with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        ScalePoint { label: label.into() }
    }

    /// The point's label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Display for ScalePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// A thread-safe factory building a fresh application instance for one sweep
/// cell, from the cell's scale point and seed.
pub type AppFactory = Arc<dyn Fn(&ScalePoint, u64) -> Box<dyn InteractiveApp> + Send + Sync>;

/// A point on the application axis: a display label plus a thread-safe
/// factory that builds a fresh application instance for one sweep cell.
///
/// The factory receives the cell's [`ScalePoint`] and the cell's seed.
/// Deterministic workloads (like the paper's nine applications) may ignore
/// the seed; randomised workloads must draw **all** their randomness from it
/// so the sweep stays reproducible.
#[derive(Clone)]
pub struct AppSpec {
    label: String,
    factory: AppFactory,
}

impl AppSpec {
    /// Creates an application spec from a label and a factory.
    pub fn new<F>(label: impl Into<String>, factory: F) -> Self
    where
        F: Fn(&ScalePoint, u64) -> Box<dyn InteractiveApp> + Send + Sync + 'static,
    {
        AppSpec { label: label.into(), factory: Arc::new(factory) }
    }

    /// The application's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Builds a fresh instance for the given scale and cell seed.
    pub fn instantiate(&self, scale: &ScalePoint, seed: u64) -> Box<dyn InteractiveApp> {
        (self.factory)(scale, seed)
    }
}

impl fmt::Debug for AppSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AppSpec").field("label", &self.label).finish_non_exhaustive()
    }
}

/// The full cartesian grid a sweep executes.
#[derive(Debug, Clone, Default)]
pub struct SweepGrid {
    /// Applications to run.
    pub apps: Vec<AppSpec>,
    /// Execution architectures to compare.
    pub architectures: Vec<Architecture>,
    /// Core re-allocation policies (only meaningful for architectures with
    /// spatial clusters, but every cell records the policy it ran under).
    pub policies: Vec<ReallocPolicy>,
    /// Input scales.
    pub scales: Vec<ScalePoint>,
}

impl SweepGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        SweepGrid::default()
    }

    /// Adds an application.
    pub fn with_app(mut self, app: AppSpec) -> Self {
        self.apps.push(app);
        self
    }

    /// Sets the architecture axis.
    pub fn with_architectures(mut self, archs: &[Architecture]) -> Self {
        self.architectures = archs.to_vec();
        self
    }

    /// Sets the policy axis.
    pub fn with_policies(mut self, policies: &[ReallocPolicy]) -> Self {
        self.policies = policies.to_vec();
        self
    }

    /// Adds a scale point.
    pub fn with_scale(mut self, scale: ScalePoint) -> Self {
        self.scales.push(scale);
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.apps.len() * self.architectures.len() * self.policies.len() * self.scales.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into cell keys, in the canonical (scale-major, then
    /// app, architecture, policy) order the matrix stores them in.
    pub fn keys(&self) -> Vec<CellKey> {
        self.expanded().into_iter().map(|(key, _, _)| key).collect()
    }

    /// The single source of truth for cell ordering: every consumer (the
    /// runner, `keys()`) derives its cells from this expansion, so the
    /// canonical order and the per-cell seeds can never drift apart.
    fn expanded(&self) -> Vec<(CellKey, &AppSpec, &ScalePoint)> {
        let mut cells = Vec::with_capacity(self.len());
        for scale in &self.scales {
            for app in &self.apps {
                for arch in &self.architectures {
                    for policy in &self.policies {
                        let key = CellKey {
                            app: app.label.clone(),
                            arch: *arch,
                            policy: *policy,
                            scale: scale.label.clone(),
                        };
                        cells.push((key, app, scale));
                    }
                }
            }
        }
        cells
    }
}

/// Identity of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellKey {
    /// Application label.
    pub app: String,
    /// Execution architecture.
    pub arch: Architecture,
    /// Core re-allocation policy.
    pub policy: ReallocPolicy,
    /// Scale label.
    pub scale: String,
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} | {} | {} | {}", self.app, self.arch, self.policy, self.scale)
    }
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A sweep failure: the failing cell plus the underlying run error.
#[derive(Debug, Clone)]
pub struct SweepError {
    /// The cell that failed.
    pub cell: CellKey,
    /// Why it failed.
    pub error: RunError,
}

impl fmt::Display for SweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sweep cell [{}] failed: {}", self.cell, self.error)
    }
}

impl std::error::Error for SweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Executes sweep grids in parallel, deterministically.
///
/// # Determinism contract
///
/// Two runs with the same grid, machine configuration, parameters and master
/// seed produce [`SweepMatrix`]es whose [`SweepMatrix::to_json`] renderings
/// are byte-identical, **regardless of the thread count** — each cell's seed
/// is a pure function of the master seed and the cell key, and results are
/// collected in grid order.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    machine: MachineConfig,
    params: ArchParams,
    threads: usize,
    master_seed: u64,
}

impl SweepRunner {
    /// Creates a runner simulating machines built from `machine`.
    pub fn new(machine: MachineConfig) -> Self {
        SweepRunner { machine, params: ArchParams::default(), threads: 0, master_seed: 0 }
    }

    /// Overrides the architecture parameters used for every cell.
    pub fn with_params(mut self, params: ArchParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the worker thread count (0 = one per available core).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the master seed all per-cell seeds derive from.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// The seed a given cell would run with.
    pub fn cell_seed(&self, key: &CellKey) -> u64 {
        derive_cell_seed(self.master_seed, key)
    }

    /// The master seed (for sibling grid runners in this crate).
    pub(crate) fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// The configured worker thread count (for sibling grid runners).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// The machine configuration cells simulate (for sibling grid runners).
    pub(crate) fn machine_config(&self) -> &MachineConfig {
        &self.machine
    }

    /// Runs every cell of `grid` and collects the reports in grid order.
    ///
    /// # Errors
    ///
    /// Returns the first (in grid order) [`SweepError`] if any cell fails;
    /// partial results are discarded.
    pub fn run(&self, grid: &SweepGrid) -> Result<SweepMatrix, SweepError> {
        // The canonical expansion is shared with SweepGrid::keys(), so the
        // parallel section only touches immutable shared state and the cell
        // order always matches the documented one.
        let cells = grid.expanded();

        let pool = ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("sweep thread pool builds");
        // Cells recycle simulated machines through per-worker sharded pools
        // (see WorkerPools): each worker pops from and pushes to its own
        // shard only, so the recycling hot path shares no mutable state
        // across workers.
        let machine_pools = WorkerPools::new(pool.current_num_threads());
        let results: Vec<Result<SweepCell, SweepError>> = pool
            .install(|| cells.par_iter().map(|cell| self.run_cell(cell, &machine_pools)).collect());

        let mut out = Vec::with_capacity(results.len());
        for result in results {
            out.push(result?);
        }
        Ok(SweepMatrix { master_seed: self.master_seed, cells: out })
    }

    fn run_cell(
        &self,
        (key, app, scale): &(CellKey, &AppSpec, &ScalePoint),
        machine_pools: &WorkerPools,
    ) -> Result<SweepCell, SweepError> {
        let seed = derive_cell_seed(self.master_seed, key);
        let mut instance = app.instantiate(scale, seed);
        let runner = ExperimentRunner::new(self.machine.clone())
            .with_params(self.params)
            .with_realloc(key.policy);
        let (report, machine) = runner
            .run_recycled(key.arch, instance.as_mut(), machine_pools.take())
            .map_err(|error| SweepError { cell: key.clone(), error })?;
        machine_pools.give(machine);
        Ok(SweepCell { key: key.clone(), seed, report })
    }
}

/// Per-worker machine pools for recycling simulated machines across sweep
/// cells without cross-worker sharing.
///
/// Machine construction is ~0.5 ms of way/directory-array allocation that
/// would otherwise be paid per cell, so cells recycle machines (pop one,
/// reset-pristine, run, push back). Earlier revisions recycled through one
/// `Mutex<Vec<Machine>>` shared by every worker, which serialised the pool on
/// a single lock; the pools are now *sharded per worker*: worker `i` (by
/// [`rayon::current_thread_index`]) recycles exclusively through shard `i`,
/// so no shard is ever contended and workers share no mutable state on the
/// hot path (the `Mutex` per shard only satisfies `Sync` — its owner is the
/// only thread that locks it). Recycling cannot affect results — a recycled
/// machine is byte-identical to a fresh one — so determinism is unaffected
/// by which worker ran which cell.
///
/// The pools live for one `run`/`run_attacks` call, which also guarantees
/// every pooled machine was built from that call's `MachineConfig` (the
/// contract `run_recycled` requires).
pub(crate) struct WorkerPools {
    shards: Vec<Mutex<Vec<Machine>>>,
}

impl WorkerPools {
    /// Creates one shard per worker (at least one, for the serial path).
    pub(crate) fn new(workers: usize) -> Self {
        WorkerPools { shards: (0..workers.max(1)).map(|_| Mutex::new(Vec::new())).collect() }
    }

    /// The calling worker's own shard. Work running outside an indexed
    /// worker (the serial fast path executes on the caller's thread) falls
    /// back to shard 0, which is equally uncontended there — it is the only
    /// thread running.
    fn shard(&self) -> &Mutex<Vec<Machine>> {
        let idx = rayon::current_thread_index().unwrap_or(0);
        &self.shards[idx % self.shards.len()]
    }

    /// Pops a recycled machine from the calling worker's shard.
    pub(crate) fn take(&self) -> Option<Machine> {
        self.shard().lock().ok().and_then(|mut shard| shard.pop())
    }

    /// Returns a machine to the calling worker's shard for the next cell.
    pub(crate) fn give(&self, machine: Machine) {
        if let Ok(mut shard) = self.shard().lock() {
            shard.push(machine);
        }
    }
}

/// Derives a cell's seed from the master seed and the cell key only — thread
/// identity and execution order never enter the computation.
fn derive_cell_seed(master_seed: u64, key: &CellKey) -> u64 {
    derive_seed(master_seed, &key.to_string())
}

/// Seed derivation shared by the performance, attack and tenancy grids:
/// FNV-1a over the rendered key, then a SplitMix64 finalisation so related
/// keys map to well-separated seeds.
pub(crate) fn derive_seed(master_seed: u64, key: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = hash ^ master_seed.rotate_left(32);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Attack matrix
// ---------------------------------------------------------------------------

/// A thread-safe closure running one attack cell to completion: given the
/// machine configuration, the architecture under attack, the scale point and
/// the cell's derived seed, it instantiates the channel, co-schedules the
/// attacker/victim pair and decodes the transmission. `ironhide-attacks`
/// provides these via its `LeakageOracle`.
///
/// The final argument is the cell's recycled-machine slot: the runner hands
/// in a pooled machine from a previous cell (or `None`), and a factory that
/// simulates should run through `AttackRunner::run_recycled` and leave the
/// machine in the slot for the next cell. Machine construction is ~0.5 ms of
/// way/directory-array allocation that would otherwise be paid per cell;
/// recycling cannot affect results because `Machine::reset_pristine` is
/// byte-equivalent to a fresh build. Factories that do not simulate may
/// ignore the slot.
pub type AttackFactory = Arc<
    dyn Fn(
            &MachineConfig,
            Architecture,
            &ScalePoint,
            u64,
            &mut Option<Machine>,
        ) -> Result<AttackOutcome, RunError>
        + Send
        + Sync,
>;

/// A point on the attack grid's channel axis: a display label plus the
/// closure executing the full attack for one cell.
#[derive(Clone)]
pub struct AttackSpec {
    label: String,
    factory: AttackFactory,
}

impl AttackSpec {
    /// Creates a channel spec from a label and an attack closure.
    pub fn new<F>(label: impl Into<String>, factory: F) -> Self
    where
        F: Fn(
                &MachineConfig,
                Architecture,
                &ScalePoint,
                u64,
                &mut Option<Machine>,
            ) -> Result<AttackOutcome, RunError>
            + Send
            + Sync
            + 'static,
    {
        AttackSpec { label: label.into(), factory: Arc::new(factory) }
    }

    /// The channel's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Runs the attack for one cell, recycling (and handing back) the
    /// machine in `slot`.
    pub fn execute(
        &self,
        config: &MachineConfig,
        arch: Architecture,
        scale: &ScalePoint,
        seed: u64,
        slot: &mut Option<Machine>,
    ) -> Result<AttackOutcome, RunError> {
        (self.factory)(config, arch, scale, seed, slot)
    }
}

impl fmt::Debug for AttackSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AttackSpec").field("label", &self.label).finish_non_exhaustive()
    }
}

/// The {channel × architecture × scale} grid the security suite executes.
#[derive(Debug, Clone, Default)]
pub struct AttackGrid {
    /// Covert channels to attempt.
    pub channels: Vec<AttackSpec>,
    /// Execution architectures to attack.
    pub architectures: Vec<Architecture>,
    /// Input scales (payload length per the channel implementation).
    pub scales: Vec<ScalePoint>,
}

impl AttackGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        AttackGrid::default()
    }

    /// Adds a channel.
    pub fn with_channel(mut self, channel: AttackSpec) -> Self {
        self.channels.push(channel);
        self
    }

    /// Sets the architecture axis.
    pub fn with_architectures(mut self, archs: &[Architecture]) -> Self {
        self.architectures = archs.to_vec();
        self
    }

    /// Adds a scale point.
    pub fn with_scale(mut self, scale: ScalePoint) -> Self {
        self.scales.push(scale);
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.channels.len() * self.architectures.len() * self.scales.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into cell keys, in the canonical (scale-major, then
    /// channel, then architecture) order the matrix stores them in.
    pub fn keys(&self) -> Vec<AttackCellKey> {
        self.expanded().into_iter().map(|(key, _, _)| key).collect()
    }

    /// The single source of truth for attack-cell ordering (mirrors
    /// [`SweepGrid::expanded`]).
    fn expanded(&self) -> Vec<(AttackCellKey, &AttackSpec, &ScalePoint)> {
        let mut cells = Vec::with_capacity(self.len());
        for scale in &self.scales {
            for channel in &self.channels {
                for arch in &self.architectures {
                    let key = AttackCellKey {
                        channel: channel.label.clone(),
                        arch: *arch,
                        scale: scale.label().to_string(),
                    };
                    cells.push((key, channel, scale));
                }
            }
        }
        cells
    }
}

/// Identity of one attack cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackCellKey {
    /// Channel label.
    pub channel: String,
    /// Architecture under attack.
    pub arch: Architecture,
    /// Scale label.
    pub scale: String,
}

impl fmt::Display for AttackCellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The "attack" prefix namespaces attack-cell seeds away from the
        // performance grid's, so identical labels can never collide.
        write!(f, "attack | {} | {} | {}", self.channel, self.arch, self.scale)
    }
}

/// An attack-sweep failure: the failing cell plus the underlying run error.
#[derive(Debug, Clone)]
pub struct AttackSweepError {
    /// The cell that failed.
    pub cell: AttackCellKey,
    /// Why it failed.
    pub error: RunError,
}

impl fmt::Display for AttackSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attack cell [{}] failed: {}", self.cell, self.error)
    }
}

impl std::error::Error for AttackSweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One completed attack cell.
#[derive(Debug, Clone)]
pub struct AttackCell {
    /// The cell's identity.
    pub key: AttackCellKey,
    /// The seed the cell ran with.
    pub seed: u64,
    /// The decoded attack outcome.
    pub outcome: AttackOutcome,
}

/// The completed attack grid, in canonical order, with differential-security
/// queries and a deterministic JSON rendering.
#[derive(Debug, Clone)]
pub struct AttackMatrix {
    /// The master seed the sweep ran with.
    pub master_seed: u64,
    /// Completed cells in grid order (scale-major, then channel,
    /// architecture).
    pub cells: Vec<AttackCell>,
}

impl AttackMatrix {
    /// BER below which a channel must decode on the insecure baseline for the
    /// differential security claim to hold.
    pub const BASELINE_MAX_BER: f64 = 0.10;

    /// Looks up one cell.
    pub fn get(&self, channel: &str, arch: Architecture, scale: &str) -> Option<&AttackCell> {
        self.cells
            .iter()
            .find(|c| c.key.channel == channel && c.key.arch == arch && c.key.scale == scale)
    }

    /// All distinct (channel, scale) pairs, in grid order.
    fn channel_scale_pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for cell in &self.cells {
            let pair = (cell.key.channel.clone(), cell.key.scale.clone());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        pairs
    }

    /// Checks the differential security claim over every (channel, scale)
    /// pair for which both the insecure baseline and IRONHIDE are present:
    /// the channel must demonstrably *work* on the shared baseline (BER below
    /// [`AttackMatrix::BASELINE_MAX_BER`], verdict open) and be
    /// indistinguishable from guessing under IRONHIDE (verdict closed, with a
    /// clean isolation audit). Returns a description of each violation
    /// (empty = the claim holds).
    pub fn differential_violations(&self) -> Vec<String> {
        let mut violations = Vec::new();
        for (channel, scale) in self.channel_scale_pairs() {
            let (Some(open), Some(closed)) = (
                self.get(&channel, Architecture::Insecure, &scale),
                self.get(&channel, Architecture::Ironhide, &scale),
            ) else {
                continue;
            };
            if !(open.outcome.is_open() && open.outcome.ber < Self::BASELINE_MAX_BER) {
                violations.push(format!(
                    "{channel} @{scale}: does not decode on the insecure baseline \
                     (BER {:.3}, verdict {}) — the channel itself is broken",
                    open.outcome.ber, open.outcome.verdict
                ));
            }
            if !closed.outcome.is_closed() {
                violations.push(format!(
                    "{channel} @{scale}: IRONHIDE leaks (BER {:.3}, verdict {})",
                    closed.outcome.ber, closed.outcome.verdict
                ));
            }
            if !closed.outcome.isolation.is_clean() {
                violations.push(format!(
                    "{channel} @{scale}: attack tripped isolation invariants under IRONHIDE: {:?}",
                    closed.outcome.isolation.violations
                ));
            }
        }
        violations
    }

    /// Renders the matrix as deterministic JSON (same contract as
    /// [`SweepMatrix::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048 + self.cells.len() * 512);
        out.push_str("{\n  \"master_seed\": ");
        out.push_str(&self.master_seed.to_string());
        out.push_str(",\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            attack_cell_json(&mut out, cell);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

impl SweepRunner {
    /// The seed a given attack cell would run with.
    pub fn attack_cell_seed(&self, key: &AttackCellKey) -> u64 {
        derive_seed(self.master_seed, &key.to_string())
    }

    /// Runs every cell of the attack `grid` in parallel and collects the
    /// outcomes in grid order, under the same determinism contract as
    /// [`SweepRunner::run`]: the serialised [`AttackMatrix`] is byte-identical
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Returns the first (in grid order) [`AttackSweepError`] if any cell
    /// fails; partial results are discarded.
    pub fn run_attacks(&self, grid: &AttackGrid) -> Result<AttackMatrix, AttackSweepError> {
        let cells = grid.expanded();
        let pool = ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("attack thread pool builds");
        // Attack cells recycle simulated machines through the same
        // per-worker sharded pools as the performance sweep's cells (pop
        // from the worker's own shard, let the factory reset-pristine and
        // run it, push it back): no shard is ever contended, and recycling
        // cannot affect results — a recycled machine is byte-identical to a
        // fresh one, coherence directories included.
        let machine_pools = WorkerPools::new(pool.current_num_threads());
        let results: Vec<Result<AttackCell, AttackSweepError>> = pool.install(|| {
            cells
                .par_iter()
                .map(|(key, channel, scale)| {
                    let seed = self.attack_cell_seed(key);
                    let mut slot = machine_pools.take();
                    let result = channel.execute(&self.machine, key.arch, scale, seed, &mut slot);
                    if let Some(m) = slot {
                        machine_pools.give(m);
                    }
                    let outcome =
                        result.map_err(|error| AttackSweepError { cell: key.clone(), error })?;
                    Ok(AttackCell { key: key.clone(), seed, outcome })
                })
                .collect()
        });
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            out.push(result?);
        }
        Ok(AttackMatrix { master_seed: self.master_seed, cells: out })
    }
}

// ---------------------------------------------------------------------------
// Ablation matrix (temporal-fence flush subsets × covert channels)
// ---------------------------------------------------------------------------

/// A point on the ablation grid's flush-subset axis: a display label plus the
/// temporal-fence configuration every cell in that row runs under.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationSpec {
    label: String,
    fence: TemporalFenceConfig,
}

impl AblationSpec {
    /// Creates a subset spec with an explicit label (used by presets whose
    /// identity is more than their resource list, like `"simf"`).
    pub fn new(label: impl Into<String>, fence: TemporalFenceConfig) -> Self {
        AblationSpec { label: label.into(), fence }
    }

    /// A selective flush of exactly `set`, labelled by the set itself
    /// (`"none"`, `"tlb"`, `"l1+tlb+dir"`, …).
    pub fn subset(set: FlushSet) -> Self {
        AblationSpec::new(set.label(), TemporalFenceConfig::selective(set))
    }

    /// The SIMF preset: flush everything, one fixed (capacity-worst-case)
    /// cost, labelled `"simf"`.
    pub fn simf() -> Self {
        AblationSpec::new("simf", TemporalFenceConfig::simf())
    }

    /// The subset's display label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The temporal-fence configuration the subset's cells run under.
    pub fn fence(&self) -> TemporalFenceConfig {
        self.fence
    }
}

/// The {flush subset × channel × scale} grid of the defence-ablation sweep:
/// every cell attacks [`Architecture::TemporalFence`] configured with the
/// row's flush subset, reusing the attack grid's channel specs verbatim.
#[derive(Debug, Clone, Default)]
pub struct AblationGrid {
    /// Temporal-fence flush subsets to ablate.
    pub subsets: Vec<AblationSpec>,
    /// Covert channels to attempt against each subset.
    pub channels: Vec<AttackSpec>,
    /// Input scales (payload length per the channel implementation).
    pub scales: Vec<ScalePoint>,
}

impl AblationGrid {
    /// Creates an empty grid.
    pub fn new() -> Self {
        AblationGrid::default()
    }

    /// Adds a flush subset.
    pub fn with_subset(mut self, subset: AblationSpec) -> Self {
        self.subsets.push(subset);
        self
    }

    /// Adds a channel.
    pub fn with_channel(mut self, channel: AttackSpec) -> Self {
        self.channels.push(channel);
        self
    }

    /// Adds a scale point.
    pub fn with_scale(mut self, scale: ScalePoint) -> Self {
        self.scales.push(scale);
        self
    }

    /// Number of cells the grid expands to.
    pub fn len(&self) -> usize {
        self.subsets.len() * self.channels.len() * self.scales.len()
    }

    /// Whether the grid has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Expands the grid into cell keys, in the canonical (scale-major, then
    /// subset, then channel) order the matrix stores them in.
    pub fn keys(&self) -> Vec<AblationCellKey> {
        self.expanded().into_iter().map(|(key, _, _, _)| key).collect()
    }

    /// The single source of truth for ablation-cell ordering (mirrors
    /// [`AttackGrid::expanded`]).
    fn expanded(&self) -> Vec<(AblationCellKey, &AblationSpec, &AttackSpec, &ScalePoint)> {
        let mut cells = Vec::with_capacity(self.len());
        for scale in &self.scales {
            for subset in &self.subsets {
                for channel in &self.channels {
                    let key = AblationCellKey {
                        subset: subset.label.clone(),
                        channel: channel.label.clone(),
                        scale: scale.label().to_string(),
                    };
                    cells.push((key, subset, channel, scale));
                }
            }
        }
        cells
    }
}

/// Identity of one ablation cell.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationCellKey {
    /// Flush-subset label.
    pub subset: String,
    /// Channel label.
    pub channel: String,
    /// Scale label.
    pub scale: String,
}

impl fmt::Display for AblationCellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The "ablation" prefix namespaces these seeds away from both the
        // performance grid's and the attack grid's, so identical channel and
        // scale labels can never collide across matrices.
        write!(f, "ablation | {} | {} | {}", self.subset, self.channel, self.scale)
    }
}

/// An ablation-sweep failure: the failing cell plus the underlying run error.
#[derive(Debug, Clone)]
pub struct AblationSweepError {
    /// The cell that failed.
    pub cell: AblationCellKey,
    /// Why it failed.
    pub error: RunError,
}

impl fmt::Display for AblationSweepError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ablation cell [{}] failed: {}", self.cell, self.error)
    }
}

impl std::error::Error for AblationSweepError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// One completed ablation cell.
#[derive(Debug, Clone)]
pub struct AblationCell {
    /// The cell's identity.
    pub key: AblationCellKey,
    /// The seed the cell ran with.
    pub seed: u64,
    /// The state-independent cycles one domain switch charged under the
    /// cell's flush subset (`TemporalFenceConfig::switch_cost` for the cell's
    /// machine configuration) — the throughput price of the row's defence.
    pub switch_cost: u64,
    /// The decoded attack outcome.
    pub outcome: AttackOutcome,
}

/// The completed ablation grid, in canonical order, with closure queries and
/// a deterministic JSON rendering — the fence.t.s experiment as a matrix:
/// which flush subset closes which channel at what switch cost.
#[derive(Debug, Clone)]
pub struct AblationMatrix {
    /// The master seed the sweep ran with.
    pub master_seed: u64,
    /// Completed cells in grid order (scale-major, then subset, channel).
    pub cells: Vec<AblationCell>,
}

impl AblationMatrix {
    /// Looks up one cell.
    pub fn get(&self, subset: &str, channel: &str, scale: &str) -> Option<&AblationCell> {
        self.cells
            .iter()
            .find(|c| c.key.subset == subset && c.key.channel == channel && c.key.scale == scale)
    }

    /// All distinct (channel, scale) pairs, in grid order.
    fn channel_scale_pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for cell in &self.cells {
            let pair = (cell.key.channel.clone(), cell.key.scale.clone());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        pairs
    }

    /// The cheapest (lowest switch cost) subset that closes `channel` at
    /// `scale`, if any subset does. Ties break toward grid order, which lists
    /// smaller subsets first in the shipped grids.
    pub fn cheapest_closed(&self, channel: &str, scale: &str) -> Option<&AblationCell> {
        self.cells
            .iter()
            .filter(|c| c.key.channel == channel && c.key.scale == scale && c.outcome.is_closed())
            .min_by_key(|c| c.switch_cost)
    }

    /// Checks the ablation claim over every (channel, scale) pair for which
    /// both the `none_label` row (zero flush) and the `simf_label` row are
    /// present: the channel must demonstrably *work* when nothing is flushed
    /// (verdict open — a zero-flush fence is the insecure baseline; the open
    /// band admits the reconfiguration-window channel's inherent probe noise,
    /// which sits above the stream channels'
    /// [`AttackMatrix::BASELINE_MAX_BER`]), SIMF must close it, and at least
    /// one selective subset must close it at a strictly lower switch cost
    /// than SIMF. Returns a description of each violation (empty = the claim
    /// holds).
    pub fn differential_violations(&self, none_label: &str, simf_label: &str) -> Vec<String> {
        let mut violations = Vec::new();
        for (channel, scale) in self.channel_scale_pairs() {
            let (Some(open), Some(simf)) =
                (self.get(none_label, &channel, &scale), self.get(simf_label, &channel, &scale))
            else {
                continue;
            };
            if !open.outcome.is_open() {
                violations.push(format!(
                    "{channel} @{scale}: does not decode under the zero-flush fence \
                     (BER {:.3}, verdict {}) — the channel itself is broken",
                    open.outcome.ber, open.outcome.verdict
                ));
            }
            if !simf.outcome.is_closed() {
                violations.push(format!(
                    "{channel} @{scale}: SIMF leaks (BER {:.3}, verdict {})",
                    simf.outcome.ber, simf.outcome.verdict
                ));
            }
            match self.cheapest_closed(&channel, &scale) {
                Some(best) if best.switch_cost < simf.switch_cost => {}
                Some(best) => violations.push(format!(
                    "{channel} @{scale}: no selective subset beats SIMF \
                     (cheapest closed is {} at {} cycles, SIMF costs {})",
                    best.key.subset, best.switch_cost, simf.switch_cost
                )),
                None => violations
                    .push(format!("{channel} @{scale}: no subset closes the channel at all")),
            }
        }
        violations
    }

    /// Renders the matrix as deterministic JSON (same contract as
    /// [`AttackMatrix::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048 + self.cells.len() * 512);
        out.push_str("{\n  \"master_seed\": ");
        out.push_str(&self.master_seed.to_string());
        out.push_str(",\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            ablation_cell_json(&mut out, cell);
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// FNV-1a over the serialised matrix — the single number CI pins for the
    /// whole ablation (same scheme as the fault campaign's checksum).
    pub fn checksum(&self) -> u64 {
        let mut c: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.to_json().as_bytes() {
            c ^= *byte as u64;
            c = c.wrapping_mul(0x0000_0100_0000_01B3);
        }
        c
    }
}

impl SweepRunner {
    /// The seed a given ablation cell would run with.
    pub fn ablation_cell_seed(&self, key: &AblationCellKey) -> u64 {
        derive_seed(self.master_seed, &key.to_string())
    }

    /// Runs every cell of the ablation `grid` in parallel and collects the
    /// outcomes in grid order, under the same determinism contract as
    /// [`SweepRunner::run_attacks`]: the serialised [`AblationMatrix`] is
    /// byte-identical at any thread count.
    ///
    /// Every cell attacks [`Architecture::TemporalFence`] with the runner's
    /// machine configuration, its `temporal_fence` field overwritten by the
    /// cell's subset. Machines still recycle through the per-worker pools
    /// across subsets: cell configurations differ *only* in the fence policy,
    /// which the runners read from their own configuration at every boundary
    /// — never from the pooled machine's stored copy — so a machine built
    /// under one subset is byte-equivalent, after `reset_pristine`, to one
    /// built under any other.
    ///
    /// # Errors
    ///
    /// Returns the first (in grid order) [`AblationSweepError`] if any cell
    /// fails; partial results are discarded.
    pub fn run_ablation(&self, grid: &AblationGrid) -> Result<AblationMatrix, AblationSweepError> {
        let cells = grid.expanded();
        let pool = ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
            .expect("ablation thread pool builds");
        let machine_pools = WorkerPools::new(pool.current_num_threads());
        let results: Vec<Result<AblationCell, AblationSweepError>> = pool.install(|| {
            cells
                .par_iter()
                .map(|(key, subset, channel, scale)| {
                    let seed = self.ablation_cell_seed(key);
                    let mut cell_config = self.machine.clone();
                    cell_config.temporal_fence = subset.fence;
                    let switch_cost = subset.fence.switch_cost(&cell_config);
                    let mut slot = machine_pools.take();
                    let result = channel.execute(
                        &cell_config,
                        Architecture::TemporalFence,
                        scale,
                        seed,
                        &mut slot,
                    );
                    if let Some(m) = slot {
                        machine_pools.give(m);
                    }
                    let outcome =
                        result.map_err(|error| AblationSweepError { cell: key.clone(), error })?;
                    Ok(AblationCell { key: key.clone(), seed, switch_cost, outcome })
                })
                .collect()
        });
        let mut out = Vec::with_capacity(results.len());
        for result in results {
            out.push(result?);
        }
        Ok(AblationMatrix { master_seed: self.master_seed, cells: out })
    }
}

// ---------------------------------------------------------------------------
// Matrix
// ---------------------------------------------------------------------------

/// One completed cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// The cell's identity.
    pub key: CellKey,
    /// The seed the cell ran with.
    pub seed: u64,
    /// The experiment's outcome.
    pub report: CompletionReport,
}

/// The completed grid, in canonical order, with figure-oriented queries and a
/// deterministic JSON rendering.
#[derive(Debug, Clone)]
pub struct SweepMatrix {
    /// The master seed the sweep ran with.
    pub master_seed: u64,
    /// Completed cells in grid order (scale-major, then app, architecture,
    /// policy).
    pub cells: Vec<SweepCell>,
}

/// One row of the Figure 6 summary: per-application completion times under
/// each architecture.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Application label.
    pub app: String,
    /// Scale label.
    pub scale: String,
    /// Completion time under the insecure baseline, in milliseconds.
    pub insecure_ms: f64,
    /// Completion time under the SGX-like architecture, in milliseconds.
    pub sgx_ms: f64,
    /// Completion time under MI6, in milliseconds.
    pub mi6_ms: f64,
    /// Completion time under IRONHIDE, in milliseconds.
    pub ironhide_ms: f64,
    /// Secure-cluster cores IRONHIDE settled on.
    pub ironhide_secure_cores: usize,
    /// MI6 completion time over IRONHIDE completion time (>1 means IRONHIDE
    /// is faster).
    pub mi6_over_ironhide: f64,
}

/// One row of the Figure 7 summary: L1/L2 miss rates under MI6 and IRONHIDE.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Application label.
    pub app: String,
    /// Scale label.
    pub scale: String,
    /// Private L1 miss rate under MI6.
    pub mi6_l1: f64,
    /// Private L1 miss rate under IRONHIDE.
    pub ironhide_l1: f64,
    /// Shared L2 miss rate under MI6.
    pub mi6_l2: f64,
    /// Shared L2 miss rate under IRONHIDE.
    pub ironhide_l2: f64,
}

impl Fig7Row {
    /// L1 miss-rate delta (MI6 − IRONHIDE; positive means IRONHIDE misses
    /// less, the paper's "L1 thrashing" effect).
    pub fn l1_delta(&self) -> f64 {
        self.mi6_l1 - self.ironhide_l1
    }

    /// L2 miss-rate delta (MI6 − IRONHIDE).
    pub fn l2_delta(&self) -> f64 {
        self.mi6_l2 - self.ironhide_l2
    }
}

/// One row of the Figure 8 summary: IRONHIDE under one re-allocation policy.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Application label.
    pub app: String,
    /// Scale label.
    pub scale: String,
    /// Re-allocation policy.
    pub policy: ReallocPolicy,
    /// Completion time in milliseconds.
    pub total_ms: f64,
    /// Secure-cluster cores the policy settled on.
    pub secure_cores: usize,
}

impl SweepMatrix {
    /// Looks up one cell.
    pub fn get(
        &self,
        app: &str,
        arch: Architecture,
        policy: ReallocPolicy,
        scale: &str,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.key.app == app && c.key.arch == arch && c.key.policy == policy && c.key.scale == scale
        })
    }

    /// All distinct (app, scale) pairs, in grid order.
    fn app_scale_pairs(&self) -> Vec<(String, String)> {
        let mut pairs: Vec<(String, String)> = Vec::new();
        for cell in &self.cells {
            let pair = (cell.key.app.clone(), cell.key.scale.clone());
            if !pairs.contains(&pair) {
                pairs.push(pair);
            }
        }
        pairs
    }

    /// The Figure 6 completion-time summary under `policy`, one row per
    /// (app, scale) pair for which all four architectures are present.
    pub fn fig6(&self, policy: ReallocPolicy) -> Vec<Fig6Row> {
        let mut rows = Vec::new();
        for (app, scale) in self.app_scale_pairs() {
            let cell = |arch| self.get(&app, arch, policy, &scale);
            let (Some(insecure), Some(sgx), Some(mi6), Some(ironhide)) = (
                cell(Architecture::Insecure),
                cell(Architecture::SgxLike),
                cell(Architecture::Mi6),
                cell(Architecture::Ironhide),
            ) else {
                continue;
            };
            rows.push(Fig6Row {
                app,
                scale,
                insecure_ms: insecure.report.total_time_ms(),
                sgx_ms: sgx.report.total_time_ms(),
                mi6_ms: mi6.report.total_time_ms(),
                ironhide_ms: ironhide.report.total_time_ms(),
                ironhide_secure_cores: ironhide.report.secure_cores,
                mi6_over_ironhide: ironhide.report.speedup_over(&mi6.report),
            });
        }
        rows
    }

    /// Checks the paper's Figure 6 ordering — insecure ≤ IRONHIDE ≤ MI6
    /// completion time — for every complete row under `policy`, returning a
    /// description of each violation (empty = all orderings hold).
    pub fn fig6_ordering_violations(&self, policy: ReallocPolicy) -> Vec<String> {
        let mut violations = Vec::new();
        for row in self.fig6(policy) {
            if row.insecure_ms > row.ironhide_ms {
                violations.push(format!(
                    "{} @{}: insecure ({:.4} ms) slower than IRONHIDE ({:.4} ms)",
                    row.app, row.scale, row.insecure_ms, row.ironhide_ms
                ));
            }
            if row.ironhide_ms > row.mi6_ms {
                violations.push(format!(
                    "{} @{}: IRONHIDE ({:.4} ms) slower than MI6 ({:.4} ms)",
                    row.app, row.scale, row.ironhide_ms, row.mi6_ms
                ));
            }
        }
        violations
    }

    /// The Figure 7 miss-rate summary under `policy`, one row per (app,
    /// scale) pair for which both MI6 and IRONHIDE are present.
    pub fn fig7(&self, policy: ReallocPolicy) -> Vec<Fig7Row> {
        let mut rows = Vec::new();
        for (app, scale) in self.app_scale_pairs() {
            let (Some(mi6), Some(ironhide)) = (
                self.get(&app, Architecture::Mi6, policy, &scale),
                self.get(&app, Architecture::Ironhide, policy, &scale),
            ) else {
                continue;
            };
            rows.push(Fig7Row {
                app,
                scale,
                mi6_l1: mi6.report.l1_miss_rate,
                ironhide_l1: ironhide.report.l1_miss_rate,
                mi6_l2: mi6.report.l2_miss_rate,
                ironhide_l2: ironhide.report.l2_miss_rate,
            });
        }
        rows
    }

    /// The Figure 8 policy-sensitivity summary: every IRONHIDE cell, in grid
    /// order.
    pub fn fig8(&self) -> Vec<Fig8Row> {
        self.cells
            .iter()
            .filter(|c| c.key.arch == Architecture::Ironhide)
            .map(|c| Fig8Row {
                app: c.key.app.clone(),
                scale: c.key.scale.clone(),
                policy: c.key.policy,
                total_ms: c.report.total_time_ms(),
                secure_cores: c.report.secure_cores,
            })
            .collect()
    }

    /// Geometric-mean IRONHIDE completion time (ms) under each of two
    /// policies, over the (app, scale) pairs where both are present —
    /// typically used to compare the heuristic against static re-allocation.
    pub fn policy_geomeans(&self, a: ReallocPolicy, b: ReallocPolicy) -> Option<(f64, f64)> {
        let mut times_a = Vec::new();
        let mut times_b = Vec::new();
        for (app, scale) in self.app_scale_pairs() {
            let (Some(cell_a), Some(cell_b)) = (
                self.get(&app, Architecture::Ironhide, a, &scale),
                self.get(&app, Architecture::Ironhide, b, &scale),
            ) else {
                continue;
            };
            times_a.push(cell_a.report.total_time_ms());
            times_b.push(cell_b.report.total_time_ms());
        }
        if times_a.is_empty() {
            None
        } else {
            Some((geometric_mean(&times_a), geometric_mean(&times_b)))
        }
    }

    /// Renders the matrix as deterministic JSON: same cells (in the same
    /// order) and same master seed produce byte-identical output.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.cells.len() * 1024);
        out.push_str("{\n  \"master_seed\": ");
        out.push_str(&self.master_seed.to_string());
        out.push_str(",\n  \"cells\": [");
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            cell_json(&mut out, cell);
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// The geometric mean of a slice of positive values (0 when empty).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

// ---------------------------------------------------------------------------
// JSON rendering (hand-rolled: the build environment has no registry access,
// so serde is unavailable; the subset needed here is tiny and its output
// must be byte-stable anyway).
// ---------------------------------------------------------------------------

pub(crate) fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest-roundtrip rendering is deterministic and re-parses
        // to the same bits; integral values print without a fraction, which
        // is still a valid JSON number.
        out.push_str(&v.to_string());
    } else {
        // JSON has no NaN/Infinity; null keeps the document well-formed.
        out.push_str("null");
    }
}

macro_rules! json_fields {
    ($out:ident, { $($name:literal : $value:expr),+ $(,)? }) => {{
        $out.push('{');
        let mut first = true;
        $(
            if !first {
                $out.push(',');
            }
            first = false;
            let _ = first;
            $out.push('"');
            $out.push_str($name);
            $out.push_str("\":");
            $value;
        )+
        $out.push('}');
    }};
}
pub(crate) use json_fields;

fn cache_stats_json(out: &mut String, s: &ironhide_cache::CacheStats) {
    json_fields!(out, {
        "accesses": out.push_str(&s.accesses.to_string()),
        "hits": out.push_str(&s.hits.to_string()),
        "misses": out.push_str(&s.misses.to_string()),
        "evictions": out.push_str(&s.evictions.to_string()),
        "writebacks": out.push_str(&s.writebacks.to_string()),
        "flushed_lines": out.push_str(&s.flushed_lines.to_string()),
        "purges": out.push_str(&s.purges.to_string()),
    });
}

fn mem_stats_json(out: &mut String, s: &ironhide_mem::MemStats) {
    json_fields!(out, {
        "requests": out.push_str(&s.requests.to_string()),
        "reads": out.push_str(&s.reads.to_string()),
        "writes": out.push_str(&s.writes.to_string()),
        "row_hits": out.push_str(&s.row_hits.to_string()),
        "row_misses": out.push_str(&s.row_misses.to_string()),
        "total_latency_cycles": out.push_str(&s.total_latency_cycles.to_string()),
        "purges": out.push_str(&s.purges.to_string()),
    });
}

fn noc_stats_json(out: &mut String, s: &ironhide_mesh::NocStats) {
    json_fields!(out, {
        "packets": out.push_str(&s.packets.to_string()),
        "flits": out.push_str(&s.flits.to_string()),
        "hops": out.push_str(&s.hops.to_string()),
        "latency_cycles": out.push_str(&s.latency_cycles.to_string()),
        "cross_cluster_packets": out.push_str(&s.cross_cluster_packets.to_string()),
        "requests": out.push_str(&s.requests.to_string()),
        "responses": out.push_str(&s.responses.to_string()),
        "writebacks": out.push_str(&s.writebacks.to_string()),
        "ipc": out.push_str(&s.ipc.to_string()),
        "maintenance": out.push_str(&s.maintenance.to_string()),
    });
}

fn directory_stats_json(out: &mut String, s: &ironhide_cache::DirectoryStats) {
    json_fields!(out, {
        "lookups": out.push_str(&s.lookups.to_string()),
        "hits": out.push_str(&s.hits.to_string()),
        "allocations": out.push_str(&s.allocations.to_string()),
        "invalidations": out.push_str(&s.invalidations.to_string()),
        "downgrades": out.push_str(&s.downgrades.to_string()),
        "back_invalidations": out.push_str(&s.back_invalidations.to_string()),
        "purges": out.push_str(&s.purges.to_string()),
        "flushed_entries": out.push_str(&s.flushed_entries.to_string()),
    });
}

fn machine_stats_json(out: &mut String, s: &ironhide_sim::stats::MachineStats) {
    json_fields!(out, {
        "l1": cache_stats_json(out, &s.l1),
        "tlb": cache_stats_json(out, &s.tlb),
        "l2": cache_stats_json(out, &s.l2),
        "mem": mem_stats_json(out, &s.mem),
        "noc": noc_stats_json(out, &s.noc),
        "directory": directory_stats_json(out, &s.directory),
        "core_purges": out.push_str(&s.core_purges.to_string()),
        "pages_rehomed": out.push_str(&s.pages_rehomed.to_string()),
    });
}

fn isolation_json(out: &mut String, s: &crate::isolation::IsolationSummary) {
    json_fields!(out, {
        "cross_cluster_packets": out.push_str(&s.cross_cluster_packets.to_string()),
        "ipc_packets": out.push_str(&s.ipc_packets.to_string()),
        "spec_checks": out.push_str(&s.spec_checks.to_string()),
        "spec_blocked": out.push_str(&s.spec_blocked.to_string()),
        "containment_verified": out.push_str(if s.containment_verified { "true" } else { "false" }),
        "violations": {
            out.push('[');
            for (i, v) in s.violations.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json_string(out, v);
            }
            out.push(']');
        },
    });
}

/// Renders one report as a JSON object. Public so the golden-stats tests and
/// any external tooling can snapshot individual reports.
pub fn report_json(out: &mut String, r: &CompletionReport) {
    json_fields!(out, {
        "app": json_string(out, &r.app),
        "arch": json_string(out, &r.arch.to_string()),
        "total_cycles": out.push_str(&r.total_cycles.to_string()),
        "compute_cycles": out.push_str(&r.compute_cycles.to_string()),
        "overhead_cycles": out.push_str(&r.overhead_cycles.to_string()),
        "reconfig_cycles": out.push_str(&r.reconfig_cycles.to_string()),
        "interactions": out.push_str(&r.interactions.to_string()),
        "secure_cores": out.push_str(&r.secure_cores.to_string()),
        "l1_miss_rate": json_f64(out, r.l1_miss_rate),
        "l2_miss_rate": json_f64(out, r.l2_miss_rate),
        "clock_ghz": json_f64(out, r.clock_ghz),
        "isolation": isolation_json(out, &r.isolation),
        "machine": machine_stats_json(out, &r.machine),
    });
}

fn cell_json(out: &mut String, cell: &SweepCell) {
    json_fields!(out, {
        "app": json_string(out, &cell.key.app),
        "arch": json_string(out, &cell.key.arch.to_string()),
        "policy": json_string(out, &cell.key.policy.to_string()),
        "scale": json_string(out, &cell.key.scale),
        "seed": out.push_str(&cell.seed.to_string()),
        "report": report_json(out, &cell.report),
    });
}

/// Renders one attack outcome as a JSON object (the attack matrix is
/// snapshotted whole through [`AttackMatrix::to_json`]).
fn attack_outcome_json(out: &mut String, o: &AttackOutcome) {
    json_fields!(out, {
        "channel": json_string(out, &o.channel),
        "arch": json_string(out, &o.arch.to_string()),
        "payload_bits": out.push_str(&o.payload_bits.to_string()),
        "bit_errors": out.push_str(&o.bit_errors.to_string()),
        "ber": json_f64(out, o.ber),
        "threshold_cycles": json_f64(out, o.threshold_cycles),
        "min_probe_cycles": out.push_str(&o.min_probe_cycles.to_string()),
        "max_probe_cycles": out.push_str(&o.max_probe_cycles.to_string()),
        "capacity_bits_per_slot": json_f64(out, o.capacity_bits_per_slot),
        "capacity_bits_per_second": json_f64(out, o.capacity_bits_per_second),
        "payload_cycles": out.push_str(&o.payload_cycles.to_string()),
        "secure_cores": out.push_str(&o.secure_cores.to_string()),
        "verdict": json_string(out, &o.verdict.to_string()),
        "isolation": isolation_json(out, &o.isolation),
    });
}

fn attack_cell_json(out: &mut String, cell: &AttackCell) {
    json_fields!(out, {
        "channel": json_string(out, &cell.key.channel),
        "arch": json_string(out, &cell.key.arch.to_string()),
        "scale": json_string(out, &cell.key.scale),
        "seed": out.push_str(&cell.seed.to_string()),
        "outcome": attack_outcome_json(out, &cell.outcome),
    });
}

fn ablation_cell_json(out: &mut String, cell: &AblationCell) {
    json_fields!(out, {
        "subset": json_string(out, &cell.key.subset),
        "channel": json_string(out, &cell.key.channel),
        "scale": json_string(out, &cell.key.scale),
        "seed": out.push_str(&cell.seed.to_string()),
        "switch_cost": out.push_str(&cell.switch_cost.to_string()),
        "outcome": attack_outcome_json(out, &cell.outcome),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{Interaction, MemRef, ProcessProfile, RefStream, WorkUnit};
    use ironhide_sim::process::SecurityClass;

    /// A deterministic synthetic app whose trace is derived from the cell
    /// seed, exercising the seed plumbing.
    #[derive(Debug)]
    struct SeededApp {
        insecure: ProcessProfile,
        secure: ProcessProfile,
        seed: u64,
    }

    impl SeededApp {
        fn new(seed: u64) -> Self {
            SeededApp {
                insecure: ProcessProfile::new("gen", SecurityClass::Insecure, 0.9, 50, 16),
                secure: ProcessProfile::new("enc", SecurityClass::Secure, 0.8, 100, 8),
                seed,
            }
        }
    }

    impl crate::app::InteractiveApp for SeededApp {
        fn name(&self) -> &str {
            "<SEEDED, TEST>"
        }
        fn insecure_profile(&self) -> &ProcessProfile {
            &self.insecure
        }
        fn secure_profile(&self) -> &ProcessProfile {
            &self.secure
        }
        fn interactions(&self) -> usize {
            4
        }
        fn interactivity_per_second(&self) -> f64 {
            100.0
        }
        fn interaction(&mut self, idx: usize) -> Interaction {
            let base = (self.seed % 64) * 64;
            let mut insecure = RefStream::new();
            let mut secure = RefStream::new();
            for i in 0..32u64 {
                insecure.push(MemRef::write(base + (idx as u64 * 32 + i) * 64));
                secure.push(MemRef::read(0x20_0000 + base + (i % 16) * 64));
            }
            Interaction {
                insecure: WorkUnit::new(1_000, insecure),
                secure: WorkUnit::new(2_000, secure),
                ipc_bytes: 128,
            }
        }
        fn reset(&mut self) {}
    }

    fn test_grid() -> SweepGrid {
        SweepGrid::new()
            .with_app(AppSpec::new("<SEEDED, TEST>", |_, seed| Box::new(SeededApp::new(seed))))
            .with_architectures(&[Architecture::Insecure, Architecture::Ironhide])
            .with_policies(&[ReallocPolicy::Static])
            .with_scale(ScalePoint::new("Smoke"))
    }

    fn test_runner() -> SweepRunner {
        let params =
            ArchParams { warmup_interactions: 1, predictor_sample: 1, ..ArchParams::default() };
        SweepRunner::new(MachineConfig::small_test()).with_params(params).with_seed(7)
    }

    #[test]
    fn grid_expansion_order_is_canonical() {
        let grid = test_grid();
        assert_eq!(grid.len(), 2);
        let keys = grid.keys();
        assert_eq!(keys[0].arch, Architecture::Insecure);
        assert_eq!(keys[1].arch, Architecture::Ironhide);
        assert!(!grid.is_empty());
        assert!(SweepGrid::new().is_empty());
    }

    #[test]
    fn cell_seeds_are_key_pure() {
        let runner = test_runner();
        let keys = test_grid().keys();
        assert_eq!(runner.cell_seed(&keys[0]), runner.cell_seed(&keys[0].clone()));
        assert_ne!(runner.cell_seed(&keys[0]), runner.cell_seed(&keys[1]));
        let reseeded = test_runner().with_seed(8);
        assert_ne!(runner.cell_seed(&keys[0]), reseeded.cell_seed(&keys[0]));
    }

    #[test]
    fn sweep_is_thread_count_independent() {
        let grid = test_grid();
        let baseline = test_runner().with_threads(1).run(&grid).unwrap().to_json();
        for threads in [2, 4] {
            let json = test_runner().with_threads(threads).run(&grid).unwrap().to_json();
            assert_eq!(json, baseline, "thread count {threads} changed the matrix");
        }
    }

    #[test]
    fn matrix_queries_find_cells() {
        let matrix = test_runner().run(&test_grid()).unwrap();
        assert_eq!(matrix.cells.len(), 2);
        let cell = matrix
            .get("<SEEDED, TEST>", Architecture::Ironhide, ReallocPolicy::Static, "Smoke")
            .expect("cell present");
        assert!(cell.report.total_cycles > 0);
        assert!(cell.report.isolation.is_clean());
        // fig6 needs all four architectures; this grid only has two.
        assert!(matrix.fig6(ReallocPolicy::Static).is_empty());
        let fig8 = matrix.fig8();
        assert_eq!(fig8.len(), 1);
        assert_eq!(fig8[0].policy, ReallocPolicy::Static);
    }

    #[test]
    fn json_is_well_formed_enough() {
        let matrix = test_runner().run(&test_grid()).unwrap();
        let json = matrix.to_json();
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"report\"").count(), 2);
        // Balanced braces and brackets (no string in the output contains
        // braces, so a raw count is a fair structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_strings() {
        let mut out = String::new();
        json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        let mut out = String::new();
        json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        let mut out = String::new();
        json_f64(&mut out, 1.25);
        assert_eq!(out, "1.25");
    }

    fn synthetic_attack_grid() -> AttackGrid {
        // A fake channel whose "outcome" is derived purely from the cell
        // seed, exercising grid ordering, seed plumbing and serialisation
        // without simulating a machine (the recycled-machine slot is
        // legitimately unused).
        let spec = AttackSpec::new("fake-channel", |config, arch, scale, seed, _machine| {
            let bits = 16u64;
            let errors = seed % (bits + 1);
            let ber = errors as f64 / bits as f64;
            Ok(crate::attack::AttackOutcome {
                channel: format!("fake-channel@{}", scale.label()),
                arch,
                payload_bits: bits,
                bit_errors: errors,
                ber,
                threshold_cycles: 10.0,
                min_probe_cycles: seed % 100,
                max_probe_cycles: seed % 100 + 50,
                capacity_bits_per_slot: 1.0 - ber,
                capacity_bits_per_second: (1.0 - ber) * config.clock_ghz,
                payload_cycles: 1000,
                secure_cores: config.cores() / 2,
                verdict: crate::attack::ChannelVerdict::from_ber(ber),
                isolation: crate::isolation::IsolationSummary::default(),
            })
        });
        AttackGrid::new()
            .with_channel(spec)
            .with_architectures(&[Architecture::Insecure, Architecture::Ironhide])
            .with_scale(ScalePoint::new("Smoke"))
    }

    #[test]
    fn attack_grid_expansion_order_is_canonical() {
        let grid = synthetic_attack_grid();
        assert_eq!(grid.len(), 2);
        assert!(!grid.is_empty());
        assert!(AttackGrid::new().is_empty());
        let keys = grid.keys();
        assert_eq!(keys[0].arch, Architecture::Insecure);
        assert_eq!(keys[1].arch, Architecture::Ironhide);
        assert!(keys[0].to_string().starts_with("attack | "));
    }

    #[test]
    fn attack_seeds_are_key_pure_and_namespaced() {
        let runner = test_runner();
        let keys = synthetic_attack_grid().keys();
        assert_eq!(runner.attack_cell_seed(&keys[0]), runner.attack_cell_seed(&keys[0].clone()));
        assert_ne!(runner.attack_cell_seed(&keys[0]), runner.attack_cell_seed(&keys[1]));
        // The "attack" namespace keeps attack seeds away from an app cell
        // that happens to render similarly.
        let app_key = CellKey {
            app: keys[0].channel.clone(),
            arch: keys[0].arch,
            policy: ReallocPolicy::Static,
            scale: keys[0].scale.clone(),
        };
        assert_ne!(runner.attack_cell_seed(&keys[0]), runner.cell_seed(&app_key));
    }

    #[test]
    fn attack_matrix_is_thread_count_independent() {
        let grid = synthetic_attack_grid();
        let baseline = test_runner().with_threads(1).run_attacks(&grid).unwrap().to_json();
        for threads in [2, 4] {
            let json = test_runner().with_threads(threads).run_attacks(&grid).unwrap().to_json();
            assert_eq!(json, baseline, "thread count {threads} changed the attack matrix");
        }
        assert!(baseline.contains("\"verdict\""));
        assert_eq!(baseline.matches('{').count(), baseline.matches('}').count());
    }

    #[test]
    fn attack_matrix_queries_and_differential_check() {
        let matrix = test_runner().run_attacks(&synthetic_attack_grid()).unwrap();
        assert_eq!(matrix.cells.len(), 2);
        assert!(matrix.get("fake-channel", Architecture::Insecure, "Smoke").is_some());
        assert!(matrix.get("missing", Architecture::Insecure, "Smoke").is_none());
        // The synthetic outcomes are seed-derived, so the differential claim
        // will generally *not* hold — the checker must report something
        // rather than crash, and must mention the channel by name.
        for violation in matrix.differential_violations() {
            assert!(violation.contains("fake-channel"));
        }
    }

    fn synthetic_ablation_grid() -> AblationGrid {
        // Reuse the fake-channel pattern: outcomes derive purely from the
        // cell seed, exercising subset ordering, the per-cell fence override
        // and serialisation without simulating a machine.
        let spec = AttackSpec::new("fake-channel", |config, arch, scale, seed, _machine| {
            let bits = 16u64;
            // The fake channel "closes" whenever any resource is flushed, so
            // the matrix queries have both verdicts to work with.
            let errors = if config.temporal_fence.set.is_empty() { seed % 2 } else { bits / 2 };
            let ber = errors as f64 / bits as f64;
            Ok(crate::attack::AttackOutcome {
                channel: format!("fake-channel@{}", scale.label()),
                arch,
                payload_bits: bits,
                bit_errors: errors,
                ber,
                threshold_cycles: 10.0,
                min_probe_cycles: seed % 100,
                max_probe_cycles: seed % 100 + 50,
                capacity_bits_per_slot: 1.0 - ber,
                capacity_bits_per_second: (1.0 - ber) * config.clock_ghz,
                payload_cycles: 1000,
                secure_cores: config.cores(),
                verdict: crate::attack::ChannelVerdict::from_ber(ber),
                isolation: crate::isolation::IsolationSummary::default(),
            })
        });
        use ironhide_sim::fence::FlushResource;
        AblationGrid::new()
            .with_subset(AblationSpec::subset(FlushSet::EMPTY))
            .with_subset(AblationSpec::subset(FlushSet::of(&[FlushResource::Tlb])))
            .with_subset(AblationSpec::simf())
            .with_channel(spec)
            .with_scale(ScalePoint::new("Smoke"))
    }

    #[test]
    fn ablation_grid_expansion_order_is_canonical() {
        let grid = synthetic_ablation_grid();
        assert_eq!(grid.len(), 3);
        assert!(!grid.is_empty());
        assert!(AblationGrid::new().is_empty());
        let keys = grid.keys();
        assert_eq!(keys[0].subset, "none");
        assert_eq!(keys[1].subset, "tlb");
        assert_eq!(keys[2].subset, "simf");
        assert!(keys[0].to_string().starts_with("ablation | "));
    }

    #[test]
    fn ablation_seeds_are_key_pure_and_namespaced() {
        let runner = test_runner();
        let keys = synthetic_ablation_grid().keys();
        assert_eq!(
            runner.ablation_cell_seed(&keys[0]),
            runner.ablation_cell_seed(&keys[0].clone())
        );
        assert_ne!(runner.ablation_cell_seed(&keys[0]), runner.ablation_cell_seed(&keys[1]));
        // The "ablation" namespace keeps these seeds away from an attack cell
        // that happens to render similarly.
        let attack_key = AttackCellKey {
            channel: keys[0].channel.clone(),
            arch: Architecture::TemporalFence,
            scale: keys[0].scale.clone(),
        };
        assert_ne!(runner.ablation_cell_seed(&keys[0]), runner.attack_cell_seed(&attack_key));
    }

    #[test]
    fn ablation_matrix_is_thread_count_independent() {
        let grid = synthetic_ablation_grid();
        let baseline = test_runner().with_threads(1).run_ablation(&grid).unwrap().to_json();
        for threads in [2, 4] {
            let json = test_runner().with_threads(threads).run_ablation(&grid).unwrap().to_json();
            assert_eq!(json, baseline, "thread count {threads} changed the ablation matrix");
        }
        assert!(baseline.contains("\"switch_cost\""));
        assert_eq!(baseline.matches('{').count(), baseline.matches('}').count());
    }

    #[test]
    fn ablation_matrix_queries_and_differential_check() {
        let matrix = test_runner().run_ablation(&synthetic_ablation_grid()).unwrap();
        assert_eq!(matrix.cells.len(), 3);
        assert!(matrix.get("simf", "fake-channel", "Smoke").is_some());
        assert!(matrix.get("missing", "fake-channel", "Smoke").is_none());
        // The zero-flush row charges nothing; flushing rows charge their
        // capacity costs, SIMF the most.
        let none = matrix.get("none", "fake-channel", "Smoke").unwrap();
        let tlb = matrix.get("tlb", "fake-channel", "Smoke").unwrap();
        let simf = matrix.get("simf", "fake-channel", "Smoke").unwrap();
        assert_eq!(none.switch_cost, 0);
        assert!(tlb.switch_cost > 0 && tlb.switch_cost < simf.switch_cost);
        // The fake channel closes under any flush, so the cheapest closing
        // subset is the TLB row and the differential claim holds.
        let best = matrix.cheapest_closed("fake-channel", "Smoke").unwrap();
        assert_eq!(best.key.subset, "tlb");
        assert!(matrix.differential_violations("none", "simf").is_empty());
        // With the closing rows renamed away, the checker reports rather
        // than crashes.
        assert!(!matrix.differential_violations("tlb", "none").is_empty());
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }
}
