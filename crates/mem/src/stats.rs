//! Memory system statistics.

/// Counters maintained by each memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Total requests serviced.
    pub requests: u64,
    /// Read requests.
    pub reads: u64,
    /// Write requests.
    pub writes: u64,
    /// Requests that hit the open row.
    pub row_hits: u64,
    /// Requests that required opening a row.
    pub row_misses: u64,
    /// Total latency over all requests, in cycles.
    pub total_latency_cycles: u64,
    /// Queue/row-state purge operations performed.
    pub purges: u64,
}

impl MemStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mean latency per request in cycles (0 when idle).
    pub fn mean_latency(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_latency_cycles as f64 / self.requests as f64
        }
    }

    /// Row-buffer hit rate in `[0, 1]`.
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }

    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &MemStats) {
        self.requests += other.requests;
        self.reads += other.reads;
        self.writes += other.writes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.total_latency_cycles += other.total_latency_cycles;
        self.purges += other.purges;
    }

    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = MemStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_and_means() {
        let s = MemStats {
            requests: 4,
            reads: 3,
            writes: 1,
            row_hits: 1,
            row_misses: 3,
            total_latency_cycles: 400,
            purges: 0,
        };
        assert!((s.mean_latency() - 100.0).abs() < 1e-9);
        assert!((s.row_hit_rate() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_stats() {
        let s = MemStats::new();
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.row_hit_rate(), 0.0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = MemStats { requests: 1, reads: 1, ..Default::default() };
        let b = MemStats { requests: 2, writes: 2, purges: 1, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.purges, 1);
        a.reset();
        assert_eq!(a, MemStats::default());
    }
}
