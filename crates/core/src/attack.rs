//! Adversarial covert-channel execution.
//!
//! Everything else in this crate measures IRONHIDE's *performance*; this
//! module measures its *security claim* from the attacker's point of view. A
//! [`CovertChannel`] is a paired attacker/victim workload that tries to
//! transmit bits through shared microarchitecture state: the victim (an
//! attested secure process) modulates some shared structure — L2 slice
//! occupancy, NoC link congestion, TLB residency, the shared IPC buffer's
//! cache footprint — and the attacker (an ordinary insecure process) decodes
//! the bits from the latencies of its own probe accesses.
//!
//! [`AttackRunner`] co-schedules such a pair on one simulated machine under
//! any of the four execution architectures, reusing the exact machinery the
//! performance experiments use: the [`SecureKernel`] attests the victim
//! before it may run, the [`ClusterManager`] pins the pair to distrusting
//! clusters under IRONHIDE, and MI6's enclave boundaries purge private state,
//! controller queues and the network. Probe latencies are observed through
//! the machine's [`LatencyTrace`](ironhide_sim::trace::LatencyTrace) hook —
//! the attacker sees nothing a real attacker could not time.
//!
//! The decoding side (bit recovery, bit-error rate, channel capacity) lives
//! in the `ironhide-attacks` crate's `LeakageOracle`; its result is the
//! [`AttackOutcome`] serialised by the attack matrix in [`crate::sweep`].

use std::fmt;

use ironhide_cache::SliceId;
use ironhide_mesh::{ClusterId, NodeId};
use ironhide_sim::config::MachineConfig;
use ironhide_sim::machine::Machine;
use ironhide_sim::process::{ProcessId, SecurityClass};

use crate::app::RefStream;
use crate::arch::{ArchParams, Architecture};
use crate::boundary::mi6_boundary_cost;
use crate::cluster::ClusterManager;
use crate::isolation::{IsolationAuditor, IsolationSummary};
use crate::kernel::{AppDomain, SecureKernel};
use crate::runner::{issue_run, RunError};
use crate::speccheck::SpeculativeAccessCheck;

/// Signing key of the simulated attack-victim author (the kernel only needs
/// signatures to be verifiable, not secret).
const AUTHOR_KEY: u64 = 0x0A77_ACC0_5EC4_E701;

/// How the attacker and victim are co-scheduled under the temporally shared
/// architectures (Insecure, SGX, MI6). Under IRONHIDE placement is always
/// dictated by the clusters, whatever the channel prefers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelPlacement {
    /// Victim and attacker time-share one core — required by channels that
    /// target per-core private state (TLB, L1).
    SharedCore,
    /// Victim and attacker run on different cores — channels that target the
    /// shared fabric (L2 slices, NoC, DRAM) leak across cores.
    DistinctCores,
}

/// A paired attacker/victim covert-channel workload.
///
/// The four reference streams are fixed per channel; every transmission slot
/// replays them in the same order, so a run is fully deterministic:
///
/// 1. [`CovertChannel::prime`] — the attacker prepares the shared structure
///    (fills the monitored cache sets / TLB entries / link state);
/// 2. [`CovertChannel::victim_protocol`] — the *fixed* interaction the victim
///    performs every slot regardless of the secret (reading the shared IPC
///    buffer, issued against insecure memory and marked as IPC traffic);
/// 3. [`CovertChannel::victim_secret`] — the secret-dependent burst the
///    victim issues in its own address space **only when transmitting a 1**;
/// 4. [`CovertChannel::probe`] — the accesses the attacker times to decode
///    the slot.
pub trait CovertChannel: fmt::Debug {
    /// The channel's display name (also the attack-matrix axis label).
    fn name(&self) -> &str;

    /// Preferred co-scheduling under temporally shared architectures.
    fn placement(&self) -> ChannelPlacement;

    /// Attacker references issued (untimed) at the start of every slot.
    fn prime(&self) -> &RefStream;

    /// Victim references issued every slot against the shared (insecure)
    /// address space, modelling the legitimate interaction protocol.
    fn victim_protocol(&self) -> &RefStream;

    /// Victim references issued in its own secure address space when the
    /// transmitted bit is 1 (idle when 0).
    fn victim_secret(&self) -> &RefStream;

    /// Attacker references whose latencies are the channel's observable.
    fn probe(&self) -> &RefStream;
}

/// The attacker-visible record of one attack run: per-slot probe latencies
/// plus the isolation audit of the machine the attack ran on.
#[derive(Debug, Clone)]
pub struct AttackTrace {
    /// Summed probe latency of each payload slot, in cycles (one entry per
    /// transmitted bit, in transmission order).
    pub probe_cycles: Vec<u64>,
    /// Total cycles of all payload slots (prime + victim + boundary + probe),
    /// for converting channel capacity to bits per second.
    pub payload_cycles: u64,
    /// Clock frequency of the machine, in GHz.
    pub clock_ghz: f64,
    /// Core the attacker issued from.
    pub attacker_core: NodeId,
    /// Core the victim issued from.
    pub victim_core: NodeId,
    /// Cores of the secure cluster (the machine size under temporal sharing).
    pub secure_cores: usize,
    /// Strong-isolation audit of the attacked machine.
    pub isolation: IsolationSummary,
}

/// Verdict on one channel under one architecture, derived from the measured
/// bit-error rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelVerdict {
    /// The attacker decodes well above chance: the channel works.
    Open,
    /// The attacker decodes above chance but unreliably.
    Degraded,
    /// The attacker does no better than guessing: the channel is closed.
    Closed,
}

impl ChannelVerdict {
    /// Effective BER at or below which a channel is declared
    /// [`ChannelVerdict::Open`].
    pub const OPEN_BER: f64 = 0.25;
    /// Half-width of the BER band around 0.5 declared
    /// [`ChannelVerdict::Closed`] (guessing).
    pub const CLOSED_BAND: f64 = 0.05;

    /// Classifies a measured bit-error rate. Classification is
    /// polarity-blind: a BER near 1.0 means the decoder's threshold polarity
    /// was inverted, and a real attacker just flips it — such a channel is
    /// as open as one near 0.0, so the *effective* BER `min(p, 1 − p)` is
    /// what gets judged.
    pub fn from_ber(ber: f64) -> Self {
        let effective = ber.min(1.0 - ber);
        if effective <= Self::OPEN_BER {
            ChannelVerdict::Open
        } else if (ber - 0.5).abs() <= Self::CLOSED_BAND {
            ChannelVerdict::Closed
        } else {
            ChannelVerdict::Degraded
        }
    }
}

impl fmt::Display for ChannelVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelVerdict::Open => write!(f, "OPEN"),
            ChannelVerdict::Degraded => write!(f, "DEGRADED"),
            ChannelVerdict::Closed => write!(f, "CLOSED"),
        }
    }
}

/// The decoded result of one attack run, as produced by the leakage oracle
/// and serialised into the attack matrix.
#[derive(Debug, Clone)]
pub struct AttackOutcome {
    /// Channel name.
    pub channel: String,
    /// Architecture attacked.
    pub arch: Architecture,
    /// Number of payload bits transmitted.
    pub payload_bits: u64,
    /// Decoded bits that did not match the transmitted ones.
    pub bit_errors: u64,
    /// Bit-error rate (`bit_errors / payload_bits`; 0.5 ≈ guessing).
    pub ber: f64,
    /// The latency threshold the decoder separated 0s from 1s with.
    pub threshold_cycles: f64,
    /// Fastest per-slot probe observed, in cycles.
    pub min_probe_cycles: u64,
    /// Slowest per-slot probe observed, in cycles.
    pub max_probe_cycles: u64,
    /// Binary-symmetric-channel capacity, in bits per transmission slot.
    pub capacity_bits_per_slot: f64,
    /// Capacity scaled by the measured slot rate, in bits per second.
    pub capacity_bits_per_second: f64,
    /// Total simulated cycles of the payload slots.
    pub payload_cycles: u64,
    /// Cores of the secure cluster the victim ran in.
    pub secure_cores: usize,
    /// Per-channel verdict derived from the BER.
    pub verdict: ChannelVerdict,
    /// Strong-isolation audit of the attacked machine (the attack must not
    /// have tripped any architectural invariant even when it leaks).
    pub isolation: IsolationSummary,
}

impl AttackOutcome {
    /// Whether the attacker demonstrably decoded the transmission.
    pub fn is_open(&self) -> bool {
        self.verdict == ChannelVerdict::Open
    }

    /// Whether the attacker did no better than guessing.
    pub fn is_closed(&self) -> bool {
        self.verdict == ChannelVerdict::Closed
    }
}

/// Co-schedules a covert-channel pair on one machine under one architecture.
#[derive(Debug, Clone)]
pub struct AttackRunner {
    config: MachineConfig,
    params: ArchParams,
    warmup_slots: usize,
}

impl AttackRunner {
    /// Creates a runner attacking machines built from `config`, with four
    /// warm-up slots (alternating both symbols) before measurement starts.
    pub fn new(config: MachineConfig) -> Self {
        AttackRunner { config, params: ArchParams::default(), warmup_slots: 4 }
    }

    /// Overrides the architecture parameters (SGX boundary cost).
    pub fn with_params(mut self, params: ArchParams) -> Self {
        self.params = params;
        self
    }

    /// Overrides the number of unmeasured warm-up slots.
    pub fn with_warmup(mut self, slots: usize) -> Self {
        self.warmup_slots = slots;
        self
    }

    /// The machine configuration attacked by each run.
    pub fn machine_config(&self) -> &MachineConfig {
        &self.config
    }

    /// Transmits `bits` through `channel` under `arch` and returns the
    /// attacker's observations.
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if cluster formation fails or the victim cannot
    /// be attested.
    pub fn run(
        &self,
        arch: Architecture,
        channel: &dyn CovertChannel,
        bits: &[bool],
    ) -> Result<AttackTrace, RunError> {
        self.run_recycled(arch, channel, bits, None).map(|(trace, _)| trace)
    }

    /// Like [`AttackRunner::run`], but recycles `machine` (from a prior run
    /// on the **same configuration**) instead of allocating a fresh one, and
    /// hands the run's machine back for the next caller — the same
    /// cell-pool recycling the performance sweep uses. Results are
    /// byte-identical to a fresh-machine run: [`Machine::reset_pristine`]
    /// also resets every home slice's coherence directory, so no sharer /
    /// owner metadata from the previous cell's victim survives into the
    /// next attack (covered by `recycled_machine_attack_is_byte_identical`
    /// below).
    ///
    /// # Errors
    ///
    /// Returns a [`RunError`] if cluster formation fails or the victim
    /// cannot be attested (the recycled machine is lost in that case).
    pub fn run_recycled(
        &self,
        arch: Architecture,
        channel: &dyn CovertChannel,
        bits: &[bool],
        recycled: Option<Machine>,
    ) -> Result<(AttackTrace, Machine), RunError> {
        let mut machine = match recycled {
            Some(mut m) => {
                m.reset_pristine();
                m
            }
            None => Machine::new(self.config.clone()),
        };
        let attacker = machine.create_process("attacker", SecurityClass::Insecure);
        let victim = machine.create_process("victim", SecurityClass::Secure);

        // The victim is a secure process: it must attest before the secure
        // kernel lets it execute. The attacker is unattested insecure code in
        // a foreign trust domain — by construction mutually distrusting.
        let mut kernel = SecureKernel::new();
        let image = format!("victim:{}", channel.name()).into_bytes();
        let signature = SecureKernel::sign(&image, AUTHOR_KEY);
        kernel.register(victim, &image, signature, AUTHOR_KEY, AppDomain(1))?;
        kernel.admit(victim, &image)?;

        let total = self.config.cores();
        let mut secure_cores = total;
        let (attacker_core, victim_core) = match arch {
            // The temporal fence places like the insecure baseline — every
            // resource shared — and defends only at the slot's boundary
            // crossings (see AttackRunner::boundary).
            Architecture::Insecure | Architecture::SgxLike | Architecture::TemporalFence => {
                (NodeId(0), self.temporal_victim_core(channel))
            }
            Architecture::Mi6 => {
                // MI6's static partition: the secure process homes its pages
                // on the low half of the slices, the insecure one on the high
                // half; cores remain time-shared.
                let half = (total / 2).max(1);
                let low: Vec<SliceId> = (0..half).map(SliceId).collect();
                let high: Vec<SliceId> = (half..total).map(SliceId).collect();
                machine.set_process_slices(victim, &low);
                machine.set_process_slices(attacker, &high);
                (NodeId(0), self.temporal_victim_core(channel))
            }
            Architecture::Ironhide => {
                let half = (total / 2).max(1);
                let (manager, _setup) = ClusterManager::form(&mut machine, victim, attacker, half)?;
                secure_cores = half;
                let vic = manager.cores_iter(ClusterId::Secure).next().expect("non-empty cluster");
                let att =
                    manager.cores_iter(ClusterId::Insecure).next().expect("non-empty cluster");
                (att, vic)
            }
        };

        machine.enable_latency_trace(channel.probe().len().max(1));
        let mut spec = SpeculativeAccessCheck::new();
        let mut state = SlotState { machine, spec: &mut spec, attacker, victim };

        // Warm up with alternating symbols so caches, TLBs and the NoC's
        // congestion estimators settle into the steady state for both.
        for i in 0..self.warmup_slots {
            self.slot(&mut state, arch, channel, attacker_core, victim_core, i % 2 == 0);
        }

        let mut probe_cycles = Vec::with_capacity(bits.len());
        let mut payload_cycles = 0u64;
        for &bit in bits {
            let (probe, slot_total) =
                self.slot(&mut state, arch, channel, attacker_core, victim_core, bit);
            probe_cycles.push(probe);
            payload_cycles += slot_total;
        }

        let isolation = IsolationAuditor::new().audit(&state.machine, arch, state.spec);
        Ok((
            AttackTrace {
                probe_cycles,
                payload_cycles,
                clock_ghz: self.config.clock_ghz,
                attacker_core,
                victim_core,
                secure_cores,
                isolation,
            },
            state.machine,
        ))
    }

    /// The victim's core under the temporally shared architectures, honouring
    /// the channel's placement preference.
    fn temporal_victim_core(&self, channel: &dyn CovertChannel) -> NodeId {
        match channel.placement() {
            ChannelPlacement::SharedCore => NodeId(0),
            ChannelPlacement::DistinctCores => NodeId(self.config.cores() - 1),
        }
    }

    /// Runs one transmission slot and returns `(probe_cycles, slot_cycles)`.
    fn slot(
        &self,
        state: &mut SlotState<'_>,
        arch: Architecture,
        channel: &dyn CovertChannel,
        attacker_core: NodeId,
        victim_core: NodeId,
        bit: bool,
    ) -> (u64, u64) {
        let mut total = 0u64;

        // 1. The attacker primes the monitored structure.
        total += state.issue(state.attacker, attacker_core, channel.prime(), arch, true);

        // 2. The victim enters its secure phase. MI6 purges at the boundary;
        //    the other architectures cross it for free or for a constant
        //    crypto cost.
        total += self.boundary(&mut state.machine, arch);

        // 3. The fixed interaction protocol: the victim touches the shared
        //    IPC region (insecure memory) identically every slot, so the
        //    protocol itself carries no information.
        state.machine.set_ipc_marker(true);
        total += state.issue(state.attacker, victim_core, channel.victim_protocol(), arch, false);
        state.machine.set_ipc_marker(false);

        // 4. The secret-dependent burst in the victim's own address space.
        if bit {
            total += state.issue(state.victim, victim_core, channel.victim_secret(), arch, false);
        }

        // 5. The victim leaves its secure phase.
        total += self.boundary(&mut state.machine, arch);

        // 6. The attacker probes, observing only its own access latencies
        //    through the machine's latency-trace hook.
        if let Some(trace) = state.machine.latency_trace_mut() {
            trace.clear();
        }
        let issued = state.issue(state.attacker, attacker_core, channel.probe(), arch, true);
        let probe =
            state.machine.latency_trace().map(|trace| trace.total_cycles()).unwrap_or(issued);
        debug_assert_eq!(probe, issued, "latency trace must observe exactly the probe stream");
        total += probe;
        (probe, total)
    }

    /// The cost of one secure-phase boundary crossing under `arch`. MI6
    /// charges the shared boundary model of [`crate::boundary`] — the same
    /// purge-everything fence the performance runner charges, so the machine
    /// the attacks run against is exactly the machine the figures price.
    fn boundary(&self, machine: &mut Machine, arch: Architecture) -> u64 {
        let clock = machine.clock();
        match arch {
            Architecture::Insecure | Architecture::Ironhide => 0,
            Architecture::SgxLike => clock.us_to_cycles(self.params.sgx_entry_exit_us),
            Architecture::Mi6 => mi6_boundary_cost(machine, &self.params),
            // The temporal fence's domain switch: erase the configured flush
            // set and charge its state-independent worst-case cost. The
            // policy comes from the runner's config (the per-cell ablation
            // config), never the recycled machine's stored copy.
            Architecture::TemporalFence => {
                let fence = self.config.temporal_fence;
                machine.temporal_flush(fence.set);
                fence.switch_cost(&self.config)
            }
        }
    }
}

/// Mutable per-run state bundled so the slot helper stays readable.
#[derive(Debug)]
struct SlotState<'a> {
    machine: Machine,
    spec: &'a mut SpeculativeAccessCheck,
    attacker: ProcessId,
    victim: ProcessId,
}

impl SlotState<'_> {
    /// Issues one reference stream on `core` against `pid`'s address space
    /// through the batched access engine, screening insecure-issued
    /// references through the speculative-access check when the architecture
    /// mandates it (the same shared [`issue_run`] the performance runner
    /// uses).
    fn issue(
        &mut self,
        pid: ProcessId,
        core: NodeId,
        refs: &RefStream,
        arch: Architecture,
        issuer_is_insecure: bool,
    ) -> u64 {
        let screened = arch.speculative_check() && issuer_is_insecure;
        let mut cycles = 0;
        for r in refs.runs() {
            cycles += issue_run(&mut self.machine, self.spec, pid, core, *r, screened);
        }
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal channel: the victim's secret burst sweeps the attacker's
    /// probe working set out of the shared L2.
    #[derive(Debug)]
    struct TinyChannel {
        prime: RefStream,
        protocol: RefStream,
        secret: RefStream,
        probe: RefStream,
    }

    impl TinyChannel {
        fn new() -> Self {
            use crate::app::MemRef;
            let page = 4096u64;
            let prime = RefStream::from_refs((0..128).map(|i| MemRef::read(i * 64)));
            let secret =
                RefStream::from_refs((0..512u64).map(|i| MemRef::read(0x10_0000 + i * 64)));
            TinyChannel {
                probe: prime.clone(),
                prime,
                protocol: RefStream::from_refs([
                    MemRef::read(0x4000_0000),
                    MemRef::read(0x4000_0000 + page),
                ]),
                secret,
            }
        }
    }

    impl CovertChannel for TinyChannel {
        fn name(&self) -> &str {
            "tiny"
        }
        fn placement(&self) -> ChannelPlacement {
            ChannelPlacement::DistinctCores
        }
        fn prime(&self) -> &RefStream {
            &self.prime
        }
        fn victim_protocol(&self) -> &RefStream {
            &self.protocol
        }
        fn victim_secret(&self) -> &RefStream {
            &self.secret
        }
        fn probe(&self) -> &RefStream {
            &self.probe
        }
    }

    #[test]
    fn verdict_classification() {
        assert_eq!(ChannelVerdict::from_ber(0.0), ChannelVerdict::Open);
        assert_eq!(ChannelVerdict::from_ber(0.25), ChannelVerdict::Open);
        assert_eq!(ChannelVerdict::from_ber(0.35), ChannelVerdict::Degraded);
        assert_eq!(ChannelVerdict::from_ber(0.5), ChannelVerdict::Closed);
        assert_eq!(ChannelVerdict::from_ber(0.46), ChannelVerdict::Closed);
        assert_eq!(ChannelVerdict::from_ber(0.6), ChannelVerdict::Degraded);
        // Polarity-blind: an anti-correlated decode is still a working
        // channel (the attacker inverts the threshold).
        assert_eq!(ChannelVerdict::from_ber(0.95), ChannelVerdict::Open);
        assert_eq!(ChannelVerdict::from_ber(1.0), ChannelVerdict::Open);
        assert_eq!(ChannelVerdict::Open.to_string(), "OPEN");
    }

    #[test]
    fn insecure_run_separates_symbols_and_ironhide_does_not() {
        let runner = AttackRunner::new(MachineConfig::attack_testbench());
        let channel = TinyChannel::new();
        let bits = [true, false, true, false, false, true];
        let open = runner.run(Architecture::Insecure, &channel, &bits).unwrap();
        assert_eq!(open.probe_cycles.len(), bits.len());
        let ones: Vec<u64> =
            bits.iter().zip(&open.probe_cycles).filter(|(b, _)| **b).map(|(_, c)| *c).collect();
        let zeros: Vec<u64> =
            bits.iter().zip(&open.probe_cycles).filter(|(b, _)| !**b).map(|(_, c)| *c).collect();
        assert!(
            ones.iter().min() > zeros.iter().max(),
            "victim activity must slow the attacker's probes ({ones:?} vs {zeros:?})"
        );

        let closed = runner.run(Architecture::Ironhide, &channel, &bits).unwrap();
        assert!(closed.isolation.is_clean(), "violations: {:?}", closed.isolation.violations);
        let spread =
            closed.probe_cycles.iter().max().unwrap() - closed.probe_cycles.iter().min().unwrap();
        assert!(spread <= 2, "IRONHIDE probes must be bit-independent (spread {spread})");
        assert_ne!(closed.attacker_core, closed.victim_core);
    }

    /// Machine recycling across attack cells: a machine saturated with one
    /// run's caches, NoC load and coherence-directory state must replay the
    /// next run byte-identically to a fresh machine — directory residue in
    /// particular is exactly what the coherence-state channel would read.
    #[test]
    fn recycled_machine_attack_is_byte_identical() {
        let runner = AttackRunner::new(MachineConfig::attack_testbench()).with_warmup(2);
        let channel = TinyChannel::new();
        let bits = [true, false, false, true, true, false];
        let (fresh, machine) =
            runner.run_recycled(Architecture::Insecure, &channel, &bits, None).unwrap();
        // Recycle through a *different* architecture first, so cluster maps,
        // slice restrictions and purge state all get exercised in between.
        let (_, machine) =
            runner.run_recycled(Architecture::Ironhide, &channel, &bits, Some(machine)).unwrap();
        let (recycled, _) =
            runner.run_recycled(Architecture::Insecure, &channel, &bits, Some(machine)).unwrap();
        assert_eq!(fresh.probe_cycles, recycled.probe_cycles);
        assert_eq!(fresh.payload_cycles, recycled.payload_cycles);
        assert_eq!(fresh.isolation.violations, recycled.isolation.violations);
    }

    #[test]
    fn mi6_boundary_purges_between_phases() {
        let runner = AttackRunner::new(MachineConfig::attack_testbench()).with_warmup(1);
        let channel = TinyChannel::new();
        let trace = runner.run(Architecture::Mi6, &channel, &[true, false]).unwrap();
        let spread =
            trace.probe_cycles.iter().max().unwrap() - trace.probe_cycles.iter().min().unwrap();
        assert!(spread <= 2, "MI6 purge must flatten the channel (spread {spread})");
    }
}
