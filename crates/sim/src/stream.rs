//! Run-length-encoded memory-reference streams.
//!
//! The interactive workloads, the IPC buffer and the covert-channel library
//! all issue long arithmetic sweeps: `base, base + stride, base + 2·stride,
//! ...` with one read/write polarity. Materialising those as `Vec<MemRef>`
//! (16 bytes per reference) made the reference stream the largest allocation
//! of every interaction *and* forced the machine to re-derive per-reference
//! facts (page, home slice, route) it could have computed once per run.
//!
//! A [`RefStream`] stores the same stream as a sequence of [`RefRun`]s — one
//! `(base, stride, len, write)` descriptor per arithmetic run, with
//! irregular references degenerating to single-element runs — and is built
//! incrementally by [`RefStream::push`], which greedily extends the trailing
//! run. The encoding is exact: iterating a stream yields precisely the
//! references that were pushed, in order.
//!
//! [`Machine::access_stream`](crate::machine::Machine::access_stream) is the
//! batched counterpart that exploits the run structure; it is byte-identical
//! in all observable effects to issuing the decoded references one
//! [`Machine::access`](crate::machine::Machine::access) at a time (enforced
//! by `tests/hot_path_equivalence.rs`).

/// One memory reference: a virtual address within the issuing process's
/// address space plus a read/write flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Virtual address.
    pub vaddr: u64,
    /// `true` for a store, `false` for a load.
    pub write: bool,
}

impl MemRef {
    /// A load from `vaddr`.
    pub fn read(vaddr: u64) -> Self {
        MemRef { vaddr, write: false }
    }

    /// A store to `vaddr`.
    pub fn write(vaddr: u64) -> Self {
        MemRef { vaddr, write: true }
    }
}

/// A run of `len` memory references at `base, base + stride, base +
/// 2·stride, ...`, all loads or all stores.
///
/// `stride` is interpreted with two's-complement wrapping arithmetic, so a
/// "negative" stride (e.g. `0u64.wrapping_sub(64)`) walks downwards. An
/// irregular reference is simply a run of `len == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefRun {
    /// Virtual address of the first reference.
    pub base: u64,
    /// Address delta between consecutive references (wrapping).
    pub stride: u64,
    /// Number of references in the run (≥ 1 in well-formed streams).
    pub len: u32,
    /// `true` for stores, `false` for loads.
    pub write: bool,
}

impl RefRun {
    /// A run of `len` references starting at `base` with the given stride.
    pub fn new(base: u64, stride: u64, len: u32, write: bool) -> Self {
        RefRun { base, stride, len, write }
    }

    /// The run holding exactly one reference.
    pub fn single(r: MemRef) -> Self {
        RefRun { base: r.vaddr, stride: 0, len: 1, write: r.write }
    }

    /// Address of the `i`-th reference of the run.
    #[inline]
    pub fn addr(&self, i: u32) -> u64 {
        self.base.wrapping_add(self.stride.wrapping_mul(i as u64))
    }

    /// The sub-run starting at reference `skip` (empty if `skip >= len`).
    pub fn tail(&self, skip: u32) -> RefRun {
        let skip = skip.min(self.len);
        RefRun {
            base: self.addr(skip),
            stride: self.stride,
            len: self.len - skip,
            write: self.write,
        }
    }

    /// The sub-run holding the first `n` references.
    pub fn take(&self, n: u32) -> RefRun {
        RefRun { len: n.min(self.len), ..*self }
    }

    /// The decoded references of the run, in order.
    pub fn iter(&self) -> impl Iterator<Item = MemRef> + '_ {
        (0..self.len).map(|i| MemRef { vaddr: self.addr(i), write: self.write })
    }

    /// Splits the run into maximal sub-runs that each stay inside one
    /// `granule_bytes`-sized, `granule_bytes`-aligned window (pages for the
    /// TLB/translation batch, cache lines for same-line collapsing).
    ///
    /// Addresses are assumed not to wrap around the top of the address space
    /// within one run (no workload allocates at `u64::MAX`).
    ///
    /// # Panics
    ///
    /// Panics if `granule_bytes` is zero.
    pub fn segments(&self, granule_bytes: u64) -> impl Iterator<Item = RefRun> {
        assert!(granule_bytes > 0, "segmentation granule must be non-zero");
        let mut rest = *self;
        std::iter::from_fn(move || {
            if rest.len == 0 {
                return None;
            }
            let s = rest.stride as i64;
            let k = if s == 0 {
                rest.len
            } else {
                // Bytes of headroom from `base` to the window edge in the
                // direction of travel, then how many strides fit in it.
                let room = if s > 0 {
                    granule_bytes - 1 - (rest.base % granule_bytes)
                } else {
                    rest.base % granule_bytes
                };
                let fit = room / s.unsigned_abs() + 1;
                fit.min(rest.len as u64) as u32
            };
            let seg = rest.take(k);
            rest = rest.tail(k);
            Some(seg)
        })
    }
}

/// A run-length-encoded stream of memory references.
///
/// Built by [`RefStream::push`]ing references in issue order; the builder
/// greedily extends the trailing run when the next reference continues its
/// arithmetic progression with the same polarity, and otherwise starts a new
/// run. Exact: [`RefStream::iter`] decodes back to precisely the pushed
/// sequence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefStream {
    runs: Vec<RefRun>,
    /// Total decoded references across all runs.
    total: u64,
}

impl RefStream {
    /// An empty stream.
    pub fn new() -> Self {
        RefStream::default()
    }

    /// Encodes an already-materialised reference sequence.
    pub fn from_refs(refs: impl IntoIterator<Item = MemRef>) -> Self {
        let mut s = RefStream::new();
        for r in refs {
            s.push(r);
        }
        s
    }

    /// Appends one reference, extending the trailing run when it continues
    /// the run's arithmetic progression with the same read/write polarity.
    pub fn push(&mut self, r: MemRef) {
        self.total += 1;
        if let Some(last) = self.runs.last_mut() {
            if last.write == r.write && last.len < u32::MAX {
                if last.len == 1 {
                    last.stride = r.vaddr.wrapping_sub(last.base);
                    last.len = 2;
                    return;
                }
                if r.vaddr == last.base.wrapping_add(last.stride.wrapping_mul(last.len as u64)) {
                    last.len += 1;
                    return;
                }
            }
        }
        self.runs.push(RefRun::single(r));
    }

    /// Appends a whole run (merging into the trailing run when it is the
    /// exact continuation of it).
    pub fn push_run(&mut self, run: RefRun) {
        if run.len == 0 {
            return;
        }
        self.total += run.len as u64;
        if let Some(last) = self.runs.last_mut() {
            if last.write == run.write
                && last.stride == run.stride
                && last.len > 1
                && run.base == last.base.wrapping_add(last.stride.wrapping_mul(last.len as u64))
                && (last.len as u64 + run.len as u64) <= u32::MAX as u64
            {
                last.len += run.len;
                return;
            }
        }
        self.runs.push(run);
    }

    /// Total number of decoded references.
    pub fn len(&self) -> usize {
        self.total as usize
    }

    /// Whether the stream holds no references.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The encoded runs, in issue order.
    pub fn runs(&self) -> &[RefRun] {
        &self.runs
    }

    /// Decodes the stream back to individual references, in issue order.
    pub fn iter(&self) -> impl Iterator<Item = MemRef> + '_ {
        self.runs.iter().flat_map(|r| r.iter())
    }

    /// Drops all references, keeping the run allocation.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.total = 0;
    }

    /// The sub-runs covering the reference index range `[start, end)` — used
    /// to carve a stream into per-lane chunks without re-materialising it.
    pub fn ref_range(&self, start: u64, end: u64) -> impl Iterator<Item = RefRun> + '_ {
        let mut offset = 0u64;
        let mut cursor = start;
        let end = end.min(self.total);
        self.runs
            .iter()
            .filter_map(move |run| {
                let run_start = offset;
                offset += run.len as u64;
                if cursor >= end || offset <= cursor {
                    return None;
                }
                let skip = (cursor - run_start) as u32;
                let take = (end - cursor).min((run.len - skip) as u64) as u32;
                cursor += take as u64;
                Some(run.tail(skip).take(take))
            })
            .filter(|r| r.len > 0)
    }
}

impl FromIterator<MemRef> for RefStream {
    fn from_iter<T: IntoIterator<Item = MemRef>>(iter: T) -> Self {
        RefStream::from_refs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memref_constructors() {
        assert!(!MemRef::read(0x10).write);
        assert!(MemRef::write(0x10).write);
        assert_eq!(MemRef::read(0x10).vaddr, 0x10);
    }

    #[test]
    fn push_encodes_arithmetic_sweeps_compactly() {
        let mut s = RefStream::new();
        for i in 0..100u64 {
            s.push(MemRef::read(0x1000 + i * 64));
        }
        assert_eq!(s.runs().len(), 1);
        assert_eq!(s.runs()[0], RefRun::new(0x1000, 64, 100, false));
        assert_eq!(s.len(), 100);
    }

    #[test]
    fn roundtrip_is_exact_for_irregular_streams() {
        let refs: Vec<MemRef> =
            [0x40u64, 0x80, 0xc0, 0x1000, 0x40, 0x38, 0x30, 0x28, 0x5000, 0x5000, 0x5000]
                .iter()
                .enumerate()
                .map(|(i, a)| MemRef { vaddr: *a, write: i % 3 == 0 })
                .collect();
        let s = RefStream::from_refs(refs.clone());
        assert_eq!(s.iter().collect::<Vec<_>>(), refs);
        assert_eq!(s.len(), refs.len());
        assert!(s.runs().len() < refs.len(), "descending/repeat sweeps must compress");
    }

    #[test]
    fn polarity_change_breaks_runs() {
        let mut s = RefStream::new();
        s.push(MemRef::read(0));
        s.push(MemRef::read(64));
        s.push(MemRef::write(128));
        assert_eq!(s.runs().len(), 2);
        assert_eq!(s.iter().count(), 3);
    }

    #[test]
    fn push_run_merges_continuations() {
        let mut s = RefStream::new();
        s.push_run(RefRun::new(0, 64, 4, false));
        s.push_run(RefRun::new(256, 64, 4, false));
        assert_eq!(s.runs().len(), 1);
        assert_eq!(s.runs()[0].len, 8);
        s.push_run(RefRun::new(0x9000, 64, 2, false));
        assert_eq!(s.runs().len(), 2);
        assert_eq!(s.len(), 10);
        s.push_run(RefRun::new(0, 0, 0, false));
        assert_eq!(s.len(), 10, "empty runs are ignored");
    }

    #[test]
    fn segments_split_at_page_boundaries() {
        // 64-byte stride crossing a 4 KB boundary at 0x1000.
        let run = RefRun::new(0xf80, 64, 6, false);
        let segs: Vec<RefRun> = run.segments(4096).collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], RefRun::new(0xf80, 64, 2, false));
        assert_eq!(segs[1], RefRun::new(0x1000, 64, 4, false));
        // Decoded contents are preserved.
        let decoded: Vec<MemRef> = segs.iter().flat_map(|s| s.iter()).collect();
        assert_eq!(decoded, run.iter().collect::<Vec<_>>());
    }

    #[test]
    fn segments_handle_stride_zero_and_negative() {
        let run = RefRun::new(0x2010, 0, 50, true);
        assert_eq!(run.segments(4096).collect::<Vec<_>>(), vec![run]);

        let down = RefRun::new(0x1040, 0u64.wrapping_sub(64), 4, false);
        let segs: Vec<RefRun> = down.segments(4096).collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].len, 2, "0x1040, 0x1000 stay in page 1");
        assert_eq!(segs[1].base, 0xfc0);
        assert_eq!(segs[1].len, 2, "0xfc0, 0xf80 fall into page 0");
    }

    #[test]
    fn segments_with_stride_larger_than_granule() {
        let run = RefRun::new(0x0, 4096 * 3, 4, false);
        let segs: Vec<RefRun> = run.segments(4096).collect();
        assert_eq!(segs.len(), 4);
        assert!(segs.iter().all(|s| s.len == 1));
    }

    #[test]
    fn ref_range_slices_by_reference_index() {
        let mut s = RefStream::new();
        for i in 0..10u64 {
            s.push(MemRef::read(i * 64));
        }
        s.push(MemRef::write(0x9000));
        for i in 0..5u64 {
            s.push(MemRef::read(0x10_000 + i * 128));
        }
        let all: Vec<MemRef> = s.iter().collect();
        for (start, end) in [(0u64, 16u64), (3, 12), (9, 11), (0, 0), (12, 16), (15, 99)] {
            let sliced: Vec<MemRef> =
                s.ref_range(start, end).flat_map(|r| r.iter().collect::<Vec<_>>()).collect();
            let lo = (start as usize).min(all.len());
            let hi = (end as usize).min(all.len());
            let expect = if lo < hi { all[lo..hi].to_vec() } else { Vec::new() };
            assert_eq!(sliced, expect, "range {start}..{end}");
        }
    }

    #[test]
    fn single_ref_runs_have_stride_zero() {
        let s = RefStream::from_refs([MemRef::read(0x40)]);
        assert_eq!(s.runs(), &[RefRun::new(0x40, 0, 1, false)]);
    }
}
