//! OS-level interactive services: a memcached-class key-value store, a
//! lighttpd-class static web server, and the untrusted OS process that
//! services their system calls.
//!
//! These applications interact with the OS at very high rates (the paper
//! measures ~220 K secure-process entry/exit events per second, matching
//! HotCalls), which is what makes them so sensitive to per-interaction
//! enclave costs. The store and the server are real data structures (an
//! open-addressing hash table; a file-content cache keyed by URL) driven by
//! memtier-/http_load-style request generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::recorder::{AccessRecorder, Region};

// ---------------------------------------------------------------------------
// Key-value store (MEMCACHED-class, secure)
// ---------------------------------------------------------------------------

/// A fixed-capacity open-addressing hash table standing in for memcached's
/// slab-allocated item store.
#[derive(Debug, Clone)]
pub struct KvStore {
    keys: Vec<Option<u64>>,
    values: Vec<u64>,
    capacity: usize,
    table_region: Region,
    value_region: Region,
    hits: u64,
    misses: u64,
}

/// The result of one key-value operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOutcome {
    /// GET found the key.
    Hit,
    /// GET did not find the key.
    Miss,
    /// SET stored or updated the key.
    Stored,
}

impl KvStore {
    /// Creates a store with `capacity` slots, laid out at `base`.
    pub fn new(capacity: usize, base: u64) -> Self {
        let capacity = capacity.next_power_of_two();
        let table_region = Region::new(base, 16, capacity as u64);
        let value_region = Region::new(table_region.end(), 64, capacity as u64);
        KvStore {
            keys: vec![None; capacity],
            values: vec![0; capacity],
            capacity,
            table_region,
            value_region,
            hits: 0,
            misses: 0,
        }
    }

    fn slot_of(&self, key: u64) -> usize {
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16) as usize & (self.capacity - 1)
    }

    /// GET: probes the table, recording every probe.
    pub fn get(&mut self, key: u64, rec: &mut AccessRecorder) -> KvOutcome {
        let mut slot = self.slot_of(key);
        for _ in 0..self.capacity {
            rec.read(&self.table_region, slot as u64);
            match self.keys[slot] {
                Some(k) if k == key => {
                    rec.read(&self.value_region, slot as u64);
                    self.hits += 1;
                    return KvOutcome::Hit;
                }
                None => {
                    self.misses += 1;
                    return KvOutcome::Miss;
                }
                _ => slot = (slot + 1) & (self.capacity - 1),
            }
        }
        self.misses += 1;
        KvOutcome::Miss
    }

    /// SET: inserts or updates, evicting by overwriting the probe chain's end
    /// when full (memcached would LRU-evict within a slab class).
    pub fn set(&mut self, key: u64, value: u64, rec: &mut AccessRecorder) -> KvOutcome {
        let mut slot = self.slot_of(key);
        for _ in 0..self.capacity {
            rec.read(&self.table_region, slot as u64);
            match self.keys[slot] {
                Some(k) if k == key => break,
                None => break,
                _ => slot = (slot + 1) & (self.capacity - 1),
            }
        }
        self.keys[slot] = Some(key);
        self.values[slot] = value;
        rec.write(&self.table_region, slot as u64);
        rec.write(&self.value_region, slot as u64);
        KvOutcome::Stored
    }

    /// GET hit rate observed so far.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A memtier-style request generator: a configurable GET/SET mix over a
/// skewed key distribution.
#[derive(Debug, Clone)]
pub struct MemtierGenerator {
    rng: StdRng,
    keyspace: u64,
    get_ratio: f64,
}

impl MemtierGenerator {
    /// Creates a generator over `keyspace` keys with the given GET ratio.
    pub fn new(seed: u64, keyspace: u64, get_ratio: f64) -> Self {
        MemtierGenerator { rng: StdRng::seed_from_u64(seed), keyspace: keyspace.max(1), get_ratio }
    }

    /// Produces the next `(is_get, key, value)` request.
    pub fn next_request(&mut self) -> (bool, u64, u64) {
        let is_get = self.rng.gen::<f64>() < self.get_ratio;
        let u: f64 = self.rng.gen();
        let key = ((u * u) * self.keyspace as f64) as u64 % self.keyspace;
        (is_get, key, self.rng.gen())
    }
}

// ---------------------------------------------------------------------------
// Static web server (LIGHTTPD-class, secure)
// ---------------------------------------------------------------------------

/// A lighttpd-class static file server: parses a request path, looks the file
/// up in a page cache, and streams it out in chunks.
#[derive(Debug, Clone)]
pub struct WebServer {
    pages: usize,
    page_bytes: usize,
    cache_region: Region,
    metadata_region: Region,
    requests: u64,
}

impl WebServer {
    /// Creates a server hosting `pages` pages of `page_bytes` bytes, laid out
    /// at `base`.
    pub fn new(pages: usize, page_bytes: usize, base: u64) -> Self {
        let metadata_region = Region::new(base, 64, pages as u64);
        let cache_region = Region::new(metadata_region.end(), 64, (pages * page_bytes / 64) as u64);
        WebServer { pages, page_bytes, cache_region, metadata_region, requests: 0 }
    }

    /// Serves one request for page `page_id`, returning the bytes sent.
    pub fn serve(&mut self, page_id: u64, rec: &mut AccessRecorder) -> usize {
        self.requests += 1;
        let page = (page_id % self.pages as u64) as usize;
        // Request parsing + metadata lookup (stat, mime type, headers).
        rec.read(&self.metadata_region, page as u64);
        rec.write(&self.metadata_region, page as u64);
        // Stream the file content cache in 64-byte lines (sampled upstream).
        let lines = self.page_bytes / 64;
        let base_line = page * lines;
        for l in 0..lines {
            rec.read(&self.cache_region, (base_line + l) as u64);
        }
        self.page_bytes
    }

    /// Requests served so far.
    pub fn requests(&self) -> u64 {
        self.requests
    }
}

/// An http_load-style client: random page popularity with a heavy tail.
#[derive(Debug, Clone)]
pub struct HttpLoadGenerator {
    rng: StdRng,
    pages: u64,
}

impl HttpLoadGenerator {
    /// Creates a client requesting from `pages` distinct pages.
    pub fn new(seed: u64, pages: u64) -> Self {
        HttpLoadGenerator { rng: StdRng::seed_from_u64(seed), pages: pages.max(1) }
    }

    /// Picks the next page to request.
    pub fn next_page(&mut self) -> u64 {
        // lighttpd's request stream in the paper shows little locality, so
        // draw uniformly rather than with a skew.
        self.rng.gen_range(0..self.pages)
    }
}

// ---------------------------------------------------------------------------
// The untrusted OS process (insecure)
// ---------------------------------------------------------------------------

/// The system calls the OS process services for the OS-interactive
/// applications (the set highlighted by HotCalls and the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Syscall {
    /// Read from a file or socket.
    Fread,
    /// File-descriptor control.
    Fcntl,
    /// Close a descriptor.
    Close,
    /// Vectored write to a socket.
    Writev,
}

/// The untrusted OS service process: maintains descriptor tables and socket
/// buffers and performs the requested call.
#[derive(Debug, Clone)]
pub struct OsServiceProcess {
    rng: StdRng,
    fd_table: Region,
    socket_buffers: Region,
    page_cache: Region,
    calls: u64,
}

impl OsServiceProcess {
    /// Creates the OS process with its tables laid out at `base`.
    pub fn new(seed: u64, base: u64) -> Self {
        let fd_table = Region::new(base, 64, 1024);
        let socket_buffers = Region::new(fd_table.end(), 64, 4096);
        let page_cache = Region::new(socket_buffers.end(), 64, 16 * 1024);
        OsServiceProcess {
            rng: StdRng::seed_from_u64(seed),
            fd_table,
            socket_buffers,
            page_cache,
            calls: 0,
        }
    }

    /// Services one system call of `bytes` bytes, recording its touches.
    pub fn service(&mut self, call: Syscall, bytes: usize, rec: &mut AccessRecorder) {
        self.calls += 1;
        let fd = self.rng.gen_range(0..self.fd_table.len());
        rec.read(&self.fd_table, fd);
        rec.write(&self.fd_table, fd);
        let lines = (bytes / 64).max(1) as u64;
        match call {
            Syscall::Fread => {
                let start = self.rng.gen_range(0..self.page_cache.len());
                for l in 0..lines {
                    rec.read(&self.page_cache, start + l);
                    rec.write(&self.socket_buffers, (start + l) % self.socket_buffers.len());
                }
            }
            Syscall::Fcntl => {
                rec.read(&self.fd_table, fd);
            }
            Syscall::Close => {
                rec.write(&self.fd_table, fd);
            }
            Syscall::Writev => {
                let start = self.rng.gen_range(0..self.socket_buffers.len());
                for l in 0..lines {
                    rec.read(&self.socket_buffers, start + l);
                }
            }
        }
    }

    /// Calls serviced so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Picks a call type with a distribution resembling the paper's request
    /// mix (reads and vectored writes dominate).
    pub fn pick_call(&mut self) -> Syscall {
        match self.rng.gen_range(0..100) {
            0..=44 => Syscall::Fread,
            45..=54 => Syscall::Fcntl,
            55..=64 => Syscall::Close,
            _ => Syscall::Writev,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_store_get_set_roundtrip() {
        let mut store = KvStore::new(1024, 0);
        let mut rec = AccessRecorder::unsampled();
        assert_eq!(store.get(42, &mut rec), KvOutcome::Miss);
        assert_eq!(store.set(42, 7, &mut rec), KvOutcome::Stored);
        assert_eq!(store.get(42, &mut rec), KvOutcome::Hit);
        assert!(store.hit_rate() > 0.0);
        assert!(rec.recorded() >= 4);
    }

    #[test]
    fn kv_store_handles_collisions() {
        let mut store = KvStore::new(16, 0);
        let mut rec = AccessRecorder::unsampled();
        for k in 0..12u64 {
            store.set(k, k * 10, &mut rec);
        }
        for k in 0..12u64 {
            assert_eq!(store.get(k, &mut rec), KvOutcome::Hit, "key {k} must survive collisions");
        }
    }

    #[test]
    fn memtier_mix_respects_get_ratio() {
        let mut gen = MemtierGenerator::new(3, 10_000, 0.9);
        let gets = (0..1000).filter(|_| gen.next_request().0).count();
        assert!((850..=950).contains(&gets), "got {gets} GETs out of 1000");
    }

    #[test]
    fn web_server_serves_full_pages() {
        let mut server = WebServer::new(128, 20 * 1024, 0);
        let mut rec = AccessRecorder::unsampled();
        let sent = server.serve(5, &mut rec);
        assert_eq!(sent, 20 * 1024);
        assert_eq!(server.requests(), 1);
        // 20 KB page = 320 cache lines + metadata touches.
        assert!(rec.recorded() >= 320);
    }

    #[test]
    fn http_load_generates_in_range_pages() {
        let mut client = HttpLoadGenerator::new(1, 100);
        for _ in 0..200 {
            assert!(client.next_page() < 100);
        }
    }

    #[test]
    fn os_process_services_all_call_types() {
        let mut os = OsServiceProcess::new(2, 0);
        let mut rec = AccessRecorder::unsampled();
        for call in [Syscall::Fread, Syscall::Fcntl, Syscall::Close, Syscall::Writev] {
            os.service(call, 512, &mut rec);
        }
        assert_eq!(os.calls(), 4);
        assert!(rec.recorded() > 8);
    }

    #[test]
    fn os_call_mix_covers_all_kinds() {
        let mut os = OsServiceProcess::new(7, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(format!("{:?}", os.pick_call()));
        }
        assert_eq!(seen.len(), 4);
    }
}
