//! Turning kernel executions into bounded address traces.
//!
//! The workload kernels operate on ordinary Rust data structures. To drive
//! the timing simulator they declare each important data structure as a
//! [`Region`] of the process's virtual address space and report element
//! touches to an [`AccessRecorder`], which run-length encodes them into a
//! [`RefStream`] (kernels sweep arrays, so even sampled traces compress into
//! a handful of arithmetic runs). Because real kernels can touch millions of
//! elements per input, the recorder *samples* touches (keeping every
//! `1/sample_rate`-th reference) so each interaction contributes a bounded,
//! representative trace.

use ironhide_core::app::{MemRef, RefStream};

/// A named span of the owning process's virtual address space backing one
/// data structure (an array, a hash table, an image plane, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base: u64,
    elem_bytes: u64,
    len: u64,
}

impl Region {
    /// Creates a region of `len` elements of `elem_bytes` bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `elem_bytes` is zero.
    pub fn new(base: u64, elem_bytes: u64, len: u64) -> Self {
        assert!(elem_bytes > 0, "elements must have a non-zero size");
        Region { base, elem_bytes, len }
    }

    /// Base virtual address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of elements.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the region in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the size overflows `u64` (a region that large cannot be
    /// addressed and always indicates a layout bug).
    pub fn size_bytes(&self) -> u64 {
        self.elem_bytes.checked_mul(self.len).unwrap_or_else(|| {
            panic!("region size {} x {} overflows u64", self.elem_bytes, self.len)
        })
    }

    /// Virtual address of element `index` (indices wrap so synthetic kernels
    /// can address freely).
    ///
    /// # Panics
    ///
    /// Panics if the element's address overflows `u64` — seed-shifted layout
    /// bases can push a region against the top of the address space, and a
    /// silent wrap would alias another region's trace, so the arithmetic is
    /// explicitly checked.
    pub fn addr_of(&self, index: u64) -> u64 {
        let idx = if self.len == 0 { 0 } else { index % self.len };
        idx.checked_mul(self.elem_bytes).and_then(|off| self.base.checked_add(off)).unwrap_or_else(
            || {
                panic!(
                    "address of element {idx} overflows u64 (region base {:#x}, {} B elements)",
                    self.base, self.elem_bytes
                )
            },
        )
    }

    /// The first address after the region; useful for laying out the next
    /// region with headroom.
    ///
    /// # Panics
    ///
    /// Panics if the end address overflows `u64` (the region cannot fit in
    /// the address space; see [`Region::addr_of`]).
    pub fn end(&self) -> u64 {
        self.base.checked_add(self.size_bytes()).unwrap_or_else(|| {
            panic!("region end overflows u64 (base {:#x} + {} B)", self.base, self.size_bytes())
        })
    }
}

/// Collects sampled memory references for one work unit, run-length encoded
/// as they arrive.
#[derive(Debug, Clone)]
pub struct AccessRecorder {
    refs: RefStream,
    sample_rate: u64,
    /// Touches left until the next kept sample — a countdown instead of a
    /// `counter % sample_rate` test, because `touch` runs once per element
    /// touch of every kernel and the division showed up in profiles.
    until_sample: u64,
    total_touches: u64,
    cap: usize,
}

impl AccessRecorder {
    /// Creates a recorder that keeps one in `sample_rate` touches and at most
    /// `cap` references per work unit.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero.
    pub fn new(sample_rate: u64, cap: usize) -> Self {
        assert!(sample_rate > 0, "sample rate must be at least 1");
        AccessRecorder {
            refs: RefStream::new(),
            sample_rate,
            until_sample: sample_rate,
            total_touches: 0,
            cap,
        }
    }

    /// A recorder that keeps everything (used in unit tests).
    pub fn unsampled() -> Self {
        AccessRecorder::new(1, usize::MAX)
    }

    /// Total touches reported (before sampling).
    pub fn total_touches(&self) -> u64 {
        self.total_touches
    }

    /// Number of references kept so far.
    pub fn recorded(&self) -> usize {
        self.refs.len()
    }

    /// Records a read of element `index` of `region`.
    pub fn read(&mut self, region: &Region, index: u64) {
        self.touch(region, index, false);
    }

    /// Records a write to element `index` of `region`.
    pub fn write(&mut self, region: &Region, index: u64) {
        self.touch(region, index, true);
    }

    /// Records `reps` passes over the cyclic read pattern `indices` (the
    /// shape of a stationary weight working set re-swept per output
    /// element): `reps * indices.len()` touches of
    /// `indices[0], indices[1], ..., indices[0], ...` in order.
    ///
    /// Byte-identical to the equivalent [`AccessRecorder::read`] loop — the
    /// same touches are counted and the same ones are kept — but the
    /// sampling arithmetic advances in bulk, visiting only the kept touches
    /// (and none at all once the per-unit cap is full), so recording cost no
    /// longer scales with a kernel's arithmetic intensity.
    pub fn read_cycle(&mut self, region: &Region, indices: &[u64], reps: u64) {
        self.bulk_cycle(region, indices.len() as u64, reps, |i| (indices[i as usize], false));
    }

    /// The write counterpart of [`AccessRecorder::read_cycle`]: `reps`
    /// passes over the cyclic *write* pattern `indices`, byte-identical to
    /// the equivalent [`AccessRecorder::write`] loop, with the same bulk
    /// sampling arithmetic — so write-heavy kernels with stationary
    /// patterns stop paying per-touch recording cost.
    pub fn write_cycle(&mut self, region: &Region, indices: &[u64], reps: u64) {
        self.bulk_cycle(region, indices.len() as u64, reps, |i| (indices[i as usize], true));
    }

    /// The mixed counterpart: `reps` passes over a cyclic pattern of
    /// `(index, write)` touches — the shape of a kernel that re-sweeps a
    /// stationary working set doing interleaved loads and stores.
    /// Byte-identical to issuing each `(index, write)` through
    /// [`AccessRecorder::read`]/[`AccessRecorder::write`] in order.
    pub fn rw_cycle(&mut self, region: &Region, pattern: &[(u64, bool)], reps: u64) {
        self.bulk_cycle(region, pattern.len() as u64, reps, |i| pattern[i as usize]);
    }

    /// The shared bulk core of the `*_cycle` recorders: `reps` passes over a
    /// `cycle`-touch pattern, where `at(i)` yields the `(index, write)` of
    /// the pattern's `i`-th touch. Counts every touch, keeps exactly the
    /// touches scalar recording would keep, and advances the sampling phase
    /// in O(kept) instead of O(touched).
    fn bulk_cycle(
        &mut self,
        region: &Region,
        cycle: u64,
        reps: u64,
        at: impl Fn(u64) -> (u64, bool),
    ) {
        if cycle == 0 || reps == 0 {
            return;
        }
        let n = cycle * reps;
        // 1-based offset within this block of the next kept touch.
        let mut offset = self.until_sample;
        while offset <= n && self.refs.len() < self.cap {
            let (index, write) = at((offset - 1) % cycle);
            self.refs.push(MemRef { vaddr: region.addr_of(index), write });
            offset += self.sample_rate;
        }
        self.total_touches += n;
        self.until_sample = if n < self.until_sample {
            self.until_sample - n
        } else {
            let past = n - self.until_sample;
            self.sample_rate - (past % self.sample_rate)
        };
    }

    fn touch(&mut self, region: &Region, index: u64, write: bool) {
        self.total_touches += 1;
        self.until_sample -= 1;
        if self.until_sample > 0 {
            return;
        }
        self.until_sample = self.sample_rate;
        if self.refs.len() >= self.cap {
            return;
        }
        self.refs.push(MemRef { vaddr: region.addr_of(index), write });
    }

    /// Finishes the work unit, returning the sampled, run-encoded references
    /// and resetting the recorder for the next unit.
    pub fn take(&mut self) -> RefStream {
        self.total_touches = 0;
        self.until_sample = self.sample_rate;
        std::mem::take(&mut self.refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_addressing() {
        let r = Region::new(0x1000, 8, 100);
        assert_eq!(r.addr_of(0), 0x1000);
        assert_eq!(r.addr_of(1), 0x1008);
        assert_eq!(r.addr_of(100), 0x1000, "indices wrap");
        assert_eq!(r.size_bytes(), 800);
        assert_eq!(r.end(), 0x1000 + 800);
        assert!(!r.is_empty());
    }

    #[test]
    fn recorder_keeps_everything_when_unsampled() {
        let region = Region::new(0, 4, 16);
        let mut rec = AccessRecorder::unsampled();
        for i in 0..10 {
            rec.read(&region, i);
        }
        rec.write(&region, 3);
        assert_eq!(rec.recorded(), 11);
        assert_eq!(rec.total_touches(), 11);
        let refs = rec.take();
        assert_eq!(refs.len(), 11);
        assert!(refs.iter().nth(10).unwrap().write);
        assert_eq!(rec.recorded(), 0);
    }

    #[test]
    fn sampling_reduces_trace_size() {
        let region = Region::new(0, 64, 1000);
        let mut rec = AccessRecorder::new(10, usize::MAX);
        for i in 0..1000 {
            rec.read(&region, i);
        }
        assert_eq!(rec.total_touches(), 1000);
        assert_eq!(rec.recorded(), 100);
    }

    #[test]
    fn read_cycle_matches_scalar_reads() {
        let region = Region::new(0x7000, 4, 512);
        let indices = [3u64, 99, 7, 200, 41];
        for (rate, cap, reps, pre) in [
            (1u64, usize::MAX, 40u64, 0u64),
            (3, usize::MAX, 41, 2),
            (2, 30, 100, 1),
            (7, 5, 13, 6),
        ] {
            let mut bulk = AccessRecorder::new(rate, cap);
            let mut scalar = AccessRecorder::new(rate, cap);
            // Desynchronise the sampling phase with a few ordinary touches.
            for i in 0..pre {
                bulk.read(&region, i);
                scalar.read(&region, i);
            }
            bulk.read_cycle(&region, &indices, reps);
            for _ in 0..reps {
                for idx in indices {
                    scalar.read(&region, idx);
                }
            }
            // And a few trailing touches to prove the phase survived.
            for i in 0..5 {
                bulk.read(&region, 300 + i);
                scalar.read(&region, 300 + i);
            }
            assert_eq!(bulk.total_touches(), scalar.total_touches(), "rate {rate} cap {cap}");
            assert_eq!(
                bulk.take().iter().collect::<Vec<_>>(),
                scalar.take().iter().collect::<Vec<_>>(),
                "rate {rate} cap {cap} reps {reps}"
            );
        }
    }

    #[test]
    fn region_may_end_exactly_at_the_address_space_top() {
        // A region flush against the top of the address space is legal: the
        // checked arithmetic must only reject actual overflow, not the
        // boundary itself.
        let r = Region::new(u64::MAX - 800, 8, 100);
        assert_eq!(r.size_bytes(), 800);
        assert_eq!(r.end(), u64::MAX);
        assert_eq!(r.addr_of(0), u64::MAX - 800);
        assert_eq!(r.addr_of(99), u64::MAX - 8);
    }

    #[test]
    #[should_panic(expected = "region size")]
    fn region_size_overflow_panics() {
        Region::new(0, u64::MAX, 2).size_bytes();
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn region_element_offset_overflow_panics() {
        // idx * elem_bytes alone overflows, before the base is even added.
        Region::new(0, u64::MAX / 2 + 1, 3).addr_of(2);
    }

    #[test]
    #[should_panic(expected = "address of element")]
    fn region_base_plus_offset_overflow_panics() {
        // A seed-shifted base near the top of the address space: element 50
        // lands past u64::MAX and must panic instead of wrapping into
        // (and aliasing) another region's addresses.
        Region::new(u64::MAX - 100, 8, 100).addr_of(50);
    }

    #[test]
    #[should_panic(expected = "region end overflows")]
    fn region_end_overflow_panics() {
        Region::new(u64::MAX - 100, 8, 100).end();
    }

    #[test]
    fn cap_bounds_the_trace() {
        let region = Region::new(0, 64, 1000);
        let mut rec = AccessRecorder::new(1, 50);
        for i in 0..1000 {
            rec.write(&region, i);
        }
        assert_eq!(rec.recorded(), 50);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn zero_sample_rate_rejected() {
        AccessRecorder::new(0, 10);
    }
}
