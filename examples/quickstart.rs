//! Quickstart: run one interactive application under all four execution
//! architectures and compare the completion-time breakdown.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use ironhide::prelude::*;

fn main() {
    // The paper's machine: 64 tiles on an 8x8 mesh, 4 memory controllers.
    let machine = MachineConfig::paper_default();
    let runner = ExperimentRunner::new(machine);

    println!("<AES, QUERY> under each execution architecture (smoke scale)\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>14} {:>8}",
        "arch", "total (ms)", "compute", "overhead", "reconfig (ms)", "L1 miss"
    );

    let mut baseline_ms = None;
    for arch in Architecture::ALL {
        let mut app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
        let report = runner.run(arch, app.as_mut()).expect("run succeeds");
        assert!(report.isolation.is_clean(), "strong isolation must hold");
        let total = report.total_time_ms();
        let baseline = *baseline_ms.get_or_insert(total);
        println!(
            "{:<10} {:>12.3} {:>12.3} {:>12.3} {:>14.3} {:>7.1}%  ({:.2}x insecure)",
            arch.to_string(),
            total,
            report.compute_time_ms(),
            report.overhead_time_ms(),
            report.reconfig_time_ms(),
            report.l1_miss_rate * 100.0,
            total / baseline,
        );
    }

    println!(
        "\nIRONHIDE pins the AES enclave to a secure cluster of cores, so it pays no\n\
         per-interaction enclave entry/exit or purge cost — only a one-time cluster\n\
         reconfiguration — while keeping the strong isolation guarantees of MI6."
    );
}
