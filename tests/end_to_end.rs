//! Cross-crate integration tests: whole applications running on the full
//! machine under every architecture, checking the orderings the paper's
//! argument rests on.

use ironhide::prelude::*;

fn runner() -> ExperimentRunner {
    let params =
        ArchParams { warmup_interactions: 2, predictor_sample: 3, ..ArchParams::default() };
    ExperimentRunner::new(MachineConfig::paper_default()).with_params(params)
}

/// A runner whose machine carries a temporal-fence policy. The four seed
/// architectures ignore the field, so the same runner drives all five.
fn fence_runner(fence: TemporalFenceConfig) -> ExperimentRunner {
    let params =
        ArchParams { warmup_interactions: 2, predictor_sample: 3, ..ArchParams::default() };
    let mut machine = MachineConfig::paper_default();
    machine.temporal_fence = fence;
    ExperimentRunner::new(machine).with_params(params).with_realloc(ReallocPolicy::Static)
}

#[test]
fn every_application_runs_under_every_architecture() {
    // The fence policy rides along so the fifth architecture actually
    // flushes; the four seed architectures never read it.
    let runner = fence_runner(TemporalFenceConfig::simf());
    for app_id in [AppId::QueryAes, AppId::MemcachedOs, AppId::PrGraph] {
        for arch in Architecture::ALL.into_iter().chain([Architecture::TemporalFence]) {
            let mut app = app_id.instantiate(&ScaleFactor::Smoke);
            let report = runner.run(arch, app.as_mut()).unwrap();
            assert!(report.total_cycles > 0, "{} under {arch} produced no work", app_id.label());
            assert_eq!(report.interactions, app.interactions() as u64);
            assert!(
                report.isolation.is_clean(),
                "{} under {arch} violated isolation: {:?}",
                app_id.label(),
                report.isolation.violations
            );
        }
    }
}

#[test]
fn security_cost_ordering_holds_for_os_interactive_apps() {
    let runner = runner().with_realloc(ReallocPolicy::Static);
    let mut insecure_app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);
    let mut sgx_app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);
    let mut mi6_app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);
    let mut ih_app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);

    let insecure = runner.run(Architecture::Insecure, insecure_app.as_mut()).unwrap();
    let sgx = runner.run(Architecture::SgxLike, sgx_app.as_mut()).unwrap();
    let mi6 = runner.run(Architecture::Mi6, mi6_app.as_mut()).unwrap();
    let ih = runner.run(Architecture::Ironhide, ih_app.as_mut()).unwrap();

    assert!(sgx.total_cycles > insecure.total_cycles);
    assert!(mi6.total_cycles > sgx.total_cycles);
    assert!(ih.total_cycles < mi6.total_cycles, "IRONHIDE must beat MI6 on OS-interactive apps");
    assert!(ih.total_cycles < sgx.total_cycles, "IRONHIDE must beat SGX on OS-interactive apps");
    assert_eq!(ih.overhead_cycles, 0);
    assert!(mi6.overhead_cycles > 0);
}

#[test]
fn simf_charges_at_least_what_any_selective_subset_charges() {
    // The same OS-interactive trace under the fence, three ways: flushing
    // everything (SIMF), everything but the cost-only predictor class, and
    // just the private-state pair. Every domain switch charges the
    // configured switch cost, so the end-to-end overhead must order exactly
    // as the per-switch costs do — SIMF is the ceiling.
    let selective = FlushSet::of(&[FlushResource::L1, FlushResource::Tlb]);
    let mut reports = Vec::new();
    for fence in [
        TemporalFenceConfig::simf(),
        TemporalFenceConfig::selective(all_but_predictor()),
        TemporalFenceConfig::selective(selective),
    ] {
        let mut app = AppId::MemcachedOs.instantiate(&ScaleFactor::Smoke);
        let report = fence_runner(fence).run(Architecture::TemporalFence, app.as_mut()).unwrap();
        assert!(report.overhead_cycles > 0, "{} charged nothing", fence.set.label());
        reports.push(report);
    }
    let (simf, all_but_pred, private_pair) = (&reports[0], &reports[1], &reports[2]);
    assert!(
        simf.overhead_cycles >= all_but_pred.overhead_cycles
            && all_but_pred.overhead_cycles >= private_pair.overhead_cycles,
        "fence overheads must order with their switch costs: SIMF {} ≥ all-but-pred {} ≥ l1+tlb {}",
        simf.overhead_cycles,
        all_but_pred.overhead_cycles,
        private_pair.overhead_cycles
    );
    // Identical interaction counts: the fence charges time, not work.
    assert_eq!(simf.interactions, private_pair.interactions);
    assert!(simf.total_cycles > private_pair.total_cycles);
}

#[test]
fn mi6_inflates_l1_miss_rate_relative_to_ironhide() {
    let runner = runner().with_realloc(ReallocPolicy::Static);
    let mut mi6_app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
    let mut ih_app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
    let mi6 = runner.run(Architecture::Mi6, mi6_app.as_mut()).unwrap();
    let ih = runner.run(Architecture::Ironhide, ih_app.as_mut()).unwrap();
    assert!(
        mi6.l1_miss_rate > ih.l1_miss_rate,
        "purging every interaction must thrash the L1 (MI6 {:.3} vs IRONHIDE {:.3})",
        mi6.l1_miss_rate,
        ih.l1_miss_rate
    );
}

#[test]
fn heuristic_gives_triangle_counting_a_small_secure_cluster() {
    let params = ArchParams { warmup_interactions: 1, ..ArchParams::default() };
    let runner = ExperimentRunner::new(MachineConfig::paper_default()).with_params(params);
    let mut app = AppId::TcGraph.instantiate(&ScaleFactor::Smoke);
    let report = runner.run(Architecture::Ironhide, app.as_mut()).unwrap();
    assert!(
        report.secure_cores <= 16,
        "TC is synchronisation bound; the predictor gave it {} cores",
        report.secure_cores
    );
    assert!(report.secure_cores >= 1);
}

#[test]
fn reports_are_reproducible_for_a_fixed_configuration() {
    let runner = runner().with_realloc(ReallocPolicy::Static);
    let mut a = AppId::LighttpdOs.instantiate(&ScaleFactor::Smoke);
    let mut b = AppId::LighttpdOs.instantiate(&ScaleFactor::Smoke);
    let ra = runner.run(Architecture::Mi6, a.as_mut()).unwrap();
    let rb = runner.run(Architecture::Mi6, b.as_mut()).unwrap();
    assert_eq!(ra.total_cycles, rb.total_cycles, "the simulation must be deterministic");
    assert_eq!(ra.l1_miss_rate, rb.l1_miss_rate);
}
