//! The temporal-fence defence-ablation harness (BENCH_10).
//!
//! Sweeps the `TemporalFence` architecture's {flush subset × channel} grid
//! on the covert-channel testbench and reports, per channel, which flush
//! subset closes it at what switch cost — the experiment the fence.t.s paper
//! runs in silicon, reproduced across all six shipped channels (including
//! the directory, mesh-contention and reconfiguration-window channels no
//! hardware paper can reach). The output JSON (`BENCH_10.json` in the repo
//! root) embeds the full deterministic matrix, a per-channel
//! cheapest-closing-subset summary, and the FNV checksum CI pins.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p ironhide-bench --bin ablation            # full grid
//! cargo run --release -p ironhide-bench --bin ablation -- --smoke # CI smoke
//! cargo run --release -p ironhide-bench --bin ablation -- --out path.json
//! cargo run --release -p ironhide-bench --bin ablation -- --threads 2
//! ```
//!
//! Without `--threads` the grid runs at 1, 2 and 8 workers and the harness
//! exits non-zero unless all three serialised matrices are **byte-identical**
//! (the sweep runner's determinism contract). `--threads <n>` replaces that
//! set with a single `n`-worker run; CI uses it to re-derive the smoke
//! checksum in a separate process and pin it exactly. The harness also
//! enforces the ablation's differential claim: every channel must decode
//! under the zero-flush fence (it is the insecure baseline), SIMF must close
//! every channel, and some selective subset must close each channel at a
//! strictly lower switch cost than SIMF.

use std::time::Instant;

use ironhide_attacks::{ablation_grid, ablation_subsets, smoke_subsets};
use ironhide_core::sweep::{AblationMatrix, ScalePoint, SweepRunner};
use ironhide_sim::config::MachineConfig;
use ironhide_sim::fence::TemporalFenceConfig;

/// Master seed of the ablation sweep (arbitrary but fixed forever: changing
/// it would make the pinned checksum incomparable across PRs).
const MASTER_SEED: u64 = 0xAB1A_7104;

/// Thread counts of the byte-identity gate.
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// The subset row every channel must stay open under.
const NONE_LABEL: &str = "none";

/// The flush-everything preset row.
const SIMF_LABEL: &str = "simf";

fn main() {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_10.json");
    let mut threads_override: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => {
                out_path = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                threads_override = Some(
                    args.next().and_then(|n| n.parse().ok()).filter(|&n| n > 0).unwrap_or_else(
                        || {
                            eprintln!("--threads requires a positive worker count");
                            std::process::exit(2);
                        },
                    ),
                );
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: ablation [--smoke] [--threads <n>] [--out <path>]");
                std::process::exit(2);
            }
        }
    }

    let subsets = if smoke { smoke_subsets() } else { ablation_subsets() };
    let grid = ablation_grid(subsets, &[ScalePoint::new("Smoke")]);
    let label = if smoke { "smoke" } else { "full" };
    let config = MachineConfig::attack_testbench();

    let thread_counts: Vec<usize> =
        threads_override.map_or_else(|| THREAD_COUNTS.to_vec(), |n| vec![n]);
    let mut result: Option<(AblationMatrix, String, f64)> = None;
    for &threads in &thread_counts {
        let runner = SweepRunner::new(config.clone()).with_threads(threads).with_seed(MASTER_SEED);
        eprintln!(
            "ablation: running {label} grid ({} cells, {threads} thread{})...",
            grid.len(),
            if threads == 1 { "" } else { "s" }
        );
        let start = Instant::now();
        let matrix = runner.run_ablation(&grid).unwrap_or_else(|e| {
            eprintln!("ablation sweep failed: {e}");
            std::process::exit(1);
        });
        let wall = start.elapsed().as_secs_f64();
        let json = matrix.to_json();
        match &result {
            // Byte-identity gate: every thread count must serialise the
            // exact same matrix.
            Some((_, first_json, _)) if *first_json != json => {
                eprintln!(
                    "ablation: NONDETERMINISM — the {threads}-thread matrix differs from the \
                     {}-thread matrix",
                    thread_counts[0]
                );
                std::process::exit(1);
            }
            Some(_) => {}
            None => result = Some((matrix, json, wall)),
        }
    }
    let (matrix, matrix_json, wall) = result.expect("at least one thread count ran");

    // The differential gate: open under zero flush, closed under SIMF, and
    // closed strictly cheaper than SIMF by some selective subset.
    let violations = matrix.differential_violations(NONE_LABEL, SIMF_LABEL);
    if !violations.is_empty() {
        eprintln!("ablation: the differential claim FAILED:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }

    let report = render_report(&matrix, &matrix_json, label, wall, &config, &thread_counts);
    std::fs::write(&out_path, &report).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("ablation: wrote {out_path}");
    println!("{report}");
}

/// Renders the measurement as deterministic-layout JSON (only
/// `wall_seconds` varies run to run; every other byte, including the
/// embedded matrix and its checksum, must not).
fn render_report(
    matrix: &AblationMatrix,
    matrix_json: &str,
    grid_label: &str,
    wall_s: f64,
    config: &MachineConfig,
    thread_counts: &[usize],
) -> String {
    let simf_cost = TemporalFenceConfig::simf().switch_cost(config);
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"temporal_fence_ablation\",\n");
    out.push_str(&format!("  \"grid\": \"{grid_label}\",\n"));
    out.push_str(&format!("  \"cells\": {},\n", matrix.cells.len()));
    out.push_str(&format!("  \"master_seed\": {},\n", matrix.master_seed));
    out.push_str(&format!("  \"wall_seconds\": {wall_s:.3},\n"));
    out.push_str(&format!("  \"thread_counts_identical\": {thread_counts:?},\n"));
    out.push_str(&format!("  \"ablation_checksum\": {},\n", matrix.checksum()));
    out.push_str(&format!("  \"simf_switch_cost\": {simf_cost},\n"));

    // Per-channel closure summary: what the channel costs to close, and how
    // far below flushing everything that sits.
    let mut channels: Vec<(String, String)> = Vec::new();
    for cell in &matrix.cells {
        let pair = (cell.key.channel.clone(), cell.key.scale.clone());
        if !channels.contains(&pair) {
            channels.push(pair);
        }
    }
    out.push_str("  \"channels\": [\n");
    for (i, (channel, scale)) in channels.iter().enumerate() {
        let open = matrix.get(NONE_LABEL, channel, scale).expect("the none row ran");
        let simf = matrix.get(SIMF_LABEL, channel, scale).expect("the simf row ran");
        let best = matrix.cheapest_closed(channel, scale).expect("the differential gate passed");
        let sep = if i + 1 == channels.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"channel\": \"{channel}\", \"scale\": \"{scale}\", \
             \"none_ber\": {:.3}, \"simf_ber\": {:.3}, \"simf_switch_cost\": {}, \
             \"cheapest_closed_subset\": \"{}\", \"cheapest_closed_cost\": {}, \
             \"saved_vs_simf\": {}}}{sep}\n",
            open.outcome.ber,
            simf.outcome.ber,
            simf.switch_cost,
            best.key.subset,
            best.switch_cost,
            simf.switch_cost - best.switch_cost,
        ));
    }
    out.push_str("  ],\n");

    // The full matrix, embedded verbatim: BENCH_10 is self-contained
    // evidence, not a pointer to a run that no longer exists.
    out.push_str("  \"matrix\": ");
    out.push_str(&matrix_json.trim_end().replace('\n', "\n  "));
    out.push_str("\n}\n");
    out
}
