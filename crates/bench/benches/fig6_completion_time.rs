//! Figure 6: completion times of IRONHIDE against the SGX and MI6 baselines
//! for each interactive application, broken into compute and enclave/purge
//! overhead, with the number of secure-cluster cores chosen by IRONHIDE and
//! the user-level / OS-level / overall geometric means.

use ironhide_bench::{geometric_mean, print_header, print_row, Sweep};
use ironhide_core::arch::Architecture;
use ironhide_core::realloc::ReallocPolicy;
use ironhide_core::runner::CompletionReport;
use ironhide_workloads::app::AppId;

fn geo_of(
    reports: &[(AppId, CompletionReport)],
    apps: &[AppId],
    f: impl Fn(&CompletionReport) -> f64,
) -> f64 {
    let values: Vec<f64> =
        reports.iter().filter(|(a, _)| apps.contains(a)).map(|(_, r)| f(r)).collect();
    geometric_mean(&values)
}

fn main() {
    let sweep = Sweep::default();
    println!("# Figure 6: completion time per interactive application (ms)\n");
    print_header(&[
        "Application",
        "SGX compute",
        "SGX overhead",
        "MI6 compute",
        "MI6 overhead",
        "IRONHIDE compute",
        "IRONHIDE overhead+reconfig",
        "IRONHIDE secure cores",
        "MI6/IRONHIDE speedup",
    ]);

    let mut per_arch: Vec<(AppId, CompletionReport, CompletionReport, CompletionReport)> =
        Vec::new();
    for app in AppId::ALL {
        let sgx = sweep.run_one(app, Architecture::SgxLike, ReallocPolicy::Heuristic);
        let mi6 = sweep.run_one(app, Architecture::Mi6, ReallocPolicy::Heuristic);
        let ih = sweep.run_one(app, Architecture::Ironhide, ReallocPolicy::Heuristic);
        assert!(sgx.isolation.is_clean() && mi6.isolation.is_clean() && ih.isolation.is_clean());
        print_row(&[
            app.label().to_string(),
            format!("{:.2}", sgx.compute_time_ms()),
            format!("{:.2}", sgx.overhead_time_ms()),
            format!("{:.2}", mi6.compute_time_ms()),
            format!("{:.2}", mi6.overhead_time_ms()),
            format!("{:.2}", ih.compute_time_ms()),
            format!("{:.2}", ih.overhead_time_ms() + ih.reconfig_time_ms()),
            format!("{}", ih.secure_cores),
            format!("{:.2}x", ih.speedup_over(&mi6)),
        ]);
        per_arch.push((app, sgx, mi6, ih));
    }

    let all: Vec<(AppId, CompletionReport)> =
        per_arch.iter().map(|(a, _, _, ih)| (*a, ih.clone())).collect();
    let mi6_all: Vec<(AppId, CompletionReport)> =
        per_arch.iter().map(|(a, _, mi6, _)| (*a, mi6.clone())).collect();
    let sgx_all: Vec<(AppId, CompletionReport)> =
        per_arch.iter().map(|(a, sgx, _, _)| (*a, sgx.clone())).collect();

    println!("\n## Geometric means (completion time, ms)\n");
    print_header(&["Group", "SGX", "MI6", "IRONHIDE", "MI6/IRONHIDE", "SGX/IRONHIDE"]);
    for (label, apps) in [
        ("User-level", AppId::user_level()),
        ("OS-level", AppId::os_level()),
        ("All", AppId::ALL.to_vec()),
    ] {
        let sgx = geo_of(&sgx_all, &apps, |r| r.total_time_ms());
        let mi6 = geo_of(&mi6_all, &apps, |r| r.total_time_ms());
        let ih = geo_of(&all, &apps, |r| r.total_time_ms());
        print_row(&[
            label.to_string(),
            format!("{sgx:.2}"),
            format!("{mi6:.2}"),
            format!("{ih:.2}"),
            format!("{:.2}x", mi6 / ih),
            format!("{:.2}x", sgx / ih),
        ]);
    }

    // The per-interaction purge overhead the paper quotes for MI6 (~0.19 ms)
    // and the purge-component improvement of IRONHIDE over MI6 (~706x).
    let mi6_overhead_per_interaction: Vec<f64> =
        per_arch.iter().map(|(_, _, mi6, _)| mi6.overhead_per_interaction_ms()).collect();
    let purge_improvement: Vec<f64> = per_arch
        .iter()
        .map(|(_, _, mi6, ih)| {
            let ih_over = (ih.overhead_cycles + ih.reconfig_cycles).max(1) as f64;
            mi6.overhead_cycles as f64 / ih_over
        })
        .collect();
    println!(
        "\nMI6 purge overhead per interaction (paper: ~0.19 ms): {:.3} ms (geomean)",
        geometric_mean(&mi6_overhead_per_interaction)
    );
    println!(
        "IRONHIDE purge-component improvement over MI6 (paper: ~706x): {:.0}x (geomean)",
        geometric_mean(&purge_improvement)
    );
}
