//! Property-based tests of the strong-isolation invariants.

use proptest::prelude::*;

use ironhide::ironhide_core::speccheck::SpeculativeAccessCheck;
use ironhide::ironhide_mem::{RegionMap, RegionOwner};
use ironhide::ironhide_mesh::{ClusterId, ClusterMap, MeshTopology, NodeId};
use ironhide::ironhide_sim::machine::Machine;
use ironhide::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Row-major cluster splits of any size can always contain their own
    /// traffic under bidirectional deterministic routing.
    #[test]
    fn row_major_clusters_always_contain_their_traffic(secure_cores in 0usize..=64) {
        let map = ClusterMap::row_major_split(MeshTopology::new(8, 8), secure_cores);
        prop_assert!(map.verify_containment().is_ok());
        prop_assert_eq!(map.size_of(ClusterId::Secure), secure_cores);
        prop_assert_eq!(map.size_of(ClusterId::Insecure), 64 - secure_cores);
    }

    /// The speculative-access hardware check never lets an insecure access to
    /// a secure DRAM region proceed, and never blocks a secure access.
    #[test]
    fn spec_check_blocks_exactly_insecure_to_secure(addr in 0u64..0x8000, controllers in 1usize..=4) {
        let regions = RegionMap::paper_layout(controllers, 0x1000);
        let mut check = SpeculativeAccessCheck::new();
        let insecure = check.check(&regions, SecurityClass::Insecure, addr);
        let secure = check.check(&regions, SecurityClass::Secure, addr);
        prop_assert!(secure.allowed());
        match regions.owner_of(addr) {
            Ok(RegionOwner::Secure) => prop_assert!(!insecure.allowed()),
            _ => prop_assert!(insecure.allowed()),
        }
    }

    /// Every physical page the machine hands to a process lives in a DRAM
    /// region owned by that process's security class, whatever the virtual
    /// addresses look like.
    #[test]
    fn allocated_pages_stay_in_owned_regions(vaddrs in prop::collection::vec(0u64..0x4000_0000, 1..40)) {
        let mut machine = Machine::new(MachineConfig::small_test());
        let secure = machine.create_process("s", SecurityClass::Secure);
        let insecure = machine.create_process("i", SecurityClass::Insecure);
        for (i, v) in vaddrs.iter().enumerate() {
            let pid = if i % 2 == 0 { secure } else { insecure };
            machine.access(NodeId(i % 4), pid, *v, i % 3 == 0);
        }
        for (pid, owner) in [(secure, RegionOwner::Secure), (insecure, RegionOwner::Insecure)] {
            for page in machine.process_physical_pages(pid) {
                let paddr = page.0 * machine.page_bytes();
                prop_assert_eq!(machine.regions().owner_of(paddr).unwrap(), owner);
            }
        }
    }

    /// A report produced under IRONHIDE never contains non-IPC cross-cluster
    /// traffic, for any (valid) static secure-cluster size.
    #[test]
    fn ironhide_cross_cluster_traffic_is_only_ipc(secure_fraction in 0.15f64..0.85) {
        let params = ArchParams {
            warmup_interactions: 1,
            predictor_sample: 1,
            initial_secure_fraction: secure_fraction,
            ..ArchParams::default()
        };
        let runner = ExperimentRunner::new(MachineConfig::paper_default())
            .with_params(params)
            .with_realloc(ReallocPolicy::Static);
        let mut app = AppId::QueryAes.instantiate(&ScaleFactor::Smoke);
        let report = runner.run(Architecture::Ironhide, app.as_mut()).unwrap();
        prop_assert!(report.isolation.is_clean(), "violations: {:?}", report.isolation.violations);
        prop_assert!(report.isolation.cross_cluster_packets <= report.isolation.ipc_packets);
    }
}
