//! A functional set-associative cache with configurable replacement.

use crate::config::CacheConfig;
use crate::replacement::ReplacementPolicy;
use crate::stats::CacheStats;

/// A line evicted by a fill or flush.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted {
    /// Physical address of the first byte of the evicted line.
    pub addr: u64,
    /// Whether the line was dirty (and therefore needs a write-back).
    pub dirty: bool,
}

/// The outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent; it has been filled, possibly evicting a victim.
    Miss {
        /// The victim line displaced by the fill, if the set was full.
        evicted: Option<Evicted>,
    },
}

impl AccessOutcome {
    /// Whether this outcome is a hit.
    pub fn is_hit(&self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }

    /// Whether this outcome is a miss.
    pub fn is_miss(&self) -> bool {
        !self.is_hit()
    }

    /// The evicted victim, if any.
    pub fn evicted(&self) -> Option<Evicted> {
        match self {
            AccessOutcome::Hit => None,
            AccessOutcome::Miss { evicted } => *evicted,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    valid: bool,
    dirty: bool,
    tag: u64,
    last_use: u64,
    filled_at: u64,
}

/// A functional set-associative cache.
///
/// The cache tracks tags, validity and dirtiness only — no data payloads —
/// which is all the timing model needs. All operations are O(associativity).
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    policy: ReplacementPolicy,
    sets: Vec<Vec<Way>>,
    tick: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with LRU replacement.
    pub fn new(config: CacheConfig) -> Self {
        SetAssocCache::with_policy(config, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache with the given replacement policy.
    pub fn with_policy(config: CacheConfig, policy: ReplacementPolicy) -> Self {
        let sets = vec![vec![Way::default(); config.ways]; config.sets()];
        SetAssocCache { config, policy, sets, tick: 0, stats: CacheStats::new() }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Access statistics accumulated so far.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets the statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.config.line_bytes as u64;
        let index = (line % self.config.sets() as u64) as usize;
        let tag = line / self.config.sets() as u64;
        (index, tag)
    }

    fn line_addr(&self, index: usize, tag: u64) -> u64 {
        (tag * self.config.sets() as u64 + index as u64) * self.config.line_bytes as u64
    }

    /// Looks up `addr` without modifying any state (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let (index, tag) = self.index_and_tag(addr);
        self.sets[index].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Performs a read (`write == false`) or write (`write == true`) access to
    /// the line containing `addr`, filling it on a miss.
    pub fn access(&mut self, addr: u64, write: bool) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let (index, tag) = self.index_and_tag(addr);
        let set = &mut self.sets[index];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = self.tick;
            way.dirty |= write;
            self.stats.hits += 1;
            return AccessOutcome::Hit;
        }
        self.stats.misses += 1;
        // Fill: find an invalid way, otherwise evict a victim.
        let victim_idx = match set.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                let last_use: Vec<u64> = set.iter().map(|w| w.last_use).collect();
                let filled_at: Vec<u64> = set.iter().map(|w| w.filled_at).collect();
                self.policy.victim(&last_use, &filled_at, self.tick)
            }
        };
        let victim = set[victim_idx];
        let evicted = if victim.valid {
            self.stats.evictions += 1;
            if victim.dirty {
                self.stats.writebacks += 1;
            }
            Some(Evicted { addr: self.line_addr(index, victim.tag), dirty: victim.dirty })
        } else {
            None
        };
        let set = &mut self.sets[index];
        set[victim_idx] =
            Way { valid: true, dirty: write, tag, last_use: self.tick, filled_at: self.tick };
        AccessOutcome::Miss { evicted }
    }

    /// Invalidates the line containing `addr` if present, returning it.
    pub fn invalidate(&mut self, addr: u64) -> Option<Evicted> {
        let (index, tag) = self.index_and_tag(addr);
        let line_addr = self.line_addr(index, tag);
        let set = &mut self.sets[index];
        let way = set.iter_mut().find(|w| w.valid && w.tag == tag)?;
        let dirty = way.dirty;
        way.valid = false;
        way.dirty = false;
        self.stats.flushed_lines += 1;
        if dirty {
            self.stats.writebacks += 1;
        }
        Some(Evicted { addr: line_addr, dirty })
    }

    /// Flushes and invalidates the whole cache (the MI6 purge operation),
    /// returning the number of dirty lines that had to be written back.
    pub fn purge(&mut self) -> u64 {
        let mut dirty = 0;
        let mut valid = 0;
        for set in &mut self.sets {
            for way in set.iter_mut() {
                if way.valid {
                    valid += 1;
                    if way.dirty {
                        dirty += 1;
                    }
                }
                *way = Way::default();
            }
        }
        self.stats.purges += 1;
        self.stats.flushed_lines += valid;
        self.stats.writebacks += dirty;
        dirty
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }

    /// Number of valid dirty lines currently resident.
    pub fn dirty_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid && w.dirty).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64-byte lines = 512 bytes.
        SetAssocCache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        assert!(c.access(0x0, false).is_miss());
        assert!(c.access(0x0, false).is_hit());
        assert!(c.access(0x3f, false).is_hit(), "same line must hit");
        assert!(c.access(0x40, false).is_miss(), "next line must miss");
        assert_eq!(c.stats().accesses, 4);
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Three lines mapping to set 0 (stride = sets * line = 256 bytes).
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // touch 0x000 so 0x100 becomes LRU
        let out = c.access(0x200, false);
        let ev = out.evicted().expect("full set must evict");
        assert_eq!(ev.addr, 0x100);
        assert!(!ev.dirty);
        assert!(c.probe(0x000));
        assert!(!c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        c.access(0x000, true);
        c.access(0x100, false);
        let out = c.access(0x200, false);
        let ev = out.evicted().unwrap();
        assert_eq!(ev.addr, 0x000);
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn purge_empties_and_counts() {
        let mut c = small();
        for i in 0..8u64 {
            c.access(i * 64, i % 2 == 0);
        }
        assert_eq!(c.resident_lines(), 8);
        assert_eq!(c.dirty_lines(), 4);
        let dirty = c.purge();
        assert_eq!(dirty, 4);
        assert_eq!(c.resident_lines(), 0);
        assert_eq!(c.stats().purges, 1);
        assert_eq!(c.stats().flushed_lines, 8);
        // Everything misses again after the purge: this is the MI6 cold-start.
        assert!(c.access(0x0, false).is_miss());
    }

    #[test]
    fn invalidate_single_line() {
        let mut c = small();
        c.access(0x80, true);
        let ev = c.invalidate(0x80).unwrap();
        assert!(ev.dirty);
        assert!(!c.probe(0x80));
        assert!(c.invalidate(0x80).is_none());
    }

    #[test]
    fn write_marks_dirty_on_hit() {
        let mut c = small();
        c.access(0x40, false);
        assert_eq!(c.dirty_lines(), 0);
        c.access(0x40, true);
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small();
        c.access(0x000, false);
        c.access(0x100, false);
        // Probing 0x000 must not refresh its recency.
        assert!(c.probe(0x000));
        let before = c.stats().accesses;
        assert_eq!(c.stats().accesses, before);
        c.access(0x200, false);
        // LRU victim should still be 0x000 (probed but not accessed).
        assert!(!c.probe(0x000));
        assert!(c.probe(0x100));
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = small(); // 8 lines capacity
        for round in 0..4 {
            for i in 0..16u64 {
                c.access(i * 64, false);
            }
            let _ = round;
        }
        // With a cyclic working set of twice the capacity under LRU, every
        // access misses after the first round too.
        assert!(c.stats().miss_rate() > 0.9);
    }

    #[test]
    fn fifo_policy_differs_from_lru() {
        let mut c =
            SetAssocCache::with_policy(CacheConfig::new(512, 2, 64), ReplacementPolicy::Fifo);
        c.access(0x000, false);
        c.access(0x100, false);
        c.access(0x000, false); // does not matter for FIFO
        let ev = c.access(0x200, false).evicted().unwrap();
        assert_eq!(ev.addr, 0x000, "FIFO evicts the first-filled way");
    }
}
