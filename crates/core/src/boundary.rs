//! The shared MI6 enclave-boundary model.
//!
//! MI6 pays for strong isolation at every enclave entry and exit: the
//! SGX-style constant transition cost (pipeline flush, enclave data crypto
//! and integrity checks) plus a purge of all time-shared
//! microarchitecture state — private L1s and TLBs on every core, the
//! memory-controller queues and open rows, and the in-flight network state
//! (on the prototype, the `tmc_mem_fence` that ends a purge only completes
//! once every packet has drained, so no queue occupancy survives a
//! boundary).
//!
//! This is the **one** boundary model both runners charge:
//! [`ExperimentRunner`](crate::runner::ExperimentRunner) for the
//! performance sweeps and [`AttackRunner`](crate::attack::AttackRunner)
//! for the covert-channel matrix. They briefly diverged — the performance
//! runner predated `Machine::purge_network` and omitted the NoC drain, so
//! the performance figures modelled a slightly harsher MI6 whose residual
//! link congestion survived its boundaries while the security figures did
//! not — which is exactly the kind of seam that lets a defence look
//! cheaper in one table than the machine the attacks were run against.
//! Unifying them moved every MI6 cell of the performance goldens
//! (regenerated intentionally); the attack matrix was already on this
//! model and did not move.

use ironhide_mem::ControllerMask;
use ironhide_sim::machine::Machine;

use crate::arch::ArchParams;

/// The cost, in cycles, of one MI6 enclave boundary crossing (entry or
/// exit) on `machine`: the SGX transition constant plus the full purge of
/// private state, controller queues and the network. Functionally purges
/// the machine as a side effect, exactly as the boundary does.
pub fn mi6_boundary_cost(machine: &mut Machine, params: &ArchParams) -> u64 {
    let clock = machine.clock();
    let controllers = machine.config().controllers;
    let purge = machine.purge_all_private();
    let mc = machine.purge_controllers(ControllerMask::first(controllers));
    let net = machine.purge_network();
    clock.us_to_cycles(params.sgx_entry_exit_us) + purge + mc + net
}

#[cfg(test)]
mod tests {
    use super::*;
    use ironhide_mesh::NodeId;
    use ironhide_sim::config::MachineConfig;
    use ironhide_sim::process::SecurityClass;

    #[test]
    fn boundary_purges_all_private_state_and_charges_the_fence() {
        let mut m = Machine::new(MachineConfig::small_test());
        let pid = m.create_process("p", SecurityClass::Insecure);
        for i in 0..32u64 {
            m.access(NodeId(0), pid, i * 64, true);
            m.access(NodeId(1), pid, i * 64 + 4096 * 64, false);
        }
        let params = ArchParams::default();
        let cost = mi6_boundary_cost(&mut m, &params);
        let clock = m.clock();
        assert!(
            cost > clock.us_to_cycles(params.sgx_entry_exit_us),
            "boundary must cost more than the bare SGX transition"
        );
        let stats = m.stats();
        assert_eq!(stats.core_purges as usize, m.config().cores());
        assert_eq!(stats.mem.purges as usize, m.config().controllers);
        // Both cores' private state is gone: the next accesses are cold.
        let hits_before = m.process_stats(pid).l1.hits;
        m.access(NodeId(0), pid, 0, false);
        assert_eq!(m.process_stats(pid).l1.hits, hits_before, "post-boundary access must miss");
    }

    #[test]
    fn boundary_drains_the_network() {
        let mut m = Machine::new(MachineConfig::small_test());
        let pid = m.create_process("p", SecurityClass::Insecure);
        // Congest a route, then verify the boundary resets the link loads.
        for _ in 0..16 {
            for line in 0..64u64 {
                m.access(NodeId(1), pid, line * 64, false);
            }
        }
        let probe = |m: &mut Machine| {
            m.purge_core(NodeId(1));
            m.access(NodeId(1), pid, 0x40, false)
        };
        let congested = probe(&mut m);
        mi6_boundary_cost(&mut m, &ArchParams::default());
        let drained = probe(&mut m);
        assert!(
            drained < congested,
            "the boundary fence must drain link congestion ({drained} >= {congested})"
        );
    }
}
