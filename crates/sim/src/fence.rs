//! Temporal-isolation fence configuration.
//!
//! The `TemporalFence` execution architecture (a fence.t / SIMF-style
//! temporal-partitioning defence, see `ironhide-core`'s `arch` module)
//! flushes a configurable subset of the machine's shared microarchitectural
//! state at every domain switch. This module defines the *what* and the *how
//! much*: the [`FlushSet`] bitset naming the resource classes erased, the
//! [`FlushCosts`] cycle-cost table, and the [`TemporalFenceConfig`] carried
//! by [`MachineConfig`] that the runners in
//! `ironhide-core` read at each boundary crossing.
//!
//! # The cost model is capacity-based, deliberately
//!
//! The *erasure* a fence performs is functional and state-dependent —
//! [`Machine::temporal_flush`](crate::machine::Machine::temporal_flush)
//! really empties the selected structures, however full they are. The *cost
//! charged* for it is a pure function of the machine configuration and the
//! flush set: every resource is billed its worst-case (full-capacity) flush
//! time. That is not a simplification but a requirement of the defence
//! being modelled: a flush whose duration depended on how much secret-
//! dependent state it found would itself leak that state through timing —
//! Ge & Heiser's time-protection rule that temporal partitioning must pad
//! to the worst case. A welcome corollary is that the charged switch cost
//! is exactly monotone in the flush set: adding a resource can only add its
//! (non-negative) capacity cost, which the ablation property suite pins.

use crate::config::MachineConfig;

/// One flushable class of shared microarchitectural state.
///
/// Each class maps onto an existing purge/drain primitive of the simulated
/// machine (see [`Machine::temporal_flush`](crate::machine::Machine::temporal_flush)
/// for the exact semantics and the coherence caveats of partial subsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlushResource {
    /// Every core's private L1 data cache.
    L1,
    /// Every core's private data TLB.
    Tlb,
    /// The shared-L2 slices together with their coherence directories (the
    /// directory cannot be dropped coherently while the slice keeps the
    /// tracked lines, so the class flushes both — exactly what
    /// `Machine::purge_slices` does per slice).
    Directory,
    /// The NoC's per-link congestion estimate (the link-load EMA the
    /// analytical latency model accumulates).
    NocLoad,
    /// The DRAM controllers' request queues and open-row state.
    Controller,
    /// Predictor screening state (the speculative-access check's history).
    /// The simulator models no predictor *latency* state, so this class is
    /// cost-only: it reserves the flush-cost slot the fence.t.s hardware
    /// pays for branch-predictor and prefetcher erasure, and gives every
    /// proper selective subset a strictly cheaper switch than SIMF.
    Predictor,
}

impl FlushResource {
    /// All resource classes, in bit order.
    pub const ALL: [FlushResource; 6] = [
        FlushResource::L1,
        FlushResource::Tlb,
        FlushResource::Directory,
        FlushResource::NocLoad,
        FlushResource::Controller,
        FlushResource::Predictor,
    ];

    /// The class's short display label (used in ablation-grid cell keys).
    pub fn label(self) -> &'static str {
        match self {
            FlushResource::L1 => "l1",
            FlushResource::Tlb => "tlb",
            FlushResource::Directory => "dir",
            FlushResource::NocLoad => "noc",
            FlushResource::Controller => "dram",
            FlushResource::Predictor => "pred",
        }
    }

    fn bit(self) -> u8 {
        match self {
            FlushResource::L1 => 1 << 0,
            FlushResource::Tlb => 1 << 1,
            FlushResource::Directory => 1 << 2,
            FlushResource::NocLoad => 1 << 3,
            FlushResource::Controller => 1 << 4,
            FlushResource::Predictor => 1 << 5,
        }
    }
}

/// A subset of the six [`FlushResource`] classes, as a bitset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FlushSet(u8);

impl FlushSet {
    /// The empty set: a fence that flushes nothing (and charges nothing).
    pub const EMPTY: FlushSet = FlushSet(0);
    /// All six resource classes.
    pub const FULL: FlushSet = FlushSet(0b11_1111);

    /// Builds a set from the listed resources.
    pub fn of(resources: &[FlushResource]) -> Self {
        let mut set = FlushSet::EMPTY;
        for r in resources {
            set = set.with(*r);
        }
        set
    }

    /// This set plus `resource`.
    #[must_use]
    pub fn with(self, resource: FlushResource) -> Self {
        FlushSet(self.0 | resource.bit())
    }

    /// Whether `resource` is selected.
    pub fn contains(self, resource: FlushResource) -> bool {
        self.0 & resource.bit() != 0
    }

    /// Whether no resource is selected.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of selected resources.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether every resource of `self` is also in `other`.
    pub fn is_subset_of(self, other: FlushSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// The selected resources, in [`FlushResource::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = FlushResource> {
        FlushResource::ALL.into_iter().filter(move |r| self.contains(*r))
    }

    /// A stable display label: the `+`-joined resource labels in bit order,
    /// or `"none"` for the empty set.
    pub fn label(self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let mut out = String::new();
        for r in self.iter() {
            if !out.is_empty() {
                out.push('+');
            }
            out.push_str(r.label());
        }
        out
    }
}

/// Per-resource cycle-cost rates of a temporal fence.
///
/// The defaults mirror the machine's purge latencies
/// ([`LatencyConfig`](crate::config::LatencyConfig)): flushing one L1 line
/// costs what the MI6 purge charges per line, one TLB entry what the TLB
/// purge charges, one L2 line a quarter of an L1 line (the bulk slice flush
/// of `purge_slices`), and the barrier that ends the fence costs the purge
/// fence. The NoC drain is cheaper than a full purge fence — only the
/// congestion estimators reset, no dirty data drains — and the predictor
/// cost is the fixed screening-state erasure slot (see
/// [`FlushResource::Predictor`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlushCosts {
    /// Cycles per L1 line (full-capacity flush of every core's L1).
    pub l1_line: u64,
    /// Cycles per TLB entry.
    pub tlb_entry: u64,
    /// Cycles per L2-slice line (slices flush in parallel; one slice's
    /// capacity is the critical path).
    pub l2_line: u64,
    /// Cycles per coherence-directory entry.
    pub directory_entry: u64,
    /// Fixed cycles to drain the NoC's link-load estimators.
    pub noc_drain: u64,
    /// Fixed cycles to erase predictor screening state.
    pub predictor: u64,
    /// Barrier cycles charged once per non-empty fence (the memory-fence
    /// wait until every flushed structure has quiesced).
    pub fence_barrier: u64,
}

impl Default for FlushCosts {
    fn default() -> Self {
        FlushCosts {
            l1_line: 260,
            tlb_entry: 40,
            l2_line: 65,
            directory_entry: 2,
            noc_drain: 4_000,
            predictor: 1_000,
            fence_barrier: 45_000,
        }
    }
}

/// The temporal-fence configuration carried by every
/// [`MachineConfig`].
///
/// Defaults to [`TemporalFenceConfig::off`] — the empty flush set — so
/// machines configured before this field existed behave byte-identically:
/// a zero-flush fence erases nothing and charges nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TemporalFenceConfig {
    /// The resource classes flushed at every domain switch.
    pub set: FlushSet,
    /// The cycle-cost table the switch is billed from.
    pub costs: FlushCosts,
}

impl Default for TemporalFenceConfig {
    fn default() -> Self {
        TemporalFenceConfig::off()
    }
}

impl TemporalFenceConfig {
    /// No fence: nothing flushed, nothing charged (the default).
    pub fn off() -> Self {
        TemporalFenceConfig { set: FlushSet::EMPTY, costs: FlushCosts::default() }
    }

    /// The SIMF preset: a single-instruction multiple-flush that erases
    /// every resource class at one fixed cost — fixed because the charge is
    /// capacity-based, so for a given machine configuration the SIMF switch
    /// always bills the same worst-case cycle count.
    pub fn simf() -> Self {
        TemporalFenceConfig { set: FlushSet::FULL, costs: FlushCosts::default() }
    }

    /// The selective preset: flush exactly `set`, per-resource costs.
    pub fn selective(set: FlushSet) -> Self {
        TemporalFenceConfig { set, costs: FlushCosts::default() }
    }

    /// The cycles one domain switch charges on the critical path under this
    /// fence, for a machine of `config`'s geometry.
    ///
    /// A pure function of `(self, config)` — deliberately independent of the
    /// machine's runtime state (see the module docs): each selected class
    /// bills its full-capacity flush, parallel instances within a class cost
    /// one instance's capacity (all L1s flush concurrently, like
    /// `purge_private`), and a non-empty set pays the fence barrier once.
    /// Monotone in the flush set by construction.
    pub fn switch_cost(&self, config: &MachineConfig) -> u64 {
        if self.set.is_empty() {
            return 0;
        }
        let mut cost = self.costs.fence_barrier;
        if self.set.contains(FlushResource::L1) {
            cost += config.l1.lines() as u64 * self.costs.l1_line;
        }
        if self.set.contains(FlushResource::Tlb) {
            cost += config.tlb.entries as u64 * self.costs.tlb_entry;
        }
        if self.set.contains(FlushResource::Directory) {
            cost += config.l2_slice.lines() as u64 * self.costs.l2_line
                + config.directory.entries() as u64 * self.costs.directory_entry;
        }
        if self.set.contains(FlushResource::NocLoad) {
            cost += self.costs.noc_drain;
        }
        if self.set.contains(FlushResource::Controller) {
            // The worst-case controller drain: a full queue at the saturated
            // per-entry drain rate plus closing the open row — the same
            // formula `MemoryController::purge` charges at peak occupancy.
            cost += config.dram.queue_depth as u64 * config.dram.queue_cycles_per_entry * 2
                + config.dram.row_miss_cycles;
        }
        if self.set.contains(FlushResource::Predictor) {
            cost += self.costs.predictor;
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_algebra() {
        let set = FlushSet::of(&[FlushResource::L1, FlushResource::Tlb]);
        assert!(set.contains(FlushResource::L1));
        assert!(set.contains(FlushResource::Tlb));
        assert!(!set.contains(FlushResource::Directory));
        assert_eq!(set.len(), 2);
        assert!(set.is_subset_of(FlushSet::FULL));
        assert!(FlushSet::EMPTY.is_subset_of(set));
        assert!(!FlushSet::FULL.is_subset_of(set));
        assert_eq!(FlushSet::FULL.len(), FlushResource::ALL.len());
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![FlushResource::L1, FlushResource::Tlb]);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FlushSet::EMPTY.label(), "none");
        assert_eq!(FlushSet::of(&[FlushResource::Tlb]).label(), "tlb");
        assert_eq!(FlushSet::FULL.label(), "l1+tlb+dir+noc+dram+pred");
    }

    #[test]
    fn switch_cost_is_monotone_and_zero_when_off() {
        let config = MachineConfig::attack_testbench();
        assert_eq!(TemporalFenceConfig::off().switch_cost(&config), 0);
        // Every chain step adds exactly one resource: cost never decreases,
        // and the full set equals the SIMF preset's fixed cost.
        let mut prev = 0;
        let mut set = FlushSet::EMPTY;
        for r in FlushResource::ALL {
            set = set.with(r);
            let cost = TemporalFenceConfig::selective(set).switch_cost(&config);
            assert!(cost > prev, "{} must cost more than its subset", set.label());
            prev = cost;
        }
        assert_eq!(prev, TemporalFenceConfig::simf().switch_cost(&config));
    }

    #[test]
    fn simf_dominates_every_selective_subset() {
        let config = MachineConfig::paper_default();
        let simf = TemporalFenceConfig::simf().switch_cost(&config);
        for bits in 0..=0b11_1111u8 {
            let set = FlushSet::of(
                &FlushResource::ALL
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| bits & (1 << i) != 0)
                    .map(|(_, r)| r)
                    .collect::<Vec<_>>(),
            );
            let cost = TemporalFenceConfig::selective(set).switch_cost(&config);
            assert!(cost <= simf);
            if set != FlushSet::FULL {
                assert!(cost < simf, "{} must be strictly cheaper than SIMF", set.label());
            }
        }
    }
}
